"""The crash-consistency invariants the chaos runner machine-checks.

Stated once, checked after every recovery phase of every trial:

**I1 — sealed data is never silently altered.** Every profile that was
sealed (CRC-verified) before the crash is, after recovery, either still
present with the same content CRC or sitting in ``quarantine/`` with its
original name. It is never missing and never readable-with-other-bytes.

**I2 — the manifest never loses a completed cell.** Every cell the
manifest recorded ``ok`` before the crash still exists in the manifest
afterwards (fsck may demote it to re-run when its profile was damaged,
but the ledger never forgets it), and after ``run --resume`` it is
``ok`` again.

**I3 — resume converges.** After ``fsck`` + ``run --resume`` the
manifest records the campaign's *full* cell set ``ok`` and a second
``fsck`` finds nothing to repair.

**I4 — recovery is analysis-equivalent.** The Thicket composed from the
recovered campaign is :meth:`~repro.dataframe.Frame.equals`-identical
to the one composed from an uncrashed golden campaign, on every ingest
path (serial, parallel, packed, warm cache), with no load errors.

**I5 — a recovered sharded campaign is coherent end to end** (see
:func:`check_shard_campaign`).

**I6 — the job service loses nothing and duplicates nothing.** After a
kill-anywhere of the service daemon, a restarted scheduler converges
every job record to a consistent state: every record parses with its
seal intact, every job reaches a terminal state (SUCCEEDED for the
chaos job), no campaign directory exists that no job record accounts
for (no duplicated campaign work), every SUCCEEDED job's campaign
records its full expected cell set ``ok`` (no lost work), and no
terminal job still holds a live scheduler lease.

**I7 — retention never half-deletes and compaction never alters what a
reader resolves.** After a GC/compaction pass crashed anywhere and
recovery ran, every job is *fully live* (sealed record present, every
pre-GC sealed profile byte-identical, no tombstone) or *fully
reclaimed* (no record, no tombstone, no campaign directory, no
markers) — never in between. A surviving job's compacted archive
resolves every pre-compaction readable entry to identical bytes.

Each check returns a list of violation strings — empty means the
invariant holds. The checks only ever *read* the campaign directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.caliper import calipack
from repro.caliper.cali import STATUS_OK, sealed_crc32, verify_cali
from repro.suite.fsck import QUARANTINE_DIR
from repro.suite.manifest import MANIFEST_NAME

#: metric columns that exist only under real execution and are measured
#: (wall clock), hence legitimately differ between two correct runs
VOLATILE_COLUMNS = ("wall time (executed)",)


@dataclass
class StoreSnapshot:
    """What the durable store vouched for at one instant."""

    #: sealed profile name -> crc32 hex (loose files and archive entries)
    profiles: dict[str, str] = field(default_factory=dict)
    #: manifest cell keys recorded ``ok``
    ok_cells: set[str] = field(default_factory=set)


def _archive_paths(directory: Path) -> list[Path]:
    archives = sorted(directory.glob("*" + calipack.ARCHIVE_SUFFIX))
    seg_dir = directory / calipack.SEGMENT_DIR
    if seg_dir.is_dir():
        archives += sorted(seg_dir.glob("*" + calipack.ARCHIVE_SUFFIX))
    # A sharded campaign's entries may sit in per-shard archives (and
    # their segments, and the merge tree's scratch intermediates) before
    # the hierarchical merge lands them in the campaign archive.
    shard_root = directory / "shards"
    if shard_root.is_dir():
        for shard_dir in sorted(shard_root.iterdir()):
            if shard_dir.is_dir():
                archives += _archive_paths(shard_dir)
    scratch = directory / ".merge-scratch"
    if scratch.is_dir():
        archives += sorted(scratch.glob("*" + calipack.ARCHIVE_SUFFIX))
    return archives


def snapshot_store(directory: str | Path) -> StoreSnapshot:
    """Record every *verified-sealed* profile and every ``ok`` cell.

    Only profiles whose seal checks out are recorded: an in-flight or
    torn write was never vouched for, so losing it is not a violation.
    Archive entries are verified against both the index CRC and their
    own seal; footer-less archives go through the salvage scan.
    """
    directory = Path(directory)
    snap = StoreSnapshot()
    for path in sorted(directory.glob("*.cali")):
        try:
            status, _ = verify_cali(path)
        except OSError:
            continue
        if status == STATUS_OK:
            snap.profiles[path.name] = f"{sealed_crc32(path):08x}"
    for archive in _archive_paths(directory):
        try:
            entries = calipack.load_entries(archive)
        except (calipack.CalipackError, OSError):
            continue
        for entry in entries:
            try:
                status, _ = calipack.verify_entry(archive, entry)
            except OSError:
                continue
            if status == STATUS_OK:
                snap.profiles[entry.name] = entry.crc_hex
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        try:
            cells = json.loads(manifest_path.read_text()).get("cells", {})
        except (OSError, ValueError):
            cells = {}
        snap.ok_cells = {
            key
            for key, cell in cells.items()
            if isinstance(cell, dict) and cell.get("status") == "ok"
        }
    return snap


def _manifest_cells(directory: Path) -> dict[str, dict] | None:
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        cells = json.loads(path.read_text()).get("cells", {})
    except (OSError, ValueError):
        return None
    return cells if isinstance(cells, dict) else None


# ------------------------------------------------------------------ checks
def check_sealed_preserved(
    pre: StoreSnapshot, directory: str | Path, check_crc: bool = True
) -> list[str]:
    """I1: every pre-crash sealed profile survives or is quarantined.

    ``check_crc=False`` relaxes the byte identity to name presence —
    needed when a resumed campaign legitimately *re-executes* a cell
    whose measured wall time reseals the profile with a new CRC.
    """
    directory = Path(directory)
    post = snapshot_store(directory)
    qdir = directory / QUARANTINE_DIR
    violations = []
    for name, crc in pre.profiles.items():
        if name in post.profiles:
            if not check_crc or post.profiles[name] == crc:
                continue
            # Re-sealed in place: only legitimate if the manifest owns
            # the cell again (resume re-ran it); flagged otherwise.
            violations.append(
                f"sealed profile {name} silently altered: "
                f"crc {crc} -> {post.profiles[name]}"
            )
            continue
        if (qdir / name).exists():
            continue  # preserved for forensics, with its reason in fsck
        violations.append(
            f"sealed profile {name} (crc {crc}) lost: "
            "neither readable nor quarantined"
        )
    return violations


def check_completed_cells_remembered(
    pre: StoreSnapshot, directory: str | Path
) -> list[str]:
    """I2 (post-crash half): no pre-crash ``ok`` cell vanished."""
    cells = _manifest_cells(Path(directory))
    if cells is None:
        if pre.ok_cells:
            return [
                f"manifest unreadable/missing; {len(pre.ok_cells)} "
                "completed cell(s) forgotten"
            ]
        return []
    return [
        f"completed cell {key} vanished from the manifest"
        for key in sorted(pre.ok_cells)
        if key not in cells
    ]


def check_full_cell_set(
    expected_keys: set[str], directory: str | Path
) -> list[str]:
    """I3: after resume, every expected cell is recorded ``ok``."""
    cells = _manifest_cells(Path(directory))
    if cells is None:
        return [f"no readable manifest in {directory}"]
    violations = []
    for key in sorted(expected_keys):
        status = cells.get(key, {}).get("status")
        if status != "ok":
            violations.append(
                f"cell {key} is {status!r} after resume, expected 'ok'"
            )
    for key in sorted(set(cells) - expected_keys):
        violations.append(f"manifest records unexpected cell {key}")
    return violations


def frames_match(golden, other, drop: tuple[str, ...] = ()) -> list[str]:
    """I4 (one table): Frame equality modulo declared-volatile columns."""
    golden_cols = [c for c in golden.columns if c not in drop]
    other_cols = [c for c in other.columns if c not in drop]
    if golden_cols != other_cols:
        return [
            f"column mismatch: golden {golden_cols} vs recovered {other_cols}"
        ]
    if golden.nrows != other.nrows:
        return [f"row count {other.nrows}, golden has {golden.nrows}"]
    violations = []
    for name in golden_cols:
        if not golden.select([name]).equals(other.select([name])):
            violations.append(f"column {name!r} differs from golden")
    return violations


def check_shard_campaign(
    expected_keys: set[str], directory: str | Path
) -> list[str]:
    """I5: a recovered sharded campaign is coherent end to end.

    After ``fsck`` + ``run --resume`` of a sharded campaign: the shard
    map is readable; every shard directory on disk is one the map knows;
    the map's assignment covers exactly the campaign's cell set; and
    every cell the campaign manifest records ``ok`` has its profile
    present in the *merged* campaign archive (not stranded in a shard).
    Together with I1-I4 this is the sharded convergence guarantee: kill
    any shard or the coordinator anywhere, and recovery still yields one
    complete, analysis-identical ``campaign.calipack``.
    """
    from repro.suite.coordinator import ShardMap
    from repro.suite.shard import SHARD_DIR, parse_shard_index

    directory = Path(directory)
    violations: list[str] = []
    shard_map = ShardMap.load(directory)
    if shard_map is None:
        return [f"no readable shard map in {directory}"]
    shard_root = directory / SHARD_DIR
    if shard_root.is_dir():
        for shard_dir in sorted(shard_root.iterdir()):
            if not shard_dir.is_dir():
                continue
            index = parse_shard_index(shard_dir.name)
            if index is None or index >= shard_map.shards:
                violations.append(
                    f"orphan shard directory {shard_dir.name} "
                    f"(map has {shard_map.shards} shard(s))"
                )
    assigned = {
        key for keys in shard_map.assignment.values() for key in keys
    }
    for key in sorted(expected_keys - assigned):
        violations.append(f"cell {key} missing from the shard map")
    for key in sorted(assigned - expected_keys):
        violations.append(f"shard map assigns unexpected cell {key}")
    cells = _manifest_cells(directory) or {}
    archive = directory / calipack.ARCHIVE_NAME
    try:
        merged = {e.name for e in calipack.load_entries(archive)}
    except (calipack.CalipackError, OSError):
        merged = set()
    for key, entry in sorted(cells.items()):
        if entry.get("status") != "ok":
            continue
        file = entry.get("file")
        if not file:
            continue
        ref = calipack.split_member_ref(file)
        name = ref[1] if ref is not None else Path(file).name
        if name not in merged:
            violations.append(
                f"ok cell {key}: profile {name} not in the merged "
                f"campaign archive"
            )
    return violations


def check_job_records_parse(root: str | Path) -> list[str]:
    """I6 (atomicity half): every job record on disk parses sealed.

    Run *before* recovery: a crash anywhere — including mid-save — must
    never leave a record that is present but unreadable, because records
    are only ever created whole (O_EXCL + full write + fsync) and
    rewritten via the durable tmp+replace protocol. ``.bak`` files do
    not count: they are fsck's forensic quarantine, not live records.
    """
    from repro.service.jobstore import (
        RECORD_SUFFIX,
        JobRecordDamaged,
        JobStore,
        parse_record_text,
    )

    store = JobStore(root)
    if not store.jobs_dir.is_dir():
        return []
    violations = []
    for path in sorted(store.jobs_dir.glob(f"*{RECORD_SUFFIX}")):
        if path.name.endswith(".bak"):
            continue
        try:
            parse_record_text(path.read_text())
        except (OSError, JobRecordDamaged) as exc:
            violations.append(f"job record {path.name} unreadable: {exc}")
    return violations


def check_job_service(
    root: str | Path, expected_cells: dict[str, set[str]]
) -> list[str]:
    """I6: after recovery, the job service converged with nothing lost.

    ``expected_cells`` maps each job id to the campaign cell set its
    spec implies. Checks: every record parses; every expected job exists
    and is SUCCEEDED; no unexpected job records; no campaign directory
    without a record (duplicated work); every SUCCEEDED job's campaign
    has its full cell set ``ok`` (via :func:`check_full_cell_set`); no
    terminal job holds a live lease.
    """
    from repro.service.jobstore import STATE_SUCCEEDED, JobStore
    from repro.suite.manifest import _pid_alive

    store = JobStore(root)
    violations = check_job_records_parse(root)
    records = {r.job_id: r for r in store.list_jobs()}
    for job_id in sorted(expected_cells):
        record = records.get(job_id)
        if record is None:
            violations.append(f"job {job_id} lost: no readable record")
            continue
        if record.state != STATE_SUCCEEDED:
            violations.append(
                f"job {job_id} is {record.state} after recovery "
                f"(reason: {record.reason!r}), expected SUCCEEDED"
            )
            continue
        violations += [
            f"job {job_id}: {v}"
            for v in check_full_cell_set(
                expected_cells[job_id], store.campaign_dir(job_id)
            )
        ]
    for job_id in sorted(set(records) - set(expected_cells)):
        violations.append(f"unexpected job record {job_id}")
    if store.campaigns_dir.is_dir():
        for campaign in sorted(store.campaigns_dir.iterdir()):
            if campaign.is_dir() and campaign.name not in records:
                if store.tombstone_path(campaign.name).exists():
                    # Condemned mid-reclamation, not unaccounted work;
                    # I7's convergence check owns this case.
                    continue
                violations.append(
                    f"campaign directory {campaign.name} has no job "
                    "record: duplicated or unaccounted campaign work"
                )
    for job_id, record in sorted(records.items()):
        if not record.terminal:
            continue
        lease = store.read_lease(job_id)
        if lease is not None and _pid_alive(lease.get("pid")):
            violations.append(
                f"terminal job {job_id} still holds a live scheduler "
                f"lease (pid {lease.get('pid')})"
            )
    return violations


def check_retention(
    root: str | Path, pre: dict[str, StoreSnapshot]
) -> list[str]:
    """I7: after GC + recovery, every job is fully live or reclaimed.

    ``pre`` maps job ids to :func:`snapshot_store` snapshots of their
    campaign directories taken *before* the GC/compaction pass. A job is
    **fully live** when its sealed record still parses, no tombstone
    exists, and every pre-GC sealed profile is still resolvable with
    identical bytes (compaction drops superseded duplicate frames and
    damage, never what a reader resolved). A job is **fully reclaimed**
    when record, tombstone, campaign directory, and every marker are all
    gone. Any intermediate state after recovery is a violation.
    """
    from repro.service.jobstore import (
        JobRecordDamaged,
        JobStore,
        parse_record_text,
    )

    store = JobStore(root)
    violations: list[str] = []
    for job_id in sorted(pre):
        residue = {
            "record": store.record_path(job_id).exists(),
            "tombstone": store.tombstone_path(job_id).exists(),
            "campaign": store.campaign_dir(job_id).is_dir(),
            "lease": store.lease_path(job_id).exists(),
            "cancel marker": store.cancel_path(job_id).exists(),
            "pin marker": store.pin_path(job_id).exists(),
        }
        if not any(residue.values()):
            continue  # fully reclaimed
        if not residue["record"] or residue["tombstone"]:
            present = ", ".join(k for k, v in residue.items() if v)
            violations.append(
                f"job {job_id} is neither fully live nor fully "
                f"reclaimed after recovery (present: {present})"
            )
            continue
        try:
            parse_record_text(store.record_path(job_id).read_text())
        except (OSError, JobRecordDamaged) as exc:
            violations.append(f"job {job_id}: record unreadable: {exc}")
            continue
        post = snapshot_store(store.campaign_dir(job_id))
        for name, crc in sorted(pre[job_id].profiles.items()):
            got = post.profiles.get(name)
            if got is None:
                violations.append(
                    f"job {job_id}: sealed profile {name} (crc {crc}) "
                    "lost by retention/compaction"
                )
            elif got != crc:
                violations.append(
                    f"job {job_id}: sealed profile {name} altered by "
                    f"retention/compaction: crc {crc} -> {got}"
                )
    return violations


def thickets_match(golden, other, volatile: bool = False) -> list[str]:
    """I4: dataframe + metadata identical; no degraded-mode casualties."""
    drop = VOLATILE_COLUMNS if volatile else ()
    violations = [
        f"dataframe: {v}"
        for v in frames_match(golden.dataframe, other.dataframe, drop=drop)
    ]
    violations += [
        f"metadata: {v}"
        for v in frames_match(golden.metadata, other.metadata)
    ]
    violations += [
        f"load error on {src}: {reason}"
        for src, reason in getattr(other, "load_errors", [])
    ]
    return violations
