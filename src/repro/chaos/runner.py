"""The chaos trial runner: crash everywhere, prove recovery converges.

For every registered crash point (and campaign mode it applies to) the
runner executes the full production loop against a small but real
campaign:

1. **run (armed)** — a forked child arms the point's
   :class:`~repro.chaos.points.ChaosSchedule` in ``exit`` mode and runs
   the campaign; the strike is a genuine ``os._exit`` mid-write — no
   ``finally`` blocks, no atexit, locks left held, tmp files left
   behind. A token file scoped to the trial makes the strike fire
   exactly once even when a supervised pool respawns the crashed
   worker.
2. **post-crash audit** — whatever the crash left on disk must already
   satisfy the atomicity half of the contract: the manifest parses,
   loose profiles verify sealed (in-flight writes may only ever leave
   tmp siblings or an unsealed archive tail).
3. **fsck** — quarantine damage, demote damaged cells
   (:func:`~repro.suite.fsck.fsck_directory`).
4. **resume (unarmed)** — a second child re-runs the campaign with
   ``resume=True``; it must exit cleanly and leave a second ``fsck``
   with nothing to repair.
5. **analyze** — the recovered campaign is composed into Thicket frames
   over four independent ingest paths (serial, parallel pool,
   packed/unpacked complement, cold-store + warm-load cache) and each
   must be :meth:`~repro.dataframe.Frame.equals`-identical to the
   frames of an uncrashed golden campaign.

Invariant definitions live in :mod:`repro.chaos.invariants`. Every
trial is replayable: its schedule is a pure function of
``(seed, point, mode, trial index)``.

The runner also carries the harness :meth:`ChaosRunner.self_test` —
it stages a loss with one repair deliberately suppressed and asserts
the invariant checks *catch* it, proving the harness can fail.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.caliper import calipack
from repro.chaos import invariants
from repro.chaos.points import (
    CHAOS_KILL_EXITCODE,
    REGISTERED_POINTS,
    ChaosSchedule,
    PointSpec,
    arm,
)
from repro.suite.fsck import fsck_directory
from repro.suite.run_params import RunParams

MODES = ("serial", "supervised", "sharded", "service")

#: how long one child campaign may take before the trial is abandoned
CHILD_TIMEOUT_S = 180.0


def _effective_pack(mode: str, spec: PointSpec) -> bool:
    """Sharded campaigns always pack: the merge tree needs archives."""
    return spec.pack or mode == "sharded"


def _trial_params(output_dir: Path, mode: str, spec: PointSpec) -> RunParams:
    """The trial campaign: 4 cells, small, deterministic, fast to re-run."""
    return RunParams(
        problem_size=1024,
        reps=1,
        machines=("SPR-DDR",),
        variants=("Base_Seq", "RAJA_Seq"),
        kernels=("Basic_DAXPY", "Stream_TRIAD"),
        trials=2,
        execute=spec.execute,
        pack=_effective_pack(mode, spec),
        output_dir=str(output_dir),
        workers=2 if mode == "supervised" else 1,
        shards=2 if mode == "sharded" else 0,
        shard_lease_timeout=10.0,
        max_attempts=3,
        retry_base_delay=0.0,
        retry_max_delay=0.0,
        retry_jitter=0.0,
        heartbeat_timeout=10.0,
    )


def _run_armed_campaign(params: RunParams, schedule: ChaosSchedule) -> None:
    """Child body: arm the schedule, run the campaign, exit normally.

    When the armed point is reached the process dies *inside* the hook
    (``os._exit``); reaching the end means the point either never came
    due in this process or was healed in-flight (a supervised worker
    crashed and the supervisor finished the campaign anyway).
    """
    from repro.suite.executor import SuiteExecutor

    arm(schedule)
    SuiteExecutor(params).run(write_files=True)


def _run_resume_campaign(params: RunParams) -> None:
    from repro.suite.executor import SuiteExecutor

    result = SuiteExecutor(
        dataclasses.replace(params, resume=True)
    ).run(write_files=True)
    if not result.report.clean:
        raise RuntimeError(
            f"resume left unclean cells: {result.report.cell_counts()}"
        )


def _run_armed_analyze(
    sources: list[str], cache_dir: str, schedule: ChaosSchedule
) -> None:
    from repro.thicket import Thicket

    arm(schedule)
    Thicket.from_caliperreader(sources, cache=cache_dir)


# ------------------------------------------------------------ service mode
CHAOS_JOB_ID = "chaos-job"


def _service_job_spec() -> dict:
    """The service trial's job spec — must mirror :func:`_trial_params`
    (serial flavor) exactly, so the job's campaign is frame-identical to
    the golden campaign."""
    return {
        "problem_size": 1024,
        "reps": 1,
        "machines": ["SPR-DDR"],
        "variants": ["Base_Seq", "RAJA_Seq"],
        "kernels": ["Basic_DAXPY", "Stream_TRIAD"],
        "trials": 2,
        "execute": False,
        "pack": False,
        "workers": 1,
        "max_attempts": 3,
        "heartbeat_timeout": 10.0,
        "retry_base_delay": 0.0,
        "retry_max_delay": 0.0,
        "retry_jitter": 0.0,
    }


def _run_armed_service(
    root: str, schedule: ChaosSchedule, drain: bool
) -> None:
    """Child body for a service trial: submit, schedule, (maybe) drain.

    With ``drain`` the scheduler waits for the job to reach RUNNING and
    then drains — the ``service.mid-drain`` point fires inside the drain
    loop, simulating a daemon killed halfway through graceful shutdown.
    If the armed point never comes due, the loop runs the job to
    completion and exits 0 (an ``unreached`` verdict, not a failure).
    """
    from repro.service.jobstore import STATE_RUNNING, JobStore
    from repro.service.scheduler import JobScheduler, SchedulerConfig

    arm(schedule)
    store = JobStore(root)
    store.submit(_service_job_spec(), tenant="chaos", job_id=CHAOS_JOB_ID)
    scheduler = JobScheduler(
        store, SchedulerConfig(progress_interval=0.05)
    )
    scheduler.recover()
    if drain:
        deadline = time.monotonic() + CHILD_TIMEOUT_S / 2
        while time.monotonic() < deadline:
            scheduler.tick()
            record = store.load(CHAOS_JOB_ID)
            if record is not None and record.state == STATE_RUNNING:
                break
            if record is not None and record.terminal:
                return  # finished before we could drain
            time.sleep(0.02)
        scheduler.drain()
        # The drain survived (point unreached): finish the job so the
        # trial still converges without a recovery phase doing the work.
        scheduler = JobScheduler(store)
        scheduler.recover()
    scheduler.run_until_idle(timeout=CHILD_TIMEOUT_S / 2)


def _retention_job_spec() -> dict:
    """The retention trial's job spec: the service spec, packed.

    Packed because retention trials also exercise archive compaction —
    ``retention.pre-compact-swap`` needs a sealed ``campaign.calipack``
    to rebuild."""
    spec = dict(_service_job_spec())
    spec["pack"] = True
    return spec


#: the retention trial's jobs, submission order = age order (the ids
#: also sort that way: created_at has one-second granularity, and the
#: deterministic tie-break inside a second is the job id)
RETENTION_JOBS = ("gc-old", "gc-young")


def _build_retention_seed(root: str) -> None:
    """Child body: a service root with two SUCCEEDED packed jobs."""
    from repro.service.jobstore import STATE_SUCCEEDED, JobStore
    from repro.service.scheduler import JobScheduler

    store = JobStore(root)
    store.ensure_layout()
    for job_id in RETENTION_JOBS:
        store.submit(_retention_job_spec(), tenant="chaos", job_id=job_id)
    scheduler = JobScheduler(store)
    scheduler.recover()
    scheduler.run_until_idle(timeout=CHILD_TIMEOUT_S / 2)
    for job_id in RETENTION_JOBS:
        record = store.load(job_id)
        state = record.state if record is not None else "<no record>"
        if state != STATE_SUCCEEDED:
            raise RuntimeError(f"seed job {job_id} is {state}")


def _run_armed_retention(root: str, schedule: ChaosSchedule) -> None:
    """Child body: a GC + compaction pass with the strike armed.

    The policy condemns the oldest of the two terminal jobs
    (``max_terminal_jobs=1``); the survivor's archive is then compacted.
    ``retention.pre-tombstone`` fires before the condemnation lands,
    ``retention.mid-delete`` inside the tree removal, and
    ``retention.pre-compact-swap`` between the scratch seal and the swap.
    """
    from repro.caliper.calipack import ARCHIVE_NAME
    from repro.service.jobstore import JobStore
    from repro.service.retention import (
        RetentionPolicy,
        compact_archive,
        gc,
    )

    arm(schedule)
    store = JobStore(root)
    gc(store, RetentionPolicy(max_terminal_jobs=1))
    archive = store.campaign_dir(RETENTION_JOBS[-1]) / ARCHIVE_NAME
    if archive.is_file():
        compact_archive(archive)


def _run_retention_recovery(root: str) -> None:
    """Child body: the unarmed converging pass a restarted daemon runs."""
    from repro.caliper.calipack import ARCHIVE_NAME
    from repro.service.jobstore import JobStore
    from repro.service.retention import (
        RetentionPolicy,
        compact_archive,
        gc,
    )

    store = JobStore(root)
    report = gc(store, RetentionPolicy(max_terminal_jobs=1))
    if store.list_tombstone_ids():
        raise RuntimeError(
            f"tombstones survived recovery gc: {report.summary()}"
        )
    archive = store.campaign_dir(RETENTION_JOBS[-1]) / ARCHIVE_NAME
    if archive.is_file():
        compact_archive(archive)


def _run_service_recovery(root: str) -> None:
    """Child body: what a restarted daemon does — recover and converge.

    Also retries the submission exactly like a client whose acknowledgment
    was lost would: with the caller-chosen job id, a duplicate submit is
    idempotent, so this never double-queues the campaign.
    """
    from repro.service.jobstore import STATE_SUCCEEDED, JobStore
    from repro.service.scheduler import JobScheduler

    store = JobStore(root)
    store.submit(_service_job_spec(), tenant="chaos", job_id=CHAOS_JOB_ID)
    scheduler = JobScheduler(store)
    scheduler.recover()
    converged = scheduler.run_until_idle(timeout=CHILD_TIMEOUT_S / 2)
    record = store.load(CHAOS_JOB_ID)
    state = record.state if record is not None else "<no record>"
    if not converged or state != STATE_SUCCEEDED:
        raise RuntimeError(
            f"service recovery did not converge: job is {state}"
        )


@dataclass
class TrialVerdict:
    """One (point, mode, trial) run of the full loop."""

    point: str
    mode: str
    trial: int
    seed: int
    hit: int
    torn: bool
    applicable: bool = True
    fired: bool = False  # the strike token was claimed somewhere
    killed: bool = False  # a process actually died with the chaos code
    violations: list[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def status(self) -> str:
        if not self.applicable:
            return "skipped"
        if self.violations:
            return "violated"
        if not self.fired:
            return "unreached"
        return "ok"

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "mode": self.mode,
            "trial": self.trial,
            "seed": self.seed,
            "hit": self.hit,
            "torn": self.torn,
            "status": self.status,
            "fired": self.fired,
            "killed": self.killed,
            "violations": self.violations,
            "duration_s": round(self.duration_s, 3),
            "replay": (
                f"rajaperf-sim chaos --seed {self.seed} "
                f"--points {self.point} --modes {self.mode} "
                f"--trials-per-point {self.trial + 1}"
            ),
        }


@dataclass
class ChaosReport:
    """Every trial's verdict plus the per-point coverage rollup."""

    seed: int
    trials_per_point: int
    verdicts: list[TrialVerdict] = field(default_factory=list)

    @property
    def violations(self) -> list[TrialVerdict]:
        return [v for v in self.verdicts if v.violations]

    def uncovered_points(self) -> list[str]:
        """(point, mode) combos that were applicable but never struck."""
        out = []
        combos = {(v.point, v.mode) for v in self.verdicts if v.applicable}
        for point, mode in sorted(combos):
            if not any(
                v.fired
                for v in self.verdicts
                if v.point == point and v.mode == mode
            ):
                out.append(f"{point} [{mode}]")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations and not self.uncovered_points()

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.status] = counts.get(verdict.status, 0) + 1
        return {
            "seed": self.seed,
            "trials_per_point": self.trials_per_point,
            "ok": self.ok,
            "counts": counts,
            "uncovered_points": self.uncovered_points(),
            "trials": [v.to_dict() for v in self.verdicts],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)


class ChaosRunner:
    """Enumerate kill points, run the loop, check the invariants."""

    def __init__(
        self,
        seed: int = 0,
        trials_per_point: int = 1,
        points: list[str] | None = None,
        modes: list[str] | None = None,
        workdir: str | Path | None = None,
        keep: bool = False,
        progress=None,
    ) -> None:
        unknown = [p for p in (points or []) if p not in REGISTERED_POINTS]
        if unknown:
            raise ValueError(
                f"unknown crash points {unknown}; "
                f"registered: {list(REGISTERED_POINTS)}"
            )
        bad_modes = [m for m in (modes or []) if m not in MODES]
        if bad_modes:
            raise ValueError(f"unknown modes {bad_modes}; have {list(MODES)}")
        self.seed = seed
        self.trials_per_point = trials_per_point
        self.points = list(points) if points else list(REGISTERED_POINTS)
        self.modes = list(modes) if modes else list(MODES)
        self.keep = keep
        self.progress = progress or (lambda _msg: None)
        self._own_workdir = workdir is None
        self.workdir = Path(
            workdir
            if workdir is not None
            else tempfile.mkdtemp(prefix="rajaperf-chaos-")
        )
        self._goldens: dict[tuple[bool, bool], tuple[Path, object]] = {}
        self._retention_seed_dir: Path | None = None
        self._ctx = multiprocessing.get_context("fork")

    # ------------------------------------------------------------- plumbing
    def _spawn(self, target, *args) -> int:
        """Run ``target(*args)`` in a forked child; return its exit code."""
        child = self._ctx.Process(target=target, args=args)
        child.start()
        child.join(CHILD_TIMEOUT_S)
        if child.is_alive():
            child.kill()
            child.join()
            return -1
        return child.exitcode if child.exitcode is not None else -1

    def _sources(self, directory: Path, pack: bool) -> list[str]:
        """The campaign's ingest sources, ordered by profile name.

        Archive entries append in completion order, which resume
        legitimately permutes — sorting by name on both the golden and
        the recovered side makes frame comparison order-insensitive.
        """
        if pack:
            archive = directory / calipack.ARCHIVE_NAME
            names = sorted(e.name for e in calipack.load_entries(archive))
            return [calipack.member_ref(archive, n) for n in names]
        return sorted(str(p) for p in directory.glob("*.cali"))

    def _golden(self, spec: PointSpec) -> tuple[Path, object]:
        """The uncrashed reference campaign + Thicket for this config."""
        from repro.thicket import Thicket

        key = (spec.execute, spec.pack)
        if key in self._goldens:
            return self._goldens[key]
        outdir = (
            self.workdir
            / "golden"
            / f"exec{int(spec.execute)}-pack{int(spec.pack)}"
        )
        params = _trial_params(outdir, "serial", spec)
        from repro.suite.executor import SuiteExecutor

        result = SuiteExecutor(params).run(write_files=True)
        if not result.report.clean:
            raise RuntimeError(
                f"golden campaign failed: {result.report.cell_counts()}"
            )
        thicket = Thicket.from_caliperreader(self._sources(outdir, spec.pack))
        self._goldens[key] = (outdir, thicket)
        return self._goldens[key]

    def _expected_cells(self, params: RunParams) -> set[str]:
        from repro.suite.executor import SuiteExecutor

        return {cell.key for cell in SuiteExecutor(params).build_cells()}

    def _schedule(
        self, spec: PointSpec, trial: int, token: Path
    ) -> ChaosSchedule:
        """The trial's deterministic strike plan.

        Trial 0 always strikes the first occurrence; later trials strike
        torn (for torn-capable points) or deeper occurrences, which may
        legitimately never come due (``unreached``).
        """
        if trial == 0:
            hit, torn = 1, False
        elif spec.torn:
            hit, torn = 1 + (trial - 1) // 2, trial % 2 == 1
        else:
            hit, torn = trial + 1, False
        return ChaosSchedule(
            point=spec.name,
            hit=hit,
            mode="exit",
            torn=torn,
            seed=self.seed + trial,
            token=str(token),
        )

    def _seed_stranded_segments(
        self, outdir: Path, golden_dir: Path, count: int
    ) -> None:
        """Plant footer-less worker segments so a serial campaign's
        startup salvage has something to merge (serial runs never create
        segments on their own). ``count > 1`` gives the post-merge-unlink
        point a genuinely *partial* deletion to strike between."""
        archive = golden_dir / calipack.ARCHIVE_NAME
        entries = calipack.load_entries(archive)
        for i in range(count):
            seg = (
                outdir
                / calipack.SEGMENT_DIR
                / (f"worker-{9 + i}" + calipack.ARCHIVE_SUFFIX)
            )
            seg.parent.mkdir(parents=True, exist_ok=True)
            writer = calipack.CalipackWriter(seg)
            entry = entries[i % len(entries)]
            writer.append_bytes(
                entry.name, calipack.read_entry_bytes(archive, entry)
            )
            writer.abort()  # no index, no footer: exactly a crashed worker

    @staticmethod
    def _wait_shards_quiesce(outdir: Path, timeout_s: float = 10.0) -> None:
        """Wait for orphaned shard processes to notice their coordinator
        died (the lease thread's re-parenting poll) and exit, so the
        post-crash audit reads a quiescent store."""
        from repro.suite.manifest import _pid_alive
        from repro.suite.shard import SHARD_DIR, read_lease

        shard_root = outdir / SHARD_DIR
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            live = False
            if shard_root.is_dir():
                for shard_dir in shard_root.iterdir():
                    lease = read_lease(shard_dir) if shard_dir.is_dir() else None
                    if lease is not None and _pid_alive(lease.get("pid")):
                        live = True
            if not live:
                return
            time.sleep(0.1)

    # ---------------------------------------------------------------- trials
    def run(self) -> ChaosReport:
        report = ChaosReport(
            seed=self.seed, trials_per_point=self.trials_per_point
        )
        try:
            for name in self.points:
                spec = REGISTERED_POINTS[name]
                for mode in self.modes:
                    for trial in range(self.trials_per_point):
                        verdict = self._run_trial(spec, mode, trial)
                        report.verdicts.append(verdict)
                        self.progress(
                            f"{verdict.status:>9s}  {name} [{mode}] "
                            f"trial {trial}"
                            + (
                                f": {'; '.join(verdict.violations)}"
                                if verdict.violations
                                else ""
                            )
                        )
        finally:
            if not self.keep and self._own_workdir:
                shutil.rmtree(self.workdir, ignore_errors=True)
        return report

    def _run_trial(self, spec: PointSpec, mode: str, trial: int) -> TrialVerdict:
        start = time.monotonic()
        verdict = TrialVerdict(
            point=spec.name,
            mode=mode,
            trial=trial,
            seed=self.seed,
            hit=1,
            torn=False,
        )
        if mode not in spec.modes:
            verdict.applicable = False
            return verdict
        trialdir = self.workdir / f"{spec.name.replace('.', '-')}-{mode}-{trial}"
        trialdir.mkdir(parents=True, exist_ok=True)
        token = trialdir / "strike.token"
        schedule = self._schedule(spec, trial, token)
        verdict.hit, verdict.torn = schedule.hit, schedule.torn
        try:
            if spec.phase == "analyze":
                self._analyze_phase_trial(spec, mode, trialdir, schedule, verdict)
            elif spec.phase == "service":
                self._service_phase_trial(spec, trialdir, schedule, verdict)
            elif spec.phase == "retention":
                self._retention_phase_trial(spec, trialdir, schedule, verdict)
            else:
                self._run_phase_trial(spec, mode, trialdir, schedule, verdict)
        except Exception as exc:  # noqa: BLE001 - a broken trial is a verdict
            verdict.violations.append(
                f"trial harness error: {type(exc).__name__}: {exc}"
            )
        verdict.fired = token.exists()
        verdict.duration_s = time.monotonic() - start
        if not self.keep:
            shutil.rmtree(trialdir, ignore_errors=True)
        return verdict

    def _run_phase_trial(
        self,
        spec: PointSpec,
        mode: str,
        trialdir: Path,
        schedule: ChaosSchedule,
        verdict: TrialVerdict,
    ) -> None:
        golden_dir, golden_thicket = self._golden(spec)
        outdir = trialdir / "campaign"
        outdir.mkdir()
        params = _trial_params(outdir, mode, spec)
        pack = _effective_pack(mode, spec)
        if mode == "serial" and spec.name in (
            "calipack.mid-merge",
            "calipack.post-merge-unlink",
        ):
            self._seed_stranded_segments(
                outdir,
                golden_dir,
                count=2 if spec.name == "calipack.post-merge-unlink" else 1,
            )

        # Phase 1: the armed run. Exit 0 = completed (point unreached, or
        # a worker/shard crash the supervising process healed in-flight).
        code = self._spawn(_run_armed_campaign, params, schedule)
        verdict.killed = code == CHAOS_KILL_EXITCODE
        if code not in (0, CHAOS_KILL_EXITCODE):
            verdict.violations.append(
                f"armed campaign died with unexpected exit code {code}"
            )
            return
        if mode == "sharded":
            # A killed coordinator leaves shard processes to notice the
            # re-parenting and exit; audit only a quiescent store.
            self._wait_shards_quiesce(outdir)

        # Phase 2: post-crash atomicity — targets are never torn.
        snap = invariants.snapshot_store(outdir)
        verdict.violations += self._check_target_atomicity(outdir)

        # Phase 3: fsck heals; completed cells must survive it.
        fsck_directory(outdir)
        verdict.violations += [
            f"post-fsck: {v}"
            for v in invariants.check_completed_cells_remembered(snap, outdir)
        ]

        # Phase 4: resume must finish the campaign and leave it clean.
        code = self._spawn(_run_resume_campaign, params)
        if code != 0:
            verdict.violations.append(
                f"resume campaign failed with exit code {code}"
            )
            return
        verdict.violations += [
            f"post-resume: {v}"
            for v in invariants.check_full_cell_set(
                self._expected_cells(params), outdir
            )
        ]
        verdict.violations += [
            f"post-resume: {v}"
            for v in invariants.check_sealed_preserved(
                snap, outdir, check_crc=not spec.execute
            )
        ]
        if mode == "sharded":
            verdict.violations += [
                f"post-resume: {v}"
                for v in invariants.check_shard_campaign(
                    self._expected_cells(params), outdir
                )
            ]
        recheck = fsck_directory(outdir)
        if not recheck.clean:
            verdict.violations.append(
                "post-resume fsck still found damage: " + recheck.summary()
            )

        # Phase 5: analysis equivalence on all four ingest paths.
        verdict.violations += self._check_analysis(
            outdir, trialdir, spec, golden_thicket, pack=pack
        )

    def _service_phase_trial(
        self,
        spec: PointSpec,
        trialdir: Path,
        schedule: ChaosSchedule,
        verdict: TrialVerdict,
    ) -> None:
        """Kill the job service mid-transition, restart it, check I6.

        Phase 1 runs a scheduler (armed) over a one-job store; the
        strike kills it mid-save, mid-claim, or mid-drain. Phase 2
        audits atomicity on the quiesced store (records parse sealed,
        campaign targets untorn). Phase 3 fscks the whole service root.
        Phase 4 restarts the service unarmed — recovery plus a client's
        idempotent resubmit — and requires convergence to SUCCEEDED.
        Phase 5 checks I6 and analysis equivalence against the golden.
        """
        golden_dir, golden_thicket = self._golden(spec)
        root = trialdir / "service"
        root.mkdir()
        campaign = root / "campaigns" / CHAOS_JOB_ID

        # Phase 1: the armed service run.
        code = self._spawn(
            _run_armed_service,
            str(root),
            schedule,
            spec.name == "service.mid-drain",
        )
        verdict.killed = code == CHAOS_KILL_EXITCODE
        if code not in (0, CHAOS_KILL_EXITCODE):
            verdict.violations.append(
                f"armed service died with unexpected exit code {code}"
            )
            return
        # A killed scheduler leaves its job runner to notice the
        # re-parenting and exit (JOB_ORPHANED); audit a quiescent store.
        self._wait_jobs_quiesce(root)

        # Phase 2: post-crash atomicity.
        verdict.violations += [
            f"post-crash: {v}"
            for v in invariants.check_job_records_parse(root)
        ]
        snap = None
        if campaign.is_dir():
            snap = invariants.snapshot_store(campaign)
            verdict.violations += self._check_target_atomicity(campaign)

        # Phase 3: fsck the whole service root (records, leases,
        # campaigns) — completed cells must survive it.
        fsck_directory(root)
        if snap is not None:
            verdict.violations += [
                f"post-fsck: {v}"
                for v in invariants.check_completed_cells_remembered(
                    snap, campaign
                )
            ]

        # Phase 4: the restarted daemon (unarmed) must converge.
        code = self._spawn(_run_service_recovery, str(root))
        if code != 0:
            verdict.violations.append(
                f"service recovery failed with exit code {code}"
            )
            return

        # Phase 5: I6, fsck-clean, and analysis equivalence.
        expected = self._expected_cells(
            _trial_params(campaign, "serial", spec)
        )
        verdict.violations += [
            f"post-recovery: {v}"
            for v in invariants.check_job_service(
                root, {CHAOS_JOB_ID: expected}
            )
        ]
        recheck = fsck_directory(root)
        if not recheck.clean:
            verdict.violations.append(
                "post-recovery fsck still found damage: " + recheck.summary()
            )
        verdict.violations += self._check_analysis(
            campaign, trialdir, spec, golden_thicket, pack=False
        )

    def _retention_seed(self) -> Path:
        """A converged two-job service root, built once, copied per trial."""
        if self._retention_seed_dir is not None:
            return self._retention_seed_dir
        seed_root = self.workdir / "retention-seed"
        code = self._spawn(_build_retention_seed, str(seed_root))
        if code != 0:
            raise RuntimeError(f"retention seed build exited {code}")
        self._retention_seed_dir = seed_root
        return seed_root

    def _retention_phase_trial(
        self,
        spec: PointSpec,
        trialdir: Path,
        schedule: ChaosSchedule,
        verdict: TrialVerdict,
    ) -> None:
        """Kill GC/compaction mid-destruction, recover, check I7.

        Phase 1 copies a converged two-SUCCEEDED-job root and runs an
        armed GC pass (policy condemns the older job) plus a compaction
        of the survivor's archive; the strike lands before the tombstone,
        inside the tree removal, or between the compaction seal and
        swap. Phase 2 audits atomicity (records parse; the survivor's
        store is untorn). Phase 3 fscks the root — finishing any
        interrupted reclamation the sealed tombstone proves and sweeping
        orphan compaction scratch. Phase 4 runs the unarmed converging
        pass a restarted daemon would. Phase 5 checks I7: the condemned
        job is fully reclaimed, the survivor fully live with every
        pre-GC sealed profile byte-identical, and the survivor's
        campaign analysis-equivalent to the golden.
        """
        golden_dir, golden_thicket = self._golden(spec)
        seed = self._retention_seed()
        root = trialdir / "service"
        shutil.copytree(seed, root)
        survivor = root / "campaigns" / RETENTION_JOBS[-1]

        pre = {
            job_id: invariants.snapshot_store(root / "campaigns" / job_id)
            for job_id in RETENTION_JOBS
        }

        # Phase 1: the armed GC + compaction pass.
        code = self._spawn(_run_armed_retention, str(root), schedule)
        verdict.killed = code == CHAOS_KILL_EXITCODE
        if code not in (0, CHAOS_KILL_EXITCODE):
            verdict.violations.append(
                f"armed retention pass died with unexpected exit code {code}"
            )
            return

        # Phase 2: post-crash atomicity — a GC crash must never tear a
        # record, and never touch the surviving job's store at all.
        verdict.violations += [
            f"post-crash: {v}"
            for v in invariants.check_job_records_parse(root)
        ]
        verdict.violations += [
            f"post-crash survivor: {v}"
            for v in self._check_target_atomicity(survivor)
        ]

        # Phase 3: fsck finishes what the tombstone proves.
        fsck_directory(root)

        # Phase 4: the unarmed converging pass.
        code = self._spawn(_run_retention_recovery, str(root))
        if code != 0:
            verdict.violations.append(
                f"retention recovery failed with exit code {code}"
            )
            return

        # Phase 5: I7 plus fsck-clean plus analysis equivalence.
        verdict.violations += [
            f"post-recovery: {v}"
            for v in invariants.check_retention(root, pre)
        ]
        old_id = RETENTION_JOBS[0]
        if (root / "campaigns" / old_id).exists():
            verdict.violations.append(
                f"post-recovery: condemned job {old_id} was not reclaimed"
            )
        recheck = fsck_directory(root)
        if not recheck.clean:
            verdict.violations.append(
                "post-recovery fsck still found damage: " + recheck.summary()
            )
        verdict.violations += self._check_analysis(
            survivor, trialdir, spec, golden_thicket, pack=True
        )

    @staticmethod
    def _wait_jobs_quiesce(root: Path, timeout_s: float = 15.0) -> None:
        """Wait for orphaned job runners to notice their scheduler died
        (the orphan watch's re-parenting poll) and exit, so the
        post-crash audit reads a quiescent store."""
        from repro.suite.manifest import LOCK_NAME, _pid_alive

        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            live = False
            for lease in sorted((root / "jobs").glob("*.lease")):
                try:
                    holder = json.loads(lease.read_text()).get("pid")
                except (OSError, ValueError):
                    holder = None
                if _pid_alive(holder):
                    live = True
            for lock in sorted((root / "campaigns").glob(f"*/{LOCK_NAME}")):
                try:
                    holder = json.loads(lock.read_text()).get("pid")
                except (OSError, ValueError):
                    holder = None
                if _pid_alive(holder):
                    live = True
            if not live:
                return
            time.sleep(0.1)

    def _analyze_phase_trial(
        self,
        spec: PointSpec,
        mode: str,
        trialdir: Path,
        schedule: ChaosSchedule,
        verdict: TrialVerdict,
    ) -> None:
        """Crash mid-analyze (the ingest-cache store), then re-analyze."""
        golden_dir, golden_thicket = self._golden(spec)
        outdir = trialdir / "campaign"
        outdir.mkdir()
        params = _trial_params(outdir, mode, spec)
        code = self._spawn(_run_resume_campaign, params)
        if code != 0:
            verdict.violations.append(
                f"setup campaign failed with exit code {code}"
            )
            return
        snap = invariants.snapshot_store(outdir)
        sources = self._sources(outdir, spec.pack)
        cache_dir = trialdir / "cache"
        code = self._spawn(
            _run_armed_analyze, sources, str(cache_dir), schedule
        )
        verdict.killed = code == CHAOS_KILL_EXITCODE
        if code not in (0, CHAOS_KILL_EXITCODE):
            verdict.violations.append(
                f"armed analyze died with unexpected exit code {code}"
            )
            return
        # The campaign store is read-only to analysis: nothing changes.
        verdict.violations += [
            f"post-crash: {v}"
            for v in invariants.check_sealed_preserved(snap, outdir)
        ]
        fsck_directory(outdir)
        verdict.violations += self._check_analysis(
            outdir, trialdir, spec, golden_thicket, cache_dir=cache_dir
        )

    # ---------------------------------------------------------------- checks
    def _check_target_atomicity(self, outdir: Path) -> list[str]:
        """No durable *target* may ever be left torn by a crash.

        In-flight state lives in tmp siblings and unsealed archive tails
        — both are recoverable. A loose ``.cali`` under its final name
        that does not verify, or a manifest that does not parse, means a
        write was not atomic.
        """
        from repro.caliper.cali import STATUS_OK, verify_cali
        from repro.suite.manifest import MANIFEST_NAME

        violations = []
        manifests = [outdir / MANIFEST_NAME]
        shard_map = outdir / "shard_map.json"
        if shard_map.exists():
            try:
                json.loads(shard_map.read_text())
            except ValueError as exc:
                violations.append(f"post-crash: shard map torn: {exc}")
        shard_root = outdir / "shards"
        if shard_root.is_dir():
            manifests += [
                shard_dir / MANIFEST_NAME
                for shard_dir in sorted(shard_root.iterdir())
                if shard_dir.is_dir()
            ]
        for manifest in manifests:
            if not manifest.exists():
                continue
            try:
                json.loads(manifest.read_text())
            except ValueError as exc:
                violations.append(
                    f"post-crash: manifest {manifest.name} torn: {exc}"
                )
        for path in sorted(outdir.glob("*.cali")):
            status, detail = verify_cali(path)
            if status != STATUS_OK:
                violations.append(
                    f"post-crash: loose profile {path.name} is {status} "
                    f"({detail}) — the durable write was not atomic"
                )
        return violations

    def _check_analysis(
        self,
        outdir: Path,
        trialdir: Path,
        spec: PointSpec,
        golden_thicket,
        cache_dir: Path | None = None,
        pack: bool | None = None,
    ) -> list[str]:
        from repro.thicket import Thicket

        if pack is None:
            pack = spec.pack
        sources = self._sources(outdir, pack)
        violations = []

        def compare(label: str, thicket) -> None:
            violations.extend(
                f"analyze[{label}]: {v}"
                for v in invariants.thickets_match(
                    golden_thicket, thicket, volatile=spec.execute
                )
            )

        compare("serial", Thicket.from_caliperreader(sources, workers=1))
        compare("parallel", Thicket.from_caliperreader(sources, workers=2))

        # Complement path: flip the storage representation and re-ingest.
        flipdir = trialdir / "flip"
        flipdir.mkdir(exist_ok=True)
        if pack:
            archive = outdir / calipack.ARCHIVE_NAME
            calipack.unpack_archive(archive, flipdir, remove=False)
            flip_sources = sorted(str(p) for p in flipdir.glob("*.cali"))
        else:
            flip_archive = flipdir / ("flip" + calipack.ARCHIVE_SUFFIX)
            calipack.pack_directory(outdir, flip_archive, remove=False)
            names = sorted(
                e.name for e in calipack.load_entries(flip_archive)
            )
            flip_sources = [
                calipack.member_ref(flip_archive, n) for n in names
            ]
        compare("flipped", Thicket.from_caliperreader(flip_sources))

        # Cache path: a cold store then a warm hit must agree too.
        cache = cache_dir if cache_dir is not None else trialdir / "cache"
        compare("cache-cold", Thicket.from_caliperreader(sources, cache=str(cache)))
        compare("cache-warm", Thicket.from_caliperreader(sources, cache=str(cache)))
        return violations

    # -------------------------------------------------------------- self-test
    def self_test(self) -> dict:
        """Prove the invariant checks can fail (a harness that cannot
        detect a loss proves nothing).

        Two repairs are deliberately suppressed and the checks must
        flag the damage:

        * **silent corruption, fsck suppressed** — a sealed profile of a
          clean campaign is bit-rotted in place and *no* fsck runs; I1
          must report the alteration.
        * **resume suppressed** — a campaign is crashed between two
          cells and never resumed; I3 must report the missing cells.
        """
        spec = REGISTERED_POINTS["executor.post-cell"]
        scenarios = []
        try:
            # --- scenario 1: rot a sealed profile, suppress fsck ---------
            outdir = self.workdir / "selftest-corruption"
            params = _trial_params(outdir, "serial", spec)
            code = self._spawn(_run_resume_campaign, params)
            if code != 0:
                raise RuntimeError(f"setup campaign exited {code}")
            snap = invariants.snapshot_store(outdir)
            victim = sorted(outdir.glob("*.cali"))[0]
            raw = bytearray(victim.read_bytes())
            raw[len(raw) // 4] ^= 0xFF  # payload bit-rot; footer now lies
            victim.write_bytes(bytes(raw))
            found = invariants.check_sealed_preserved(snap, outdir)
            scenarios.append(
                {
                    "name": "silent-corruption-without-fsck",
                    "detected": bool(found),
                    "violations": found,
                }
            )

            # --- scenario 2: crash between cells, suppress resume --------
            outdir = self.workdir / "selftest-noresume"
            outdir.mkdir(parents=True, exist_ok=True)
            params = _trial_params(outdir, "serial", spec)
            schedule = ChaosSchedule(
                point=spec.name,
                hit=1,
                mode="exit",
                seed=self.seed,
                token=str(self.workdir / "selftest-noresume.token"),
            )
            code = self._spawn(_run_armed_campaign, params, schedule)
            if code != CHAOS_KILL_EXITCODE:
                raise RuntimeError(
                    f"armed campaign exited {code}, expected a chaos kill"
                )
            fsck_directory(outdir)  # fsck alone cannot finish the campaign
            found = invariants.check_full_cell_set(
                self._expected_cells(params), outdir
            )
            scenarios.append(
                {
                    "name": "crash-without-resume",
                    "detected": bool(found),
                    "violations": found,
                }
            )
        finally:
            if not self.keep and self._own_workdir:
                shutil.rmtree(self.workdir, ignore_errors=True)
        return {
            "ok": all(s["detected"] for s in scenarios),
            "scenarios": scenarios,
        }
