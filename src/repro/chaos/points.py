"""Named crash points: the durable-write boundaries chaos can kill.

Every place the pipeline makes data durable — a profile write, an
archive append, a manifest checkpoint, a reference-checksum publish, an
ingest-cache store — calls :func:`crash_point` with a registered name.
The call is a zero-cost no-op (one global load and an ``is None`` test)
unless a :class:`ChaosSchedule` is armed, so production paths pay
nothing.

An armed schedule names exactly one point and the occurrence (``hit``)
at which to strike. Striking can

* raise :class:`ChaosCrash` (a ``BaseException``, so ordinary handlers
  never swallow it) — the in-process trial mode used by unit tests, or
* ``os._exit`` with :data:`CHAOS_KILL_EXITCODE` — the subprocess trial
  mode: no ``finally`` blocks, no ``atexit``, no buffered flushes; the
  closest a Python process gets to ``kill -9`` mid-write.

A schedule can also simulate a **torn write**: before dying it
truncates the named in-flight file (the tmp sibling, or an archive's
unsealed tail) to a seeded prefix length — the state a power cut leaves
when the kernel had only partially flushed. The prefix length is a pure
function of ``(seed, path, size)``, so a trial is replayable from its
seed alone.

Schedules propagate to forked children automatically (module state) and
to spawned ones via the :data:`ENV_VAR` environment variable, which
:func:`arm` exports and :func:`crash_point` consults lazily — a
supervised campaign's workers inherit the armed schedule either way.
The optional ``token`` file makes a schedule fire **exactly once
across every process of a trial**: the first striker claims the token
with ``O_CREAT | O_EXCL``; later matches see it and pass through. That
is what keeps a supervised trial convergent — the respawned worker does
not crash at the same boundary forever.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any

#: exit status of an ``os._exit`` chaos kill (internal to the harness;
#: distinct from the worker-crash sentinel 73 so logs stay readable)
CHAOS_KILL_EXITCODE = 77

ENV_VAR = "REPRO_CHAOS"


class ChaosCrash(BaseException):
    """The in-process simulated crash (never caught by ``except Exception``)."""


@dataclass(frozen=True)
class PointSpec:
    """One registered crash point: where it lives and how it can fire.

    ``phase`` is the pipeline phase whose child process the runner arms
    (``"run"`` or ``"analyze"``); ``modes`` the campaign modes in which
    the point can fire at all; ``torn`` whether a torn-write simulation
    makes sense at this boundary (an in-flight file exists); ``pack``
    whether the trial campaign must write a packed archive to reach it.
    """

    name: str
    phase: str = "run"
    modes: tuple[str, ...] = ("serial", "supervised")
    torn: bool = False
    pack: bool = False
    execute: bool = False
    description: str = ""


#: every crash point woven into the codebase, by name
REGISTERED_POINTS: dict[str, PointSpec] = {
    spec.name: spec
    for spec in (
        # ---- util/fsio.py: the durable tmp+replace protocol ----------
        PointSpec(
            "fsio.before-tmp-write",
            description="durable write: before any tmp byte lands",
        ),
        PointSpec(
            "fsio.after-tmp-fsync",
            torn=True,
            description="durable write: tmp written and fsynced, "
            "target untouched (torn: the fsync lied)",
        ),
        PointSpec(
            "fsio.before-replace",
            torn=True,
            description="durable write: immediately before os.replace",
        ),
        PointSpec(
            "fsio.after-replace",
            description="durable write: target renamed, directory "
            "entry not yet fsynced",
        ),
        PointSpec(
            "fsio.before-dir-fsync",
            description="durable write: before the directory fsync "
            "that makes the rename durable",
        ),
        # ---- caliper/calipack.py: the packed archive ------------------
        PointSpec(
            "calipack.mid-entry-append",
            torn=True,
            pack=True,
            modes=("serial", "supervised", "sharded"),
            description="archive append: entry bytes written, good_end "
            "not advanced (torn: partial entry tail)",
        ),
        PointSpec(
            "calipack.pre-index",
            pack=True,
            description="archive seal: before the index is written "
            "(footer-less archive; salvage scan territory)",
        ),
        PointSpec(
            "calipack.pre-footer",
            torn=True,
            pack=True,
            description="archive seal: index written, footer not "
            "(torn: partial index tail)",
        ),
        PointSpec(
            "calipack.mid-merge",
            pack=True,
            description="segment merge: segments folded into the "
            "campaign archive (durably replaced), none deleted yet",
        ),
        PointSpec(
            "calipack.post-merge-unlink",
            pack=True,
            description="segment merge: merged archive durable, some "
            "segments deleted, others still on disk",
        ),
        # ---- suite/coordinator.py: the sharded campaign ---------------
        PointSpec(
            "shard.pre-map-save",
            modes=("sharded",),
            pack=True,
            description="shard coordinator: cell partition computed, "
            "shard map not yet durably written",
        ),
        PointSpec(
            "shard.post-shard-exit",
            modes=("sharded",),
            pack=True,
            description="shard coordinator: a shard supervisor exited "
            "and was recorded, its outcome not yet acted on",
        ),
        PointSpec(
            "shard.mid-merge-level",
            modes=("sharded",),
            pack=True,
            description="shard merge tree: one level of intermediates "
            "durable in scratch, shard archives intact",
        ),
        # ---- suite/manifest.py: the campaign ledger -------------------
        PointSpec(
            "manifest.pre-save",
            modes=("serial", "supervised", "sharded"),
            description="manifest checkpoint: cell completed, ledger "
            "not yet rewritten",
        ),
        # ---- suite/refchecksums.py: the Base_Seq sidecar --------------
        PointSpec(
            "refchecksums.pre-publish",
            execute=True,
            description="reference-checksum publish: value computed, "
            "sidecar not yet rewritten",
        ),
        # ---- thicket/ingest_cache.py: composed-table cache ------------
        PointSpec(
            "ingest-cache.pre-store",
            phase="analyze",
            pack=True,
            description="ingest cache: tables composed, cache entry "
            "not yet written",
        ),
        # ---- service/: the durable campaign job service ---------------
        PointSpec(
            "service.pre-job-save",
            phase="service",
            modes=("service",),
            description="job store: a state transition computed, the "
            "job record not yet durably rewritten",
        ),
        PointSpec(
            "service.post-claim",
            phase="service",
            modes=("service",),
            description="scheduler: job lease claimed (O_EXCL token on "
            "disk), the RUNNING transition not yet saved",
        ),
        PointSpec(
            "service.mid-drain",
            phase="service",
            modes=("service",),
            description="graceful drain: about to stop a running job "
            "and requeue it; record still RUNNING, lease still held",
        ),
        # ---- service/retention.py: GC + archive compaction ------------
        PointSpec(
            "retention.pre-tombstone",
            phase="retention",
            modes=("service",),
            description="retention GC: job selected for collection, "
            "tombstone not yet durably written (job must stay fully "
            "live)",
        ),
        PointSpec(
            "retention.mid-delete",
            phase="retention",
            modes=("service",),
            description="retention GC: tombstone durable, campaign "
            "directory partially removed (fsck must finish the "
            "reclamation)",
        ),
        PointSpec(
            "retention.pre-compact-swap",
            phase="retention",
            modes=("service",),
            torn=True,
            pack=True,
            description="archive compaction: rebuilt archive written to "
            "scratch, atomic swap not yet performed (torn: partial "
            "scratch tail; original must stay bit-identical)",
        ),
        # ---- campaign loops: between two cells' durable records -------
        PointSpec(
            "executor.post-cell",
            modes=("serial",),
            description="serial campaign loop: cell recorded and "
            "checkpointed, next cell not started",
        ),
        PointSpec(
            "supervisor.post-record",
            modes=("supervised",),
            description="supervisor loop: worker result recorded and "
            "checkpointed, next dispatch not made",
        ),
    )
}


def point_names() -> list[str]:
    return list(REGISTERED_POINTS)


@dataclass
class ChaosSchedule:
    """One armed strike: crash at the ``hit``-th occurrence of ``point``.

    ``mode`` is ``"raise"`` (:class:`ChaosCrash`) or ``"exit"``
    (``os._exit``). ``torn`` truncates the in-flight file to a seeded
    prefix before dying. ``token``, when set, is a filesystem path
    claimed exclusively by the first striker so the schedule fires at
    most once across every process sharing it.
    """

    point: str
    hit: int = 1
    mode: str = "raise"
    torn: bool = False
    seed: int = 0
    token: str | None = None
    count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.point not in REGISTERED_POINTS:
            raise ValueError(
                f"unknown crash point {self.point!r}; "
                f"registered: {point_names()}"
            )
        if self.mode not in ("raise", "exit"):
            raise ValueError(f"mode must be 'raise' or 'exit', got {self.mode!r}")
        if self.hit < 1:
            raise ValueError(f"hit must be >= 1, got {self.hit}")

    # ------------------------------------------------------- serialization
    def to_json(self) -> str:
        return json.dumps(
            {
                "point": self.point,
                "hit": self.hit,
                "mode": self.mode,
                "torn": self.torn,
                "seed": self.seed,
                "token": self.token,
            }
        )

    @classmethod
    def from_json(cls, raw: str) -> "ChaosSchedule":
        data: dict[str, Any] = json.loads(raw)
        return cls(
            point=data["point"],
            hit=int(data.get("hit", 1)),
            mode=data.get("mode", "raise"),
            torn=bool(data.get("torn", False)),
            seed=int(data.get("seed", 0)),
            token=data.get("token"),
        )


# ---------------------------------------------------------------- arming
_armed: ChaosSchedule | None = None
_env_checked = False


def arm(schedule: ChaosSchedule) -> None:
    """Install ``schedule`` process-wide (and export it to children)."""
    global _armed, _env_checked
    _armed = schedule
    _env_checked = True
    os.environ[ENV_VAR] = schedule.to_json()


def disarm() -> None:
    global _armed, _env_checked
    _armed = None
    _env_checked = True
    os.environ.pop(ENV_VAR, None)


def armed_schedule() -> ChaosSchedule | None:
    """The armed schedule, adopting an inherited ``$REPRO_CHAOS`` lazily."""
    global _armed, _env_checked
    if _armed is None and not _env_checked:
        _env_checked = True
        raw = os.environ.get(ENV_VAR, "").strip()
        if raw:
            try:
                _armed = ChaosSchedule.from_json(raw)
            except (ValueError, KeyError):
                _armed = None
    return _armed


def _torn_prefix(seed: int, path: str, span: int) -> int:
    """Deterministic torn-write length in ``[0, span]`` for this file."""
    digest = zlib.crc32(f"{seed}:{path}:{span}".encode("utf-8")) & 0xFFFFFFFF
    return digest % (span + 1)


def _tear(torn_file: str, torn_base: int, seed: int) -> None:
    """Truncate the in-flight file to a seeded prefix past ``torn_base``."""
    try:
        size = os.path.getsize(torn_file)
    except OSError:
        return
    span = max(0, size - torn_base)
    keep = torn_base + _torn_prefix(seed, os.path.basename(torn_file), span)
    with open(torn_file, "r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - fs without fsync
            pass


def crash_point(
    name: str,
    path: str | os.PathLike[str] | None = None,
    torn_file: str | os.PathLike[str] | None = None,
    torn_base: int = 0,
) -> None:
    """A durable-write boundary chaos can strike.

    ``path`` names the durable target (diagnostics only); ``torn_file``
    the in-flight file a torn-write simulation may truncate, with
    ``torn_base`` the byte offset below which it must stay intact (an
    archive's already-durable prefix). No-op unless an armed schedule
    names this point and its hit count comes due.
    """
    schedule = armed_schedule()
    if schedule is None:
        return
    if name not in REGISTERED_POINTS:  # typo guard, armed paths only
        raise ValueError(f"unregistered crash point {name!r}")
    if name != schedule.point:
        return
    schedule.count += 1
    if schedule.count != schedule.hit:
        return
    if schedule.token is not None:
        try:
            fd = os.open(schedule.token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # another process already struck this trial
        except OSError:
            return  # token dir vanished: err on the side of not crashing
        try:
            os.write(fd, f"{name} pid={os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
    if schedule.torn and torn_file is not None:
        _tear(str(torn_file), torn_base, schedule.seed)
    if schedule.mode == "exit":
        os._exit(CHAOS_KILL_EXITCODE)
    raise ChaosCrash(
        f"chaos crash at {name} (hit {schedule.hit}"
        f"{', torn' if schedule.torn else ''})"
        + (f" while writing {path}" if path is not None else "")
    )
