"""The durable job store: one crash-safe JSON record per campaign job.

Every job the service accepts lives in ``<root>/jobs/<job_id>.json`` —
a CRC-sealed envelope (the same seal discipline as campaign manifests
and ``.cali`` footers) rewritten with the full fsio durable protocol on
every state change. The record *is* the job: there is no in-memory
queue to lose, and a restarted scheduler rebuilds its world by listing
the directory.

State machine (every transition validated, every transition durable)::

    SUBMITTED ──> QUEUED ──> RUNNING ──> SUCCEEDED
        │            │          │  ├───> FAILED
        │            │          │  ├───> CANCELLED
        │            │          │  └───> ORPHANED
        │            │          └─-───-> QUEUED      (drain / heal requeue)
        │            ├───> CANCELLED
        │            └───> ORPHANED
        └───> QUEUED | CANCELLED

``SUBMITTED`` exists on disk only in the gap between the exclusive
record creation and the first durable save; scheduler recovery promotes
any survivor of a crash in that gap to ``QUEUED``. Terminal states
(``SUCCEEDED``/``FAILED``/``CANCELLED``/``ORPHANED``) never transition
again.

A damaged record (torn bytes, bad CRC) is backed up as ``.bak`` —
forensics first, like the manifest — and reported to fsck rather than
silently dropped. Cancellation is requested through a sibling marker
file (``<job_id>.cancel``) so the scheduler stays the *single writer*
of every record after submission; there is no load-modify-save race
between the API and the scheduler.
"""

from __future__ import annotations

import json
import os
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.points import crash_point
from repro.suite.run_params import RunParams
from repro.util.fsio import write_durable_text

JOBS_DIR = "jobs"
CAMPAIGNS_DIR = "campaigns"
RECORD_SUFFIX = ".json"
LEASE_SUFFIX = ".lease"
CANCEL_SUFFIX = ".cancel"
TOMBSTONE_SUFFIX = ".tombstone"
PIN_SUFFIX = ".pin"
RECORD_FORMAT = "rajaperf-job"
RECORD_VERSION = 1
TOMBSTONE_FORMAT = "rajaperf-tombstone"
TOMBSTONE_VERSION = 1

STATE_SUBMITTED = "SUBMITTED"
STATE_QUEUED = "QUEUED"
STATE_RUNNING = "RUNNING"
STATE_SUCCEEDED = "SUCCEEDED"
STATE_FAILED = "FAILED"
STATE_CANCELLED = "CANCELLED"
STATE_ORPHANED = "ORPHANED"

TERMINAL_STATES = frozenset(
    (STATE_SUCCEEDED, STATE_FAILED, STATE_CANCELLED, STATE_ORPHANED)
)
ACTIVE_STATES = frozenset((STATE_SUBMITTED, STATE_QUEUED, STATE_RUNNING))
ALL_STATES = TERMINAL_STATES | ACTIVE_STATES

#: every legal edge of the job state machine
TRANSITIONS: dict[str, frozenset[str]] = {
    STATE_SUBMITTED: frozenset((STATE_QUEUED, STATE_CANCELLED)),
    STATE_QUEUED: frozenset((STATE_RUNNING, STATE_CANCELLED, STATE_ORPHANED)),
    STATE_RUNNING: frozenset(
        (STATE_SUCCEEDED, STATE_FAILED, STATE_CANCELLED, STATE_ORPHANED,
         STATE_QUEUED)
    ),
    STATE_SUCCEEDED: frozenset(),
    STATE_FAILED: frozenset(),
    STATE_CANCELLED: frozenset(),
    STATE_ORPHANED: frozenset(),
}


class JobError(ValueError):
    """Anything structurally wrong with a job: spec, id, or transition."""


class JobRecordDamaged(JobError):
    """A job record on disk failed its seal (torn or bit-rotted)."""


class TombstoneDamaged(JobError):
    """A tombstone on disk failed its seal — it condemns nothing."""


# --------------------------------------------------------------- job spec
#: keys a job spec may carry; each maps onto a RunParams field
_SPEC_KEYS = frozenset(
    (
        "problem_size",
        "reps",
        "variants",
        "machines",
        "groups",
        "kernels",
        "features",
        "gpu_block_sizes",
        "execute",
        "trials",
        "pack",
        "workers",
        "shards",
        "max_attempts",
        "heartbeat_timeout",
        "shard_lease_timeout",
        "retry_base_delay",
        "retry_max_delay",
        "retry_jitter",
    )
)

_TUPLE_KEYS = frozenset(
    ("variants", "machines", "kernels", "gpu_block_sizes")
)


def params_from_spec(
    spec: dict[str, Any], output_dir: str | Path, resume: bool = False
) -> RunParams:
    """Build the job's :class:`RunParams` from its JSON spec.

    Raises :class:`JobError` (a ``ValueError``) on unknown keys or any
    value ``RunParams`` itself rejects — submission-time validation and
    run-time construction are the same code path, so a stored job can
    always be turned into a runnable campaign.
    """
    from repro.suite.features import Feature
    from repro.suite.groups import Group

    if not isinstance(spec, dict):
        raise JobError(f"job spec must be a JSON object, got {type(spec).__name__}")
    unknown = sorted(set(spec) - _SPEC_KEYS)
    if unknown:
        raise JobError(
            f"unknown job spec key(s) {unknown}; allowed: {sorted(_SPEC_KEYS)}"
        )
    kwargs: dict[str, Any] = {}
    try:
        for key, value in spec.items():
            if key in _TUPLE_KEYS:
                kwargs[key] = tuple(value)
            elif key == "groups":
                kwargs[key] = tuple(Group(g) for g in value)
            elif key == "features":
                kwargs[key] = tuple(Feature(f) for f in value)
            else:
                kwargs[key] = value
        shards = int(spec.get("shards", 0) or 0)
        if shards > 0:
            kwargs["pack"] = True  # the shard merge tree needs archives
        return RunParams(
            output_dir=str(output_dir), resume=resume, **kwargs
        )
    except JobError:
        raise
    except (TypeError, ValueError) as exc:
        raise JobError(f"invalid job spec: {exc}") from exc


# ------------------------------------------------------------- the record
@dataclass
class JobRecord:
    """One job's durable state (mirrors ``jobs/<job_id>.json``)."""

    job_id: str
    tenant: str
    spec: dict[str, Any]
    state: str = STATE_SUBMITTED
    seq: int = 0
    attempts: int = 0
    resume: bool = False
    cancel_requested: bool = False
    reason: str = ""
    progress: dict[str, Any] = field(default_factory=dict)
    created_at: str = ""
    updated_at: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, new_state: str, reason: str | None = None) -> None:
        """Move along one validated edge of the state machine."""
        if new_state not in ALL_STATES:
            raise JobError(f"unknown job state {new_state!r}")
        if new_state not in TRANSITIONS[self.state]:
            raise JobError(
                f"illegal job transition {self.state} -> {new_state} "
                f"(job {self.job_id})"
            )
        self.state = new_state
        if reason is not None:
            self.reason = reason

    def to_payload(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "state": self.state,
            "seq": self.seq,
            "attempts": self.attempts,
            "resume": self.resume,
            "cancel_requested": self.cancel_requested,
            "reason": self.reason,
            "progress": self.progress,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "JobRecord":
        state = str(payload.get("state", ""))
        if state not in ALL_STATES:
            raise JobRecordDamaged(f"record carries unknown state {state!r}")
        return cls(
            job_id=str(payload["job_id"]),
            tenant=str(payload.get("tenant", "default")),
            spec=dict(payload.get("spec", {})),
            state=state,
            seq=int(payload.get("seq", 0)),
            attempts=int(payload.get("attempts", 0)),
            resume=bool(payload.get("resume", False)),
            cancel_requested=bool(payload.get("cancel_requested", False)),
            reason=str(payload.get("reason", "")),
            progress=dict(payload.get("progress", {})),
            created_at=str(payload.get("created_at", "")),
            updated_at=str(payload.get("updated_at", "")),
        )


# ----------------------------------------------------------------- sealing
def _payload_crc(payload: dict[str, Any]) -> str:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x}"


def seal_record(record: JobRecord) -> str:
    """The record's durable on-disk text: CRC-sealed JSON envelope."""
    payload = record.to_payload()
    envelope = {
        "format": RECORD_FORMAT,
        "version": RECORD_VERSION,
        "crc32": _payload_crc(payload),
        "job": payload,
    }
    return json.dumps(envelope, indent=1, sort_keys=True)


def parse_record_text(text: str) -> JobRecord:
    """Parse + verify a sealed record; :class:`JobRecordDamaged` on damage."""
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise JobRecordDamaged(f"record does not parse: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != RECORD_FORMAT:
        raise JobRecordDamaged("not a job record envelope")
    payload = envelope.get("job")
    if not isinstance(payload, dict):
        raise JobRecordDamaged("envelope carries no job payload")
    expected = envelope.get("crc32")
    actual = _payload_crc(payload)
    if expected != actual:
        raise JobRecordDamaged(
            f"record seal mismatch: recorded {expected}, computed {actual}"
        )
    return JobRecord.from_payload(payload)


def seal_tombstone(payload: dict[str, Any]) -> str:
    """A tombstone's durable on-disk text (same seal discipline).

    A tombstone is the retention subsystem's *condemnation proof*: its
    durable existence (sealed, CRC-verified) is what authorizes the
    destructive phase of a GC. Anything short of a fully-verifying
    tombstone condemns nothing — a torn or bit-rotted one is quarantined
    by fsck and the job stays live.
    """
    envelope = {
        "format": TOMBSTONE_FORMAT,
        "version": TOMBSTONE_VERSION,
        "crc32": _payload_crc(payload),
        "tombstone": payload,
    }
    return json.dumps(envelope, indent=1, sort_keys=True)


def parse_tombstone_text(text: str) -> dict[str, Any]:
    """Parse + verify a tombstone; :class:`TombstoneDamaged` on damage."""
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise TombstoneDamaged(f"tombstone does not parse: {exc}") from exc
    if (
        not isinstance(envelope, dict)
        or envelope.get("format") != TOMBSTONE_FORMAT
    ):
        raise TombstoneDamaged("not a tombstone envelope")
    payload = envelope.get("tombstone")
    if not isinstance(payload, dict):
        raise TombstoneDamaged("envelope carries no tombstone payload")
    expected = envelope.get("crc32")
    actual = _payload_crc(payload)
    if expected != actual:
        raise TombstoneDamaged(
            f"tombstone seal mismatch: recorded {expected}, computed {actual}"
        )
    if not payload.get("job_id"):
        raise TombstoneDamaged("tombstone names no job_id")
    return payload


def _wallclock() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S")


_ID_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def validate_job_id(job_id: str) -> str:
    if not job_id or len(job_id) > 128 or set(job_id) - _ID_OK:
        raise JobError(
            f"invalid job id {job_id!r}: use 1-128 chars of [A-Za-z0-9._-]"
        )
    if job_id.startswith("."):
        raise JobError(f"invalid job id {job_id!r}: must not start with '.'")
    return job_id


# ------------------------------------------------------------------- store
class JobStore:
    """The on-disk job store under one service root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / JOBS_DIR
        self.campaigns_dir = self.root / CAMPAIGNS_DIR

    def ensure_layout(self) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.campaigns_dir.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- paths
    def record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{RECORD_SUFFIX}"

    def lease_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{LEASE_SUFFIX}"

    def cancel_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{CANCEL_SUFFIX}"

    def tombstone_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{TOMBSTONE_SUFFIX}"

    def pin_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{PIN_SUFFIX}"

    def campaign_dir(self, job_id: str) -> Path:
        return self.campaigns_dir / job_id

    # --------------------------------------------------------------- submit
    def submit(
        self,
        spec: dict[str, Any],
        tenant: str = "default",
        job_id: str | None = None,
    ) -> JobRecord:
        """Validate, durably record, and queue one job.

        A caller-chosen ``job_id`` makes submission idempotent: retrying
        a submit whose acknowledgment was lost returns the existing
        record instead of double-queuing the campaign. The record file
        is claimed with ``O_CREAT | O_EXCL`` so two racing submitters of
        one id cannot interleave, then the QUEUED transition lands via
        the full durable-write protocol.
        """
        params_from_spec(spec, self.root / "probe")  # validation only
        self.ensure_layout()
        if job_id is not None:
            validate_job_id(job_id)
            existing = self.load(job_id)
            if existing is not None:
                return existing
            record = self._create(job_id, spec, tenant)
            if record is None:  # lost the creation race: adopt the winner
                existing = self.load(job_id)
                if existing is None:
                    raise JobError(f"job {job_id} exists but is unreadable")
                return existing
        else:
            record = None
            seq = self._next_seq()
            while record is None:
                record = self._create(f"job-{seq:06d}", spec, tenant)
                seq += 1
        record.transition(STATE_QUEUED)
        self.save(record)
        return record

    def _create(
        self, job_id: str, spec: dict[str, Any], tenant: str
    ) -> JobRecord | None:
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            spec=dict(spec),
            seq=self._next_seq(),
            created_at=_wallclock(),
            updated_at=_wallclock(),
        )
        path = self.record_path(job_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        try:
            os.write(fd, seal_record(record).encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        return record

    def _next_seq(self) -> int:
        highest = 0
        if self.jobs_dir.is_dir():
            for path in self.jobs_dir.glob(f"*{RECORD_SUFFIX}"):
                name = path.name[: -len(RECORD_SUFFIX)]
                if name.startswith("job-") and name[4:].isdigit():
                    highest = max(highest, int(name[4:]))
        return highest + 1

    # ----------------------------------------------------------------- save
    def save(self, record: JobRecord) -> Path:
        """Durably rewrite (the ``service.pre-job-save`` crash boundary)."""
        path = self.record_path(record.job_id)
        record.updated_at = _wallclock()
        crash_point("service.pre-job-save", path=path)
        return write_durable_text(path, seal_record(record))

    # ----------------------------------------------------------------- load
    def load(self, job_id: str) -> JobRecord | None:
        """The job's record, or None (unknown, or damaged-and-backed-up)."""
        path = self.record_path(job_id)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return parse_record_text(text)
        except JobRecordDamaged as exc:
            backup = path.with_suffix(path.suffix + ".bak")
            try:
                os.replace(path, backup)
                saved = f"; backed up as {backup.name}"
            except OSError:
                saved = "; backup failed, damaged file left in place"
            warnings.warn(
                f"damaged job record {path} ({exc}){saved}", stacklevel=2
            )
            return None

    def list_ids(self) -> list[str]:
        if not self.jobs_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(RECORD_SUFFIX)]
            for p in self.jobs_dir.glob(f"*{RECORD_SUFFIX}")
            if not p.name.endswith(".bak")
        )

    def list_jobs(
        self, tenant: str | None = None, states: frozenset[str] | set[str] | None = None
    ) -> list[JobRecord]:
        """Every readable record, in submission order (seq, then id)."""
        jobs = []
        for job_id in self.list_ids():
            record = self.load(job_id)
            if record is None:
                continue
            if tenant is not None and record.tenant != tenant:
                continue
            if states is not None and record.state not in states:
                continue
            jobs.append(record)
        jobs.sort(key=lambda r: (r.seq, r.job_id))
        return jobs

    # --------------------------------------------------------------- cancel
    def request_cancel(self, job_id: str) -> JobRecord:
        """Drop the cancel marker; the scheduler applies it on its tick.

        The marker keeps the scheduler the single writer of the record:
        any process may *request*, only the scheduler *transitions*.
        """
        record = self.load(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        if not record.terminal:
            self.cancel_path(job_id).touch()
        return record

    def cancel_requested(self, job_id: str) -> bool:
        return self.cancel_path(job_id).exists()

    def clear_cancel(self, job_id: str) -> None:
        self.cancel_path(job_id).unlink(missing_ok=True)

    # ------------------------------------------------------------------ pin
    def pin(self, job_id: str) -> None:
        """Exempt the job from retention GC (a sibling marker file)."""
        record = self.load(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        self.pin_path(job_id).touch()

    def unpin(self, job_id: str) -> None:
        self.pin_path(job_id).unlink(missing_ok=True)

    def pinned(self, job_id: str) -> bool:
        return self.pin_path(job_id).exists()

    # ------------------------------------------------------------ tombstone
    def write_tombstone(self, record: JobRecord, reason: str) -> Path:
        """Durably condemn the job (phase one of the two-phase GC)."""
        payload = {
            "job_id": record.job_id,
            "tenant": record.tenant,
            "state": record.state,
            "reason": reason,
            "condemned_at": _wallclock(),
        }
        path = self.tombstone_path(record.job_id)
        return write_durable_text(path, seal_tombstone(payload))

    def read_tombstone(self, job_id: str) -> dict[str, Any] | None:
        """The job's verified tombstone payload, or None.

        A damaged tombstone is backed up as ``.bak`` (forensics, like a
        damaged record) and reported as None — it condemns nothing.
        """
        path = self.tombstone_path(job_id)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return parse_tombstone_text(text)
        except TombstoneDamaged as exc:
            backup = path.with_suffix(path.suffix + ".bak")
            try:
                os.replace(path, backup)
                saved = f"; backed up as {backup.name}"
            except OSError:
                saved = "; backup failed, damaged file left in place"
            warnings.warn(
                f"damaged tombstone {path} ({exc}){saved}", stacklevel=2
            )
            return None

    def list_tombstone_ids(self) -> list[str]:
        if not self.jobs_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(TOMBSTONE_SUFFIX)]
            for p in self.jobs_dir.glob(f"*{TOMBSTONE_SUFFIX}")
            if not p.name.endswith(".bak")
        )

    # ---------------------------------------------------------------- lease
    def claim(self, job_id: str):
        """Claim the job's scheduler lease (O_EXCL + stale takeover).

        Returns a held :class:`~repro.suite.manifest.CampaignLock`;
        raises :class:`~repro.suite.errors.CampaignLockedError` when a
        *live* scheduler already owns the job.
        """
        from repro.suite.manifest import CampaignLock

        return CampaignLock.acquire_path(self.lease_path(job_id))

    def read_lease(self, job_id: str) -> dict[str, Any] | None:
        try:
            payload = json.loads(self.lease_path(job_id).read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def lease_holder_alive(self, job_id: str) -> bool:
        from repro.suite.manifest import _pid_alive

        lease = self.read_lease(job_id)
        return lease is not None and _pid_alive(lease.get("pid"))
