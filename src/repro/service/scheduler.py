"""The lease-based job scheduler: claims, runs, heals, drains.

One scheduler loop owns the whole service lifecycle of a job after
submission. Ownership is a per-job *lease* — the same O_EXCL PID-lease
file (with exclusive stale-lease takeover) that guards campaign
directories, living at ``jobs/<job_id>.lease`` — so two schedulers
pointed at one root cannot both run a job, and a scheduler that dies
leaves a lease any successor can take over exactly once.

Each claimed job runs as a **forked child process** executing an
ordinary campaign into ``campaigns/<job_id>/``; all the campaign-level
crash safety (durable manifest checkpoints, archive seals, fsck) is
inherited rather than reimplemented. The scheduler heartbeats job
progress by reading the child's campaign manifest, applies cancel
markers, and reaps exits:

* exit 0 — SUCCEEDED;
* unclean run — FAILED (the campaign itself kept what it could);
* campaign directory locked — requeued *uncharged* after a short delay
  (the lock holder is transient);
* anything else (including signals and chaos kills) — **healed**: fsck
  the campaign directory, requeue with ``resume=True`` so completed
  cells are never re-run, until ``max_job_attempts`` is exhausted and
  the job parks as ORPHANED for a human.

``recover()`` is the restart path: promote SUBMITTED strays, take over
dead RUNNING leases, heal. ``drain()`` is the graceful-shutdown path:
stop every child and requeue its job so a restarted daemon resumes it.

The child guards against the inverse failure — a scheduler that dies
*under* its jobs — with an orphan watch: when the child is re-parented
it exits with the distinct ``JOB_ORPHANED`` status instead of running
on as unaccounted work.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any

from repro.chaos.points import crash_point
from repro.cli import exitcodes
from repro.service.jobstore import (
    STATE_CANCELLED,
    STATE_FAILED,
    STATE_ORPHANED,
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUBMITTED,
    STATE_SUCCEEDED,
    JobRecord,
    JobStore,
    params_from_spec,
)
from repro.suite.errors import CampaignLockedError
from repro.util.diskstat import STATE_HARD, DiskWatermarks


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler tuning knobs (defaults suit tests and small services)."""

    #: concurrently RUNNING jobs this scheduler will hold
    max_parallel: int = 1
    #: RUNNING attempts before a job parks as ORPHANED
    max_job_attempts: int = 3
    #: minimum seconds between durable progress-heartbeat saves
    progress_interval: float = 0.5
    #: delay before retrying a job whose campaign directory was locked
    lock_retry_delay: float = 0.2
    #: seconds a reaped child gets to die after terminate() before kill()
    child_grace: float = 10.0
    #: disk watermarks; at the *hard* watermark the scheduler stops
    #: claiming queued jobs (running ones finish) until space returns
    watermarks: DiskWatermarks | None = None


class JobScheduler:
    """Runs the job store's QUEUED work; the single writer of records."""

    def __init__(self, store: JobStore, config: SchedulerConfig | None = None):
        self.store = store
        self.config = config or SchedulerConfig()
        self._children: dict[str, multiprocessing.process.BaseProcess] = {}
        self._leases: dict[str, Any] = {}  # job_id -> held CampaignLock
        self._retry_at: dict[str, float] = {}  # job_id -> monotonic deadline
        self._totals: dict[str, int] = {}  # job_id -> campaign cell count
        self._last_progress: dict[str, float] = {}
        self._draining = False

    # ------------------------------------------------------------- recovery
    def recover(self) -> list[str]:
        """Converge every non-terminal record after a (re)start.

        Returns the ids the pass touched. SUBMITTED strays (a crash
        between record creation and the first durable save) are promoted
        to QUEUED. RUNNING jobs whose lease holder is dead are taken
        over — through the exclusive lease-takeover protocol, so a live
        competing scheduler can never be raced — and healed.
        """
        touched = []
        for record in self.store.list_jobs():
            if record.job_id in self._children:
                continue
            if record.state == STATE_SUBMITTED:
                record.transition(STATE_QUEUED)
                self.store.save(record)
                touched.append(record.job_id)
            elif record.state == STATE_RUNNING:
                if self.store.lease_holder_alive(record.job_id):
                    continue  # another live scheduler owns it
                try:
                    lease = self.store.claim(record.job_id)
                except CampaignLockedError:
                    continue  # lost the takeover race to a live peer
                self._heal(record, "scheduler died while job ran", lease)
                touched.append(record.job_id)
        return touched

    def _heal(self, record: JobRecord, reason: str, lease: Any) -> None:
        """Fsck the job's campaign, then requeue-with-resume or orphan.

        Called holding the job's lease; always releases it. The
        campaign's own fsck quarantines torn profiles and demotes their
        manifest cells, so the resumed run re-executes exactly the lost
        work and nothing else.
        """
        try:
            self._fsck_campaign(record.job_id)
            if self.store.cancel_requested(record.job_id):
                record.transition(STATE_CANCELLED, reason="cancel requested")
                self.store.save(record)
                self.store.clear_cancel(record.job_id)
            elif record.attempts >= self.config.max_job_attempts:
                record.transition(
                    STATE_ORPHANED,
                    reason=f"{reason}; attempt budget "
                    f"({self.config.max_job_attempts}) exhausted",
                )
                self.store.save(record)
            else:
                record.resume = True
                record.transition(STATE_QUEUED, reason=reason)
                self.store.save(record)
        finally:
            lease.release()

    def _fsck_campaign(self, job_id: str) -> None:
        from repro.suite.fsck import fsck_directory

        campaign = self.store.campaign_dir(job_id)
        if campaign.is_dir():
            fsck_directory(campaign, quarantine=True)

    # ----------------------------------------------------------------- tick
    def tick(self) -> None:
        """One scheduler heartbeat: reap, cancel, progress, claim."""
        self._reap()
        self._apply_cancels()
        self._progress()
        if not self._draining:
            self._claim_next()

    def _reap(self) -> None:
        for job_id, child in list(self._children.items()):
            if child.is_alive():
                continue
            del self._children[job_id]
            lease = self._leases.pop(job_id, None)
            try:
                record = self.store.load(job_id)
                if record is None or record.state != STATE_RUNNING:
                    continue  # damaged record: fsck's problem, not ours
                self._record_progress(record, force=True)
                code = child.exitcode
                if code == exitcodes.OK:
                    record.transition(STATE_SUCCEEDED, reason="")
                    self.store.save(record)
                    self.store.clear_cancel(job_id)
                elif code == exitcodes.UNCLEAN_RUN:
                    record.transition(
                        STATE_FAILED, reason="campaign completed unclean"
                    )
                    self.store.save(record)
                    self.store.clear_cancel(job_id)
                elif code == exitcodes.CAMPAIGN_LOCKED:
                    # A transient directory lock is not the job's fault:
                    # requeue without charging the attempt, after a delay.
                    record.attempts = max(0, record.attempts - 1)
                    record.transition(
                        STATE_QUEUED, reason="campaign directory locked"
                    )
                    self.store.save(record)
                    self._retry_at[job_id] = (
                        time.monotonic() + self.config.lock_retry_delay
                    )
                elif self.store.cancel_requested(job_id):
                    record.transition(STATE_CANCELLED, reason="cancelled")
                    self.store.save(record)
                    self.store.clear_cancel(job_id)
                else:
                    # Crashed, killed, interrupted, orphaned: heal. The
                    # lease is still ours, so hand it to _heal directly.
                    if lease is None:  # pragma: no cover - defensive
                        lease = self.store.claim(job_id)
                    held, lease = lease, None
                    self._heal(
                        record, f"job runner exited with status {code}", held
                    )
            finally:
                if lease is not None:
                    lease.release()

    def _apply_cancels(self) -> None:
        """Apply cancel markers; only the scheduler transitions records."""
        for record in self.store.list_jobs():
            if not self.store.cancel_requested(record.job_id):
                continue
            if record.job_id in self._children:
                # Reap turns the killed child into CANCELLED.
                self._children[record.job_id].terminate()
            elif record.state in (STATE_SUBMITTED, STATE_QUEUED):
                record.transition(STATE_CANCELLED, reason="cancelled")
                self.store.save(record)
                self.store.clear_cancel(record.job_id)
            elif record.terminal:
                self.store.clear_cancel(record.job_id)

    # ------------------------------------------------------------- progress
    def _campaign_total(self, record: JobRecord) -> int:
        total = self._totals.get(record.job_id)
        if total is None:
            from repro.suite.executor import SuiteExecutor

            try:
                params = params_from_spec(
                    record.spec, self.store.campaign_dir(record.job_id)
                )
                total = len(SuiteExecutor(params).build_cells())
            except ValueError:
                total = 0
            self._totals[record.job_id] = total
        return total

    def _record_progress(self, record: JobRecord, force: bool = False) -> None:
        """Heartbeat one RUNNING job's progress from its campaign manifest."""
        import json

        now = time.monotonic()
        last = self._last_progress.get(record.job_id, 0.0)
        if not force and now - last < self.config.progress_interval:
            return
        manifest = (
            self.store.campaign_dir(record.job_id) / "campaign_manifest.json"
        )
        try:
            cells = json.loads(manifest.read_text()).get("cells", {})
        except (OSError, ValueError):
            cells = {}
        ok = sum(1 for c in cells.values() if c.get("status") == "ok")
        failed = len(cells) - ok
        progress = {
            "ok": ok,
            "failed": failed,
            "total": self._campaign_total(record),
        }
        self._last_progress[record.job_id] = now
        if progress != record.progress:
            record.progress = progress
            self.store.save(record)

    def _progress(self) -> None:
        for job_id in self._children:
            record = self.store.load(job_id)
            if record is not None and record.state == STATE_RUNNING:
                self._record_progress(record)

    # ---------------------------------------------------------------- claim
    def claims_paused(self) -> bool:
        """True while the hard disk watermark forbids new claims.

        Running jobs are left to finish (stopping them mid-write risks
        exactly the torn state the watermark exists to prevent); only
        *new* work is paused until free space recovers.
        """
        wm = self.config.watermarks
        return (
            wm is not None
            and wm.enabled
            and wm.state(self.store.root) == STATE_HARD
        )

    def _claim_next(self) -> None:
        if self.claims_paused():
            return
        now = time.monotonic()
        for record in self.store.list_jobs(states={STATE_QUEUED}):
            if len(self._children) >= self.config.max_parallel:
                return
            if record.job_id in self._children:
                continue
            if self._retry_at.get(record.job_id, 0.0) > now:
                continue
            try:
                lease = self.store.claim(record.job_id)
            except CampaignLockedError:
                continue  # another scheduler beat us to it
            try:
                crash_point(
                    "service.post-claim",
                    path=self.store.record_path(record.job_id),
                )
                if self.store.cancel_requested(record.job_id):
                    record.transition(STATE_CANCELLED, reason="cancelled")
                    self.store.save(record)
                    self.store.clear_cancel(record.job_id)
                    lease.release()
                    continue
                record.attempts += 1
                record.transition(STATE_RUNNING, reason="")
                self.store.save(record)
            except BaseException:
                lease.release()
                raise
            child = multiprocessing.get_context("fork").Process(
                target=_job_main,
                args=(
                    record.spec,
                    str(self.store.campaign_dir(record.job_id)),
                    record.resume,
                    os.getpid(),
                ),
                name=f"job-runner-{record.job_id}",
            )
            child.start()
            self._children[record.job_id] = child
            self._leases[record.job_id] = lease

    # ----------------------------------------------------------------- loop
    def run_until_idle(self, timeout: float = 300.0, poll: float = 0.05) -> bool:
        """Tick until every job is terminal (True) or ``timeout`` (False)."""
        deadline = time.monotonic() + timeout
        while True:
            self.tick()
            if not self._children and all(
                r.terminal for r in self.store.list_jobs()
            ):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll)

    # ---------------------------------------------------------------- drain
    def drain(self) -> list[str]:
        """Gracefully stop: requeue every running job, release its lease.

        The requeued record carries ``resume=True`` and the attempt is
        uncharged — a drain is the operator's doing, not the job's — so
        a restarted daemon picks the job up exactly where the campaign
        manifest left it.
        """
        self._draining = True
        drained = []
        for job_id, child in list(self._children.items()):
            crash_point(
                "service.mid-drain", path=self.store.record_path(job_id)
            )
            child.terminate()
            child.join(self.config.child_grace)
            if child.is_alive():  # pragma: no cover - stuck child
                child.kill()
                child.join(self.config.child_grace)
            del self._children[job_id]
            lease = self._leases.pop(job_id, None)
            try:
                record = self.store.load(job_id)
                if record is None or record.state != STATE_RUNNING:
                    continue
                if self.store.cancel_requested(job_id):
                    record.transition(STATE_CANCELLED, reason="cancelled")
                    self.store.save(record)
                    self.store.clear_cancel(job_id)
                else:
                    record.attempts = max(0, record.attempts - 1)
                    record.resume = True
                    record.transition(STATE_QUEUED, reason="daemon drained")
                    self.store.save(record)
                drained.append(job_id)
            finally:
                if lease is not None:
                    lease.release()
        return drained


# ------------------------------------------------------------ the job child
class _OrphanWatch(threading.Thread):
    """Exit ``JOB_ORPHANED`` the moment our scheduler stops being our parent.

    A forked job runner whose scheduler dies is re-parented (to init or
    a subreaper). Running on would produce campaign work no record
    accounts for; dying with a distinct status keeps the ledger honest
    and gives the healed, resumed job a clean directory takeover.
    """

    def __init__(self, scheduler_pid: int, poll: float = 0.2) -> None:
        super().__init__(name="job-orphan-watch", daemon=True)
        self.scheduler_pid = scheduler_pid
        self.poll = poll

    def run(self) -> None:  # pragma: no cover - exercised via subprocess
        while True:
            if os.getppid() != self.scheduler_pid:
                os._exit(exitcodes.JOB_ORPHANED)
            time.sleep(self.poll)


def _job_main(
    spec: dict[str, Any], campaign_dir: str, resume: bool, scheduler_pid: int
) -> None:
    """Entry point of the forked job runner: one ordinary campaign.

    Exits with the same statuses the CLI ``run`` command uses, plus
    ``JOB_ORPHANED`` when the scheduler disappears; the scheduler maps
    the status back onto the job state machine.
    """
    from repro.suite.executor import SuiteExecutor

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _OrphanWatch(scheduler_pid).start()
    try:
        params = params_from_spec(spec, campaign_dir, resume=resume)
        result = SuiteExecutor(params).run(write_files=True)
    except CampaignLockedError:
        os._exit(exitcodes.CAMPAIGN_LOCKED)
    except BaseException:
        traceback.print_exc(file=sys.stderr)
        os._exit(exitcodes.UNCLEAN_RUN)
    if result.report.interrupted:
        os._exit(exitcodes.INTERRUPTED)
    os._exit(
        exitcodes.OK if result.report.clean else exitcodes.UNCLEAN_RUN
    )
