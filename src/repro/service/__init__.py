"""The durable campaign job service.

A long-running daemon in front of the campaign executor: clients submit
campaign *jobs* over a stdlib HTTP/JSON API (or straight into the store
with the CLI), a lease-based scheduler runs each job as an ordinary
campaign in its own directory, and every piece of service state is as
crash-safe as the campaigns themselves — kill the daemon anywhere,
restart it, and every job converges with no lost or duplicated work
(chaos invariant I6).

* :mod:`repro.service.jobstore` — one fsio-atomic, CRC-sealed JSON
  record per job; the SUBMITTED→QUEUED→RUNNING→{SUCCEEDED, FAILED,
  CANCELLED, ORPHANED} state machine.
* :mod:`repro.service.scheduler` — O_EXCL lease claims (the
  CampaignLock takeover pattern), per-job campaign processes, progress
  heartbeats from the campaign manifests, fsck+resume healing under an
  attempt budget, graceful drain.
* :mod:`repro.service.admission` — bounded queue and per-tenant quotas
  with explicit REJECTED-with-reason backpressure.
* :mod:`repro.service.api` + :mod:`repro.service.daemon` — the HTTP
  surface and the process that ties it all together.
"""

from repro.service.admission import AdmissionDecision, AdmissionPolicy
from repro.service.jobstore import JobRecord, JobStore, params_from_spec
from repro.service.scheduler import JobScheduler, SchedulerConfig

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "JobRecord",
    "JobStore",
    "JobScheduler",
    "SchedulerConfig",
    "params_from_spec",
]
