"""Admission control: bounded queue, per-tenant quotas, explicit reasons.

A durable queue that accepts everything is an unbounded liability: disk
fills, the scheduler ages into a backlog it can never drain, and every
tenant's latency pays for one tenant's flood. Admission is therefore
checked *before* a record is created, and a rejection is an explicit
``REJECTED`` decision carrying the reason — backpressure the client can
act on — rather than a 500 or a silent drop.

Three independent bounds, each optional:

* ``max_queue_depth`` — total SUBMITTED/QUEUED/RUNNING jobs across all
  tenants (the service-wide bound on durable queue growth);
* ``max_queued_per_tenant`` — active jobs per tenant (fair-share);
* ``max_tenant_bytes`` — bytes of campaign output a tenant's jobs hold
  on disk (terminal jobs count too: results are retained until
  cancelled/GC'd, so a tenant cannot launder quota by finishing).

A fourth, service-wide bound is the **soft disk watermark**
(:mod:`repro.util.diskstat`): when the filesystem's free bytes fall to
the configured soft watermark, *every* submission is rejected with a
``disk pressure`` reason until retention GC (or the operator) reclaims
space — backpressure arrives before ENOSPC can tear a durable write.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.service.jobstore import ACTIVE_STATES, JobStore
from repro.util.diskstat import STATE_OK, DiskWatermarks, disk_free_bytes


@dataclass(frozen=True)
class AdmissionPolicy:
    """The service's quota configuration (None disables a bound)."""

    max_queue_depth: int | None = 64
    max_queued_per_tenant: int | None = 16
    max_tenant_bytes: int | None = 2 * 1024**3
    watermarks: DiskWatermarks = DiskWatermarks()


@dataclass(frozen=True)
class AdmissionDecision:
    """ADMITTED, or REJECTED with the reason the client is told."""

    admitted: bool
    reason: str = ""

    @property
    def rejected(self) -> bool:
        return not self.admitted


def directory_bytes(directory: Path) -> int:
    """Recursive byte count of one campaign directory (0 if absent)."""
    total = 0
    for dirpath, _dirnames, filenames in os.walk(directory):
        for name in filenames:
            try:
                total += os.path.getsize(os.path.join(dirpath, name))
            except OSError:  # racing deletion
                continue
    return total


def tenant_disk_usage(store: JobStore, tenant: str) -> int:
    """Bytes of campaign output currently held by one tenant's jobs."""
    return sum(
        directory_bytes(store.campaign_dir(record.job_id))
        for record in store.list_jobs(tenant=tenant)
    )


def evaluate(
    store: JobStore, tenant: str, policy: AdmissionPolicy
) -> AdmissionDecision:
    """Would the service admit one more job from ``tenant`` right now?"""
    if policy.watermarks.enabled:
        state = policy.watermarks.state(store.root)
        if state != STATE_OK:
            free = disk_free_bytes(store.root)
            limit = (
                policy.watermarks.hard_free_bytes
                if state == "hard"
                else policy.watermarks.soft_free_bytes
            )
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"disk pressure: {free} byte(s) free at or below the "
                    f"{state} watermark ({limit})"
                ),
            )
    jobs = store.list_jobs()
    active = [r for r in jobs if r.state in ACTIVE_STATES]
    if policy.max_queue_depth is not None and len(active) >= policy.max_queue_depth:
        return AdmissionDecision(
            admitted=False,
            reason=(
                f"queue full: {len(active)} active job(s), "
                f"limit {policy.max_queue_depth}"
            ),
        )
    tenant_active = [r for r in active if r.tenant == tenant]
    if (
        policy.max_queued_per_tenant is not None
        and len(tenant_active) >= policy.max_queued_per_tenant
    ):
        return AdmissionDecision(
            admitted=False,
            reason=(
                f"tenant {tenant!r} has {len(tenant_active)} active "
                f"job(s), limit {policy.max_queued_per_tenant}"
            ),
        )
    if policy.max_tenant_bytes is not None:
        used = tenant_disk_usage(store, tenant)
        if used >= policy.max_tenant_bytes:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"tenant {tenant!r} holds {used} byte(s) of campaign "
                    f"output, limit {policy.max_tenant_bytes}"
                ),
            )
    return AdmissionDecision(admitted=True)
