"""Crash-safe retention: tombstoned GC of terminal jobs + compaction.

The service retains every terminal job's campaign directory until this
subsystem reclaims it. Reclamation is governed by a
:class:`RetentionPolicy` (age / count / per-tenant bytes) and executed
as a **two-phase tombstone delete**, so a crash at any byte leaves a
job either fully live or provably condemned — never half-deleted:

1. **Condemn.** A CRC-sealed ``jobs/<id>.tombstone`` is written with
   the full durable protocol (``retention.pre-tombstone`` fires before
   any byte lands: a strike here leaves the job untouched).
2. **Reclaim.** The campaign directory is removed bottom-up
   (``retention.mid-delete`` fires before every unlink: a strike here
   leaves a partially-removed directory *plus* the sealed tombstone),
   then the record, lease, cancel and pin markers, and finally the
   tombstone itself.

Recovery is :func:`complete_tombstones` — run by every GC pass and by
fsck's job-store audit: any sealed tombstone found on disk has its
reclamation finished; a damaged tombstone condemns nothing and is
backed up as forensics. Selection never condemns a non-terminal job, a
pinned job (``jobs/<id>.pin``), or a job whose lease is held by a live
scheduler; terminal states are absorbing, so a job observed terminal
stays terminal — a cancel racing a GC either lands before the job is
terminal (GC skips it) or after (the cancel is a no-op marker fsck
sweeps).

**Archive compaction** rewrites a ``.calipack`` dropping superseded
last-wins duplicate frames and damaged (truncated/corrupt) entries:
survivors are rebuilt name-sorted into a ``*.compact-scratch`` sibling,
sealed, and atomically swapped in (``retention.pre-compact-swap`` fires
between seal and swap — a strike leaves the original archive
bit-identical and an orphan scratch for fsck to sweep). Every entry
readable before compaction is byte-identical after it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.points import crash_point
from repro.service.jobstore import JobRecord, JobStore
from repro.util.fsio import durable_replace, fsync_dir

#: suffix of compaction's in-flight rebuild sibling (fsck sweeps orphans)
COMPACT_SCRATCH_SUFFIX = ".compact-scratch"


# ---------------------------------------------------------------- policy
@dataclass(frozen=True)
class RetentionPolicy:
    """What terminal jobs GC may reclaim; ``None`` disables a rule.

    * ``max_age_s`` — collect terminal jobs untouched for longer.
    * ``max_terminal_jobs`` — keep at most this many terminal jobs
      (newest kept; pinned jobs count toward the bound but are never
      collected).
    * ``max_tenant_bytes`` — collect a tenant's oldest terminal jobs
      until its terminal campaign bytes fit the budget.
    """

    max_age_s: float | None = None
    max_terminal_jobs: int | None = None
    max_tenant_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {self.max_age_s}")
        if self.max_terminal_jobs is not None and self.max_terminal_jobs < 0:
            raise ValueError(
                f"max_terminal_jobs must be >= 0, got {self.max_terminal_jobs}"
            )
        if self.max_tenant_bytes is not None and self.max_tenant_bytes < 0:
            raise ValueError(
                f"max_tenant_bytes must be >= 0, got {self.max_tenant_bytes}"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.max_age_s is not None
            or self.max_terminal_jobs is not None
            or self.max_tenant_bytes is not None
        )


# ---------------------------------------------------------------- reports
@dataclass
class GCReport:
    """One GC pass's outcome, machine-readable and summarizable."""

    root: Path
    dry_run: bool = False
    #: tombstone completions from a *previous* interrupted pass
    completed: list[str] = field(default_factory=list)
    #: jobs collected this pass: {job_id, tenant, reason, bytes}
    collected: list[dict[str, Any]] = field(default_factory=list)
    #: candidates refused at the final re-check: (job_id, why)
    skipped: list[tuple[str, str]] = field(default_factory=list)
    #: archive compactions performed: CompactionReport per archive
    compacted: list["CompactionReport"] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def reclaimed_bytes(self) -> int:
        return sum(int(c.get("bytes", 0)) for c in self.collected)

    def to_payload(self) -> dict[str, Any]:
        return {
            "root": str(self.root),
            "dry_run": self.dry_run,
            "completed": list(self.completed),
            "collected": list(self.collected),
            "skipped": [list(s) for s in self.skipped],
            "compacted": [c.to_payload() for c in self.compacted],
            "reclaimed_bytes": self.reclaimed_bytes,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        verb = "would collect" if self.dry_run else "collected"
        out = [
            f"gc {self.root}: {verb} {len(self.collected)} job(s), "
            f"{self.reclaimed_bytes} byte(s)"
            + (
                f"; completed {len(self.completed)} interrupted "
                "reclamation(s)"
                if self.completed
                else ""
            )
        ]
        for item in self.collected:
            out.append(
                f"  {verb} {item['job_id']} ({item['tenant']}, "
                f"{item['bytes']} bytes): {item['reason']}"
            )
        for job_id, why in self.skipped:
            out.append(f"  skipped {job_id}: {why}")
        for comp in self.compacted:
            out.append("  " + comp.summary())
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)


@dataclass
class CompactionReport:
    """One archive compaction's outcome."""

    archive: Path
    entries_kept: int = 0
    superseded_dropped: int = 0
    damaged_dropped: list[str] = field(default_factory=list)
    bytes_before: int = 0
    bytes_after: int = 0
    swapped: bool = False
    dry_run: bool = False

    def to_payload(self) -> dict[str, Any]:
        return {
            "archive": str(self.archive),
            "entries_kept": self.entries_kept,
            "superseded_dropped": self.superseded_dropped,
            "damaged_dropped": list(self.damaged_dropped),
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "swapped": self.swapped,
            "dry_run": self.dry_run,
        }

    def summary(self) -> str:
        verb = (
            "would compact"
            if self.dry_run
            else ("compacted" if self.swapped else "already compact")
        )
        return (
            f"{verb} {self.archive.name}: {self.entries_kept} entr(ies) "
            f"kept, {self.superseded_dropped} superseded + "
            f"{len(self.damaged_dropped)} damaged dropped, "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


# ------------------------------------------------------------- selection
def _epoch(stamp: str) -> float | None:
    """The wallclock record stamp as an epoch; None when unparseable."""
    try:
        return time.mktime(time.strptime(stamp, "%Y-%m-%dT%H:%M:%S"))
    except (ValueError, OverflowError):
        return None


def _eligible(store: JobStore, record: JobRecord) -> str | None:
    """Why the job may NOT be collected, or None when it is fair game."""
    if not record.terminal:
        return f"not terminal (state {record.state})"
    if store.pinned(record.job_id):
        return "pinned"
    if store.lease_holder_alive(record.job_id):
        return "lease held by a live process"
    return None


def select_candidates(
    store: JobStore,
    policy: RetentionPolicy,
    now: float | None = None,
) -> list[tuple[JobRecord, str]]:
    """Jobs the policy condemns, oldest-first, with human reasons.

    Selection is a pure read: nothing is condemned until
    :func:`collect_job` re-verifies eligibility and writes the
    tombstone. Pinned and lease-held terminal jobs are never selected
    but still count toward the count/byte budgets they occupy.
    """
    if now is None:
        now = time.time()

    # Oldest-first by submission wallclock: the store's seq counter only
    # advances for auto-named jobs, so caller-named jobs all tie on it —
    # created_at is the ordering that means "oldest", with (seq, id) as
    # the deterministic tie-break inside one second.
    def _age_key(record: JobRecord) -> tuple[float, int, str]:
        return (_epoch(record.created_at) or 0.0, record.seq, record.job_id)

    terminal = [r for r in store.list_jobs() if r.terminal]
    terminal.sort(key=_age_key)
    eligible = [r for r in terminal if _eligible(store, r) is None]
    chosen: dict[str, tuple[JobRecord, str]] = {}

    if policy.max_age_s is not None:
        for record in eligible:
            stamp = _epoch(record.updated_at)
            if stamp is None:
                continue
            age = now - stamp
            if age > policy.max_age_s:
                chosen.setdefault(
                    record.job_id,
                    (
                        record,
                        f"age {age:.0f}s exceeds max_age_s "
                        f"{policy.max_age_s:.0f}",
                    ),
                )

    if policy.max_terminal_jobs is not None:
        # Keep the newest N: walk oldest-first, and let pinned or
        # lease-held occupants consume excess slots without being
        # collected — pinning a job must never doom a newer one.
        eligible_ids = {r.job_id for r in eligible}
        excess = len(terminal) - policy.max_terminal_jobs
        for record in terminal:
            if excess <= 0:
                break
            excess -= 1
            if record.job_id in eligible_ids:
                chosen.setdefault(
                    record.job_id,
                    (
                        record,
                        f"{len(terminal)} terminal job(s) exceed "
                        f"max_terminal_jobs {policy.max_terminal_jobs}",
                    ),
                )

    if policy.max_tenant_bytes is not None:
        from repro.service.admission import directory_bytes

        usage: dict[str, int] = {}
        per_job: dict[str, int] = {}
        for record in terminal:
            size = directory_bytes(store.campaign_dir(record.job_id))
            per_job[record.job_id] = size
            usage[record.tenant] = usage.get(record.tenant, 0) + size
        for record in eligible:
            total = usage[record.tenant]
            if total <= policy.max_tenant_bytes:
                continue
            usage[record.tenant] = total - per_job[record.job_id]
            chosen.setdefault(
                record.job_id,
                (
                    record,
                    f"tenant '{record.tenant}' holds {total} byte(s), "
                    f"limit {policy.max_tenant_bytes}",
                ),
            )

    ordered = sorted(chosen.values(), key=lambda c: _age_key(c[0]))
    return ordered


# ------------------------------------------------------------ collection
def _remove_tree(store: JobStore, root: Path) -> None:
    """Bottom-up removal with a crash boundary before every unlink."""
    if not root.exists():
        return
    for dirpath, dirnames, filenames in os.walk(str(root), topdown=False):
        for fname in sorted(filenames):
            target = Path(dirpath) / fname
            crash_point("retention.mid-delete", path=target)
            target.unlink(missing_ok=True)
        for dname in sorted(dirnames):
            try:
                (Path(dirpath) / dname).rmdir()
            except OSError:
                pass  # a crashed pass left residue below; re-walked next time
    try:
        root.rmdir()
    except OSError:
        return
    fsync_dir(root.parent)


def reclaim(store: JobStore, job_id: str) -> None:
    """Phase two: destroy everything a sealed tombstone condemns.

    Idempotent and resumable — any interrupted invocation is finished
    by the next :func:`complete_tombstones` pass. The tombstone itself
    is removed *last*: its presence is the only thing that authorizes
    re-entering this function.
    """
    _remove_tree(store, store.campaign_dir(job_id))
    store.lease_path(job_id).unlink(missing_ok=True)
    store.cancel_path(job_id).unlink(missing_ok=True)
    store.pin_path(job_id).unlink(missing_ok=True)
    store.record_path(job_id).unlink(missing_ok=True)
    store.tombstone_path(job_id).unlink(missing_ok=True)
    fsync_dir(store.jobs_dir)


def collect_job(store: JobStore, job_id: str, reason: str = "") -> bool:
    """Two-phase collection of one job; False when ineligible.

    Eligibility is re-checked immediately before the tombstone lands
    (terminal states are absorbing, so a job observed terminal here can
    never go non-terminal between the check and the condemnation).
    """
    record = store.load(job_id)
    if record is None:
        return False
    if _eligible(store, record) is not None:
        return False
    crash_point(
        "retention.pre-tombstone", path=store.tombstone_path(job_id)
    )
    store.write_tombstone(record, reason or "retention policy")
    reclaim(store, job_id)
    return True


def complete_tombstones(store: JobStore) -> list[str]:
    """Finish every interrupted reclamation a sealed tombstone proves.

    A tombstone whose record is somehow *non-terminal* (a protocol
    violation that cannot arise from this module) is refused and backed
    up — the destructive path only ever runs with proof.
    """
    done: list[str] = []
    for job_id in store.list_tombstone_ids():
        payload = store.read_tombstone(job_id)
        if payload is None:
            continue  # damaged: backed up by read_tombstone, condemns nothing
        record = store.load(job_id)
        if record is not None and not record.terminal:
            path = store.tombstone_path(job_id)
            backup = path.with_suffix(path.suffix + ".bak")
            try:
                os.replace(path, backup)
            except OSError:
                pass
            continue
        reclaim(store, job_id)
        done.append(job_id)
    return done


# ------------------------------------------------------------------- gc
def gc(
    root: str | Path | JobStore,
    policy: RetentionPolicy,
    dry_run: bool = False,
    now: float | None = None,
    compact: bool = False,
) -> GCReport:
    """One full GC pass: finish interrupted work, select, collect.

    ``dry_run`` reports what *would* be collected without writing a
    single byte (interrupted reclamations are reported, not finished).
    ``compact`` additionally compacts every surviving terminal job's
    sealed campaign archive.
    """
    store = root if isinstance(root, JobStore) else JobStore(root)
    report = GCReport(root=store.root, dry_run=dry_run)
    if dry_run:
        pending = [
            job_id
            for job_id in store.list_tombstone_ids()
            if store.read_tombstone(job_id) is not None
        ]
        if pending:
            report.notes.append(
                f"{len(pending)} interrupted reclamation(s) pending: "
                + ", ".join(pending)
            )
    else:
        report.completed = complete_tombstones(store)

    from repro.service.admission import directory_bytes

    for record, reason in select_candidates(store, policy, now=now):
        size = directory_bytes(store.campaign_dir(record.job_id))
        if dry_run:
            report.collected.append(
                {
                    "job_id": record.job_id,
                    "tenant": record.tenant,
                    "reason": reason,
                    "bytes": size,
                }
            )
            continue
        if collect_job(store, record.job_id, reason):
            report.collected.append(
                {
                    "job_id": record.job_id,
                    "tenant": record.tenant,
                    "reason": reason,
                    "bytes": size,
                }
            )
        else:
            report.skipped.append(
                (record.job_id, "ineligible at final re-check")
            )

    if compact:
        from repro.caliper.calipack import ARCHIVE_NAME

        collected = {c["job_id"] for c in report.collected}
        for record in store.list_jobs():
            if not record.terminal or record.job_id in collected:
                continue
            archive = store.campaign_dir(record.job_id) / ARCHIVE_NAME
            if not archive.is_file():
                continue
            try:
                report.compacted.append(
                    compact_archive(archive, dry_run=dry_run)
                )
            except (OSError, ValueError) as exc:
                report.notes.append(f"compaction of {archive} failed: {exc}")
    return report


# ------------------------------------------------------------ compaction
def compaction_scratch(archive: Path) -> Path:
    """Compaction's in-flight rebuild sibling (unique per process)."""
    return archive.with_name(
        f"{archive.name}.{os.getpid()}{COMPACT_SCRATCH_SUFFIX}"
    )


def compact_archive(
    archive: str | Path, dry_run: bool = False
) -> CompactionReport:
    """Rewrite an archive without superseded duplicates or damage.

    Surviving entries are re-read with their frame CRCs and rebuilt
    name-sorted into a sealed scratch sibling; the swap is a single
    atomic ``os.replace``. When the rebuilt bytes equal the current
    bytes the swap is skipped — compaction is idempotent and a
    no-change pass leaves the archive's inode untouched. Every entry
    readable before the compaction is byte-identical after it.
    """
    from repro.caliper.calipack import (
        CalipackWriter,
        read_entry_bytes,
        scan_frames,
        verify_entry,
    )

    path = Path(archive)
    report = CompactionReport(
        archive=path, bytes_before=path.stat().st_size, dry_run=dry_run
    )
    frames, _ = scan_frames(path)
    latest: dict[str, Any] = {}
    for entry in frames:
        latest[entry.name] = entry
    report.superseded_dropped = len(frames) - len(latest)

    kept: dict[str, bytes] = {}
    for name in sorted(latest):
        entry = latest[name]
        status, _detail = verify_entry(path, entry)
        if status in ("truncated", "corrupt"):
            report.damaged_dropped.append(name)
            continue
        kept[name] = read_entry_bytes(path, entry, verify=False)
    report.entries_kept = len(kept)

    if dry_run:
        report.bytes_after = report.bytes_before
        return report

    scratch = compaction_scratch(path)
    # Always rebuild from scratch: a leftover sibling from a crashed
    # pass of this same process must not be resumed into (the writer's
    # resume semantics would keep its frames as superseded duplicates).
    scratch.unlink(missing_ok=True)
    writer = CalipackWriter(scratch)
    try:
        for name in sorted(kept):
            writer.append_bytes(name, kept[name])
    except BaseException:
        writer.abort()
        scratch.unlink(missing_ok=True)
        raise
    writer.close()
    crash_point("retention.pre-compact-swap", path=path, torn_file=scratch)
    rebuilt = scratch.read_bytes()
    if rebuilt == path.read_bytes():
        scratch.unlink(missing_ok=True)
        report.bytes_after = report.bytes_before
        report.swapped = False
    else:
        durable_replace(scratch, path)
        report.bytes_after = len(rebuilt)
        report.swapped = True
    return report
