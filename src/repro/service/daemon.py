"""The campaign service daemon: HTTP front, scheduler loop, graceful drain.

One process, two loops plus two background rails. A
:class:`ThreadingHTTPServer` answers the JSON API on its own threads
(reads are safe concurrently: records are immutable-on-disk between
durable replaces, and analyze reads go through the ingest cache); the
scheduler ticks on the main thread and stays the single writer of job
records. ``SIGTERM``/``SIGINT`` trigger the graceful path: stop
claiming, drain every running job back to QUEUED-with-resume, release
leases, stop the HTTP server, exit 0. A ``SIGKILL`` instead is exactly
the chaos I6 scenario — the next start's ``recover()`` converges every
job with no lost or duplicated work.

The rails (both optional):

* **retention** — a :class:`~repro.service.retention.RetentionPolicy`
  runs as periodic GC passes on the scheduler thread (so GC shares the
  single-writer discipline), at ``retention_interval`` cadence —
  immediately when the soft disk watermark trips;
* **scrubbing** — a :class:`~repro.suite.scrub.Scrubber` daemon thread
  continuously re-verifies CRC seals (records, tombstones, archives,
  ingest caches) at ``scrub_interval`` cadence, quarantining damage
  through the fsck machinery.

Routes::

    GET  /healthz                     liveness + queue summary + disk state
    POST /api/jobs                    submit {spec, tenant?, job_id?}
    GET  /api/jobs[?tenant=&state=]   list
    GET  /api/jobs/<id>               status
    POST /api/jobs/<id>/cancel        request cancellation
    GET  /api/jobs/<id>/result[?metric=]  analyze payload (degraded, never 500)
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.service.admission import AdmissionPolicy
from repro.service.api import ServiceAPI
from repro.service.jobstore import JobStore
from repro.service.retention import RetentionPolicy, gc
from repro.service.scheduler import JobScheduler, SchedulerConfig
from repro.util.diskstat import STATE_OK


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :class:`ServiceAPI` (set as ``server.api``)."""

    server_version = "rajaperf-service/1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the daemon narrates; per-request noise helps nobody

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _api(self) -> ServiceAPI:
        return self.server.api  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        query = {k: v[0] for k, v in parse_qs(url.query).items()}
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            daemon = self.server.daemon  # type: ignore[attr-defined]
            self._respond(200, daemon.health())
        elif parts[:2] == ["api", "jobs"] and len(parts) == 2:
            self._respond(*self._api().list_jobs(
                tenant=query.get("tenant"), state=query.get("state")
            ))
        elif parts[:2] == ["api", "jobs"] and len(parts) == 3:
            self._respond(*self._api().status(parts[2]))
        elif (
            parts[:2] == ["api", "jobs"]
            and len(parts) == 4
            and parts[3] == "result"
        ):
            self._respond(*self._api().result(
                parts[2], metric=query.get("metric", "Avg time/rank")
            ))
        else:
            self._respond(404, {"error": f"no route {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except ValueError:
            self._respond(400, {"error": "request body is not JSON"})
            return
        if parts[:2] == ["api", "jobs"] and len(parts) == 2:
            spec = body.get("spec")
            if not isinstance(spec, dict):
                self._respond(400, {"error": "body must carry a 'spec' object"})
                return
            self._respond(*self._api().submit(
                spec,
                tenant=str(body.get("tenant") or "default"),
                job_id=body.get("job_id"),
            ))
        elif (
            parts[:2] == ["api", "jobs"]
            and len(parts) == 4
            and parts[3] == "cancel"
        ):
            self._respond(*self._api().cancel(parts[2]))
        else:
            self._respond(404, {"error": f"no route {url.path}"})


class ServiceDaemon:
    """The long-running service process over one root directory."""

    def __init__(
        self,
        root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: AdmissionPolicy | None = None,
        scheduler_config: SchedulerConfig | None = None,
        tick_interval: float = 0.05,
        retention: RetentionPolicy | None = None,
        retention_interval: float = 60.0,
        scrub_interval: float | None = None,
    ) -> None:
        self.store = JobStore(root)
        self.store.ensure_layout()
        self.policy = policy or AdmissionPolicy()
        self.api = ServiceAPI(self.store, self.policy)
        self.scheduler = JobScheduler(self.store, scheduler_config)
        self.tick_interval = tick_interval
        self.retention = retention
        self.retention_interval = retention_interval
        self._next_gc = 0.0  # first tick runs GC (finishes interrupted work)
        self.gc_passes = 0
        self.scrubber = None
        if scrub_interval is not None:
            from repro.suite.scrub import Scrubber

            self.scrubber = Scrubber(root, scrub_interval)
        self._stop = threading.Event()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.api = self.api  # type: ignore[attr-defined]
        self.httpd.daemon = self  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def health(self) -> dict[str, Any]:
        jobs = self.store.list_jobs()
        by_state: dict[str, int] = {}
        for record in jobs:
            by_state[record.state] = by_state.get(record.state, 0) + 1
        payload = {
            "ok": True,
            "url": self.url,
            "jobs": len(jobs),
            "by_state": by_state,
            "draining": self._stop.is_set(),
        }
        if self.policy.watermarks.enabled:
            payload["disk"] = self.policy.watermarks.describe(self.store.root)
            payload["claims_paused"] = self.scheduler.claims_paused()
        if self.retention is not None:
            payload["gc_passes"] = self.gc_passes
        if self.scrubber is not None:
            payload["scrub_passes"] = self.scrubber.passes
        return payload

    def request_stop(self, *_sig: object) -> None:
        self._stop.set()

    # ------------------------------------------------------------ retention
    def _maybe_gc(self) -> None:
        """Run a GC pass when due — immediately under disk pressure.

        GC runs on the scheduler thread between ticks so the record
        store keeps exactly one writer; a pass on a small store is
        milliseconds, and a large reclamation is work the service
        *needs* stalled claims for anyway.
        """
        if self.retention is None or not self.retention.enabled:
            return
        now = time.monotonic()
        pressured = (
            self.policy.watermarks.enabled
            and self.policy.watermarks.state(self.store.root) != STATE_OK
        )
        if now < self._next_gc and not pressured:
            return
        self._next_gc = now + self.retention_interval
        gc(self.store, self.retention)
        self.gc_passes += 1

    # ----------------------------------------------------------------- run
    def serve_forever(self, install_signals: bool = True) -> None:
        """Recover, then tick until stopped; drain on the way out."""
        if install_signals:
            signal.signal(signal.SIGTERM, self.request_stop)
            signal.signal(signal.SIGINT, self.request_stop)
        http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="service-http",
            daemon=True,
        )
        http_thread.start()
        if self.scrubber is not None:
            self.scrubber.start()
        try:
            self.scheduler.recover()
            while not self._stop.wait(self.tick_interval):
                self.scheduler.tick()
                self._maybe_gc()
        finally:
            if self.scrubber is not None:
                self.scrubber.stop()
            self.scheduler.drain()
            self.httpd.shutdown()
            self.httpd.server_close()
            http_thread.join(5.0)

    def close(self) -> None:
        """Release sockets without the serve loop (tests, failed starts)."""
        if self.scrubber is not None:
            self.scrubber.stop(timeout=0.1)
        self.httpd.server_close()
