"""The service's API surface, independent of any HTTP server.

:class:`ServiceAPI` implements every endpoint as a plain method
returning ``(status, payload)`` — the daemon's HTTP handler is a thin
shim over it and tests drive it directly without sockets.

Degradation discipline: a job whose campaign archive is damaged gets a
**200 with** ``degraded: true`` and whatever sources still load — the
same partial-results contract ``analyze`` honors at the CLI — never a
500. The only 4xx-class responses are structural: unknown job (404),
invalid spec (400), admission rejection (429), result of a job that is
not finished yet (409).

:func:`analysis_payload` is the single source of the analyze-JSON shape;
the CLI's ``analyze --json`` and the service's ``result`` endpoint both
call it, which is what makes a service result byte-equal to a direct
CLI analyze of the same campaign.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.service import admission
from repro.service.admission import AdmissionPolicy
from repro.service.jobstore import JobError, JobStore


def analysis_payload(thicket: Any, metric: str) -> dict[str, Any]:
    """The canonical analyze-JSON payload for one composed Thicket."""
    regions, profiles, matrix = thicket.metric_matrix(
        metric, region_filter=lambda s: "_" in s
    )
    return {
        "profiles": [str(p) for p in thicket.profiles],
        "metric": metric,
        "regions": list(regions),
        "columns": [str(p) for p in profiles],
        "matrix": [[float(v) for v in row] for row in matrix],
        "degraded": bool(thicket.load_errors),
        "load_errors": {
            "count": len(thicket.load_errors),
            "sources": [
                {"source": src, "reason": reason}
                for src, reason in thicket.load_errors
            ],
        },
    }


def campaign_sources(campaign_dir: Path) -> list[str]:
    """What ``analyze`` would be pointed at: the archive, or loose files."""
    from repro.caliper.calipack import ARCHIVE_NAME

    archive = campaign_dir / ARCHIVE_NAME
    if archive.exists():
        return [str(archive)]
    return sorted(str(p) for p in campaign_dir.glob("*.cali"))


class ServiceAPI:
    """Every service endpoint as a method returning ``(status, payload)``."""

    def __init__(self, store: JobStore, policy: AdmissionPolicy | None = None):
        self.store = store
        self.policy = policy or AdmissionPolicy()

    # ------------------------------------------------------------ endpoints
    def submit(
        self,
        spec: dict[str, Any],
        tenant: str = "default",
        job_id: str | None = None,
    ) -> tuple[int, dict[str, Any]]:
        decision = admission.evaluate(self.store, tenant, self.policy)
        if decision.rejected:
            return 429, {"rejected": True, "reason": decision.reason}
        try:
            record = self.store.submit(spec, tenant=tenant, job_id=job_id)
        except JobError as exc:
            return 400, {"error": str(exc)}
        return 200, {"job": record.to_payload()}

    def status(self, job_id: str) -> tuple[int, dict[str, Any]]:
        record = self.store.load(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, {"job": record.to_payload()}

    def list_jobs(
        self, tenant: str | None = None, state: str | None = None
    ) -> tuple[int, dict[str, Any]]:
        states = frozenset((state,)) if state else None
        records = self.store.list_jobs(tenant=tenant, states=states)
        payload: dict[str, Any] = {"jobs": [r.to_payload() for r in records]}
        if self.policy.watermarks.enabled:
            # Operators key exit-4-style degradation off this: a listing
            # under the hard watermark means claims are paused.
            payload["disk"] = self.policy.watermarks.describe(self.store.root)
        return 200, payload

    def cancel(self, job_id: str) -> tuple[int, dict[str, Any]]:
        try:
            record = self.store.request_cancel(job_id)
        except JobError as exc:
            return 404, {"error": str(exc)}
        return 200, {"job": record.to_payload(), "cancel_requested": True}

    def result(
        self, job_id: str, metric: str = "Avg time/rank"
    ) -> tuple[int, dict[str, Any]]:
        """The job's analyze payload; degraded rather than failing.

        Reads go through the campaign's warm ingest cache, so concurrent
        result requests against a packed campaign do not recompose the
        tables. Damage anywhere — a torn archive entry, a missing
        profile — degrades the payload exactly as CLI analyze would;
        total loss returns an empty, fully degraded matrix, still 200.
        """
        record = self.store.load(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if not record.terminal:
            return 409, {
                "error": f"job {job_id} is {record.state}, not terminal",
                "job": record.to_payload(),
            }
        campaign = self.store.campaign_dir(job_id)
        sources = campaign_sources(campaign)
        if not sources:
            return 200, {
                "job": record.to_payload(),
                "result": {
                    "profiles": [],
                    "metric": metric,
                    "regions": [],
                    "columns": [],
                    "matrix": [],
                    "degraded": True,
                    "load_errors": {
                        "count": 1,
                        "sources": [
                            {
                                "source": str(campaign),
                                "reason": "campaign produced no profiles",
                            }
                        ],
                    },
                },
            }
        import warnings as _warnings

        from repro.thicket import ProfileLoadWarning, Thicket
        from repro.thicket.ingest_cache import default_cache_dir

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", ProfileLoadWarning)
            thicket = Thicket.from_caliperreader(
                sources,
                on_error="warn",
                cache=default_cache_dir(sources[0]),
            )
        return 200, {
            "job": record.to_payload(),
            "result": analysis_payload(thicket, metric),
        }


# ------------------------------------------------------------- HTTP client
def http_json(
    url: str,
    payload: dict[str, Any] | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, Any]]:
    """Tiny urllib JSON client for the CLI (GET, or POST with a body)."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urlrequest.Request(url, data=data, headers=headers)
    try:
        with urlrequest.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urlerror.HTTPError as exc:
        try:
            body = json.loads(exc.read().decode("utf-8"))
        except ValueError:
            body = {"error": str(exc)}
        return exc.code, body
