"""Regenerate the paper's tables (I-IV) as text artifacts."""

from __future__ import annotations

from repro.gpusim.ncu import NCU_METRIC_TABLE
from repro.machines.registry import list_machines
from repro.perfmodel.calibration import calibration_errors
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import TABLE3
from repro.suite.variants import VariantKind
from repro.util.tables import TextTable


def table1() -> str:
    """Table I: kernel inventory — groups, variants, features, complexity."""
    from repro.rajasim.policies import Backend

    backends = [b for b in Backend if b is not Backend.SIMD]
    columns = ["Kernel", "Group"] + [b.value for b in backends] + [
        "Kokkos",
        "Features",
        "Complexity",
    ]
    table = TextTable(columns, title="Table I: RAJAPerf kernels (B+R = Base and RAJA variants)")
    for cls in all_kernel_classes():
        kernel = cls(1)
        variants = kernel.variants()
        row: list[object] = [cls.NAME, cls.GROUP.value]
        for backend in backends:
            kinds = {
                v.kind
                for v in variants
                if v.backend is backend and v.kind is not VariantKind.KOKKOS
            }
            cell = ""
            if VariantKind.BASE in kinds:
                cell += "B"
            if VariantKind.RAJA in kinds:
                cell += "R"
            row.append(cell)
        row.append("K" if cls.HAS_KOKKOS else "")
        row.append(",".join(sorted(f.value for f in cls.FEATURES)))
        row.append(cls.COMPLEXITY.value)
        table.add_row(*row)
    return table.render()


def table2() -> str:
    """Table II: systems with peak and model-achieved FLOPS/bandwidth."""
    table = TextTable(
        [
            "Shorthand",
            "System",
            "Architecture",
            "Units/node",
            "TFLOPS unit",
            "TFLOPS node",
            "MAT_MAT (model)",
            "% exp",
            "BW TB/s unit",
            "BW TB/s node",
            "TRIAD (model)",
            "% exp",
        ],
        title="Table II: systems; achieved rates recomputed through the model",
    )
    errors = {(p.machine, p.metric): p for p in calibration_errors()}
    for m in list_machines():
        flops_point = errors[(m.shorthand, "flops")]
        bw_point = errors[(m.shorthand, "bandwidth")]
        table.add_row(
            m.shorthand,
            m.system_name,
            m.architecture,
            f"{m.units_per_node} {m.unit_description}s",
            m.peak_tflops_unit,
            m.peak_tflops_node,
            flops_point.modeled / 1e12,
            100.0 * flops_point.modeled / m.peak_flops_per_sec,
            m.peak_membw_tb_unit,
            m.peak_membw_tb_node,
            bw_point.modeled / 1e12,
            100.0 * bw_point.modeled / m.peak_bytes_per_sec,
        )
    return table.render()


def table3() -> str:
    """Table III: per-machine run parameters (variant, ranks, size)."""
    table = TextTable(
        ["Machine", "Variant", "MPI ranks", "Size/node", "Size/rank"],
        title="Table III: RAJAPerf parameters (32M elements per node)",
    )
    for config in TABLE3.values():
        table.add_row(
            config.machine,
            config.variant,
            config.mpi_ranks,
            config.problem_size_per_node,
            config.problem_size_per_rank,
        )
    return table.render()


def table4() -> str:
    """Table IV: NCU metrics used for the instruction roofline."""
    table = TextTable(
        ["Category", "Metric", "Description"],
        title="Table IV: Nsight-Compute metrics for instruction roofline",
    )
    for metric in NCU_METRIC_TABLE:
        table.add_row(metric.category, metric.name, metric.description)
    return table.render()
