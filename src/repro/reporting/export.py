"""Plot-ready CSV export of every figure's data.

The paper's figures are plots; :mod:`repro.reporting.figures` renders text
versions, and this module exports the underlying series as CSV files (via
the column-store dataframe) so downstream users can re-plot with their
own tooling.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.parallel_coords import AXES, coordinates
from repro.analysis.roofline import LEVELS, roofline_points
from repro.analysis.similarity import SimilarityResult, run_similarity_analysis
from repro.analysis.speedup import BASELINE, TARGETS, run_speedup_study
from repro.analysis.topdown import TMA_COMPONENTS
from repro.dataframe import Frame, frame_to_csv
from repro.gpusim.ncu import ncu_counters
from repro.machines.registry import get_machine, list_machines
from repro.perfmodel.cpu_time import CpuTimeModel
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import PAPER_PROBLEM_SIZE


def fig1_frame(problem_size: int = PAPER_PROBLEM_SIZE) -> Frame:
    records = []
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        rec = {"kernel": kernel.full_name, "group": cls.GROUP.value}
        rec.update(kernel.analytic_metrics())
        records.append(rec)
    return Frame.from_records(records)


def topdown_frame(machine_name: str, problem_size: int = PAPER_PROBLEM_SIZE) -> Frame:
    """Figs. 3/4 data: per-kernel TMA fractions on a CPU machine."""
    machine = get_machine(machine_name)
    model = CpuTimeModel(machine)
    records = []
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        breakdown = model.predict(kernel.work_profile(), kernel.effective_traits())
        rec = {"kernel": kernel.full_name, "group": cls.GROUP.value}
        rec.update(breakdown.tma())
        records.append(rec)
    return Frame.from_records(records)


def roofline_frame(machine_name: str = "P9-V100", problem_size: int = PAPER_PROBLEM_SIZE) -> Frame:
    """Fig. 5 data: (kernel, level, intensity, warp GIPS, bound)."""
    machine = get_machine(machine_name)
    records = []
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        work = kernel.work_profile().scaled(1.0 / machine.units_per_node)
        time_s = kernel.predict(machine).total_seconds
        counters = ncu_counters(work, kernel.effective_traits(), machine, time_s)
        for point in roofline_points(kernel.full_name, counters, machine):
            records.append(
                {
                    "kernel": point.kernel,
                    "level": point.level,
                    "intensity": point.intensity,
                    "warp_gips": point.warp_gips,
                    "gtxn_per_sec": point.gtxn_per_sec,
                    "bound": point.bound_by(machine),
                }
            )
    return Frame.from_records(records)


def clusters_frame(result: SimilarityResult | None = None) -> Frame:
    """Figs. 6/7 data: per-kernel cluster labels and TMA features."""
    res = result if result is not None else run_similarity_analysis()
    records = []
    for i, name in enumerate(res.kernel_names):
        rec = {
            "kernel": name,
            "group": res.groups[i],
            "cluster": int(res.clustering.labels[i]),
        }
        rec.update(dict(zip(TMA_COMPONENTS, res.vectors[i])))
        records.append(rec)
    return Frame.from_records(records)


def parallel_coords_frame(result: SimilarityResult | None = None) -> Frame:
    """Fig. 8 data: one row per cluster, one column per axis."""
    res = result if result is not None else run_similarity_analysis()
    coords = coordinates(res.summaries)
    records = []
    for cluster_id, row in coords.items():
        rec = {"cluster": cluster_id}
        rec.update(dict(zip(AXES, row)))
        records.append(rec)
    return Frame.from_records(records)


def speedup_frame(problem_size: int = PAPER_PROBLEM_SIZE) -> Frame:
    """Figs. 9/10 data: times, speedups, achieved rates per machine."""
    study = run_speedup_study(problem_size=problem_size)
    records = []
    for record in study.records:
        rec = {
            "kernel": record.kernel,
            "group": record.group,
            "memory_bound_ddr": record.memory_bound_ddr,
            "flop_heavy": int(record.is_flop_heavy),
        }
        for machine in (BASELINE,) + TARGETS:
            rec[f"time_{machine}"] = record.times[machine]
            rec[f"gflops_{machine}"] = record.achieved_gflops(machine)
            rec[f"gbs_{machine}"] = record.achieved_gbytes(machine)
            if machine != BASELINE:
                rec[f"speedup_{machine}"] = record.speedup(machine)
        records.append(rec)
    return Frame.from_records(records)


def export_all(output_dir: str | Path) -> list[Path]:
    """Write every figure's CSV into ``output_dir``; returns the paths."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    result = run_similarity_analysis()
    frames = {
        "fig1_analytic_metrics": fig1_frame(),
        "fig3_topdown_spr_ddr": topdown_frame("SPR-DDR"),
        "fig4_topdown_spr_hbm": topdown_frame("SPR-HBM"),
        "fig5_roofline_p9_v100": roofline_frame("P9-V100"),
        "fig6_fig7_clusters": clusters_frame(result),
        "fig8_parallel_coordinates": parallel_coords_frame(result),
        "fig9_fig10_speedups": speedup_frame(),
    }
    paths = []
    for name, frame in frames.items():
        path = out / f"{name}.csv"
        frame_to_csv(frame, path)
        paths.append(path)
    return paths
