"""Regenerate the paper's figures (1-10) as text artifacts.

Each ``figN`` function runs the corresponding pipeline and renders the
same rows/series the paper plots. The benchmarks call these; examples and
the CLI expose them to users.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dendrogram import render_dendrogram
from repro.analysis.parallel_coords import render_parallel_coordinates
from repro.analysis.roofline import LEVELS, roofline_ceiling, roofline_points
from repro.analysis.similarity import SimilarityResult, run_similarity_analysis
from repro.analysis.speedup import BASELINE, TARGETS, run_speedup_study
from repro.analysis.topdown import TMA_COMPONENTS, render_hierarchy, topdown_from_counters
from repro.cpusim.counters import slot_counters
from repro.gpusim.ncu import ncu_counters
from repro.machines.registry import get_machine
from repro.perfmodel.cpu_time import CpuTimeModel
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import PAPER_PROBLEM_SIZE
from repro.util.tables import TextTable, render_barchart


def fig1(problem_size: int = PAPER_PROBLEM_SIZE) -> str:
    """Fig. 1: analytic metrics per kernel iteration."""
    table = TextTable(
        ["Kernel", "Bytes read/iter", "Bytes written/iter", "FLOPs/iter", "FLOPs/byte"],
        title="Fig. 1: analytic metrics normalized by problem size",
    )
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        metrics = kernel.analytic_metrics()
        table.add_row(
            kernel.full_name,
            metrics["bytes_read"],
            metrics["bytes_written"],
            metrics["flops"],
            metrics["flops_per_byte"],
        )
    return table.render()


def fig2() -> str:
    """Fig. 2: the top-down (TMA) hierarchy."""
    return "Fig. 2: Top-down hierarchical bottleneck method\n" + render_hierarchy()


def _topdown_figure(machine_name: str, problem_size: int, title: str) -> str:
    machine = get_machine(machine_name)
    model = CpuTimeModel(machine)
    lines = [title]
    header = f"{'Kernel':28s} " + " ".join(f"{c:>16s}" for c in TMA_COMPONENTS)
    lines.append(header)
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        work = kernel.work_profile()
        breakdown = model.predict(work, kernel.effective_traits())
        counters = slot_counters(breakdown, machine, work.instructions)
        tma = topdown_from_counters(counters)
        values = " ".join(f"{getattr(tma, c):>16.4f}" for c in TMA_COMPONENTS)
        lines.append(f"{kernel.full_name:28s} {values}")
    return "\n".join(lines)


def fig3(problem_size: int = PAPER_PROBLEM_SIZE) -> str:
    """Fig. 3: SPR-DDR top-down metrics across the suite."""
    return _topdown_figure("SPR-DDR", problem_size, "Fig. 3: SPR-DDR top-down metrics")


def fig4(problem_size: int = PAPER_PROBLEM_SIZE) -> str:
    """Fig. 4: SPR-HBM top-down metrics across the suite."""
    return _topdown_figure("SPR-HBM", problem_size, "Fig. 4: SPR-HBM top-down metrics")


def fig5(problem_size: int = PAPER_PROBLEM_SIZE, machine_name: str = "P9-V100") -> str:
    """Fig. 5: instruction roofline on the P9-V100 (L1, L2, HBM)."""
    machine = get_machine(machine_name)
    lines = [
        f"Fig. 5: instruction roofline, {machine.shorthand} "
        f"(peak {machine.gpu.peak_warp_gips:.1f} warp GIPS; "
        f"L1/L2/HBM = {machine.gpu.l1_gtxn_per_sec}/"
        f"{machine.gpu.l2_gtxn_per_sec}/{machine.gpu.dram_gtxn_per_sec} GTXN/s)"
    ]
    header = (
        f"{'Kernel':28s} {'GIPS':>9s} "
        + " ".join(f"{lv + ' int.':>10s} {lv + ' bound':>9s}" for lv in LEVELS)
    )
    lines.append(header)
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        # Per-GPU share: NCU profiles one device.
        work = kernel.work_profile().scaled(1.0 / machine.units_per_node)
        time_s = kernel.predict(machine).total_seconds
        counters = ncu_counters(work, kernel.effective_traits(), machine, time_s)
        points = roofline_points(kernel.full_name, counters, machine)
        cells = []
        for point in points:
            intensity = point.intensity if np.isfinite(point.intensity) else float("inf")
            cells.append(f"{intensity:>10.3g} {point.bound_by(machine):>9s}")
        lines.append(f"{kernel.full_name:28s} {points[0].warp_gips:>9.3g} " + " ".join(cells))
    return "\n".join(lines)


def fig6(result: SimilarityResult | None = None) -> str:
    """Fig. 6: dendrogram of agglomerative clustering on SPR-DDR data."""
    res = result if result is not None else run_similarity_analysis()
    short = [n.split("_", 1)[1][:20] for n in res.kernel_names]
    return (
        "Fig. 6: "
        + render_dendrogram(res.clustering.merges, short, threshold=res.clustering.threshold)
    )


def fig7(result: SimilarityResult | None = None) -> str:
    """Fig. 7: per-cluster group distribution, TMA means, and speedups."""
    res = result if result is not None else run_similarity_analysis()
    dist = TextTable(
        ["Group", "Total"] + [f"Cluster {c}" for c in range(res.num_clusters)],
        title="Fig. 7 (top): kernels per group per cluster",
    )
    for group, counts in res.group_distribution.items():
        total = sum(counts.values())
        dist.add_row(group, total, *[counts.get(c, 0) for c in range(res.num_clusters)])
    summary = TextTable(
        ["Cluster", "n"] + list(TMA_COMPONENTS) + [f"Speedup {m}" for m in TARGETS],
        title="Fig. 7 (bottom): per-cluster TMA means and speedups over SPR-DDR",
    )
    for s in res.summaries:
        summary.add_row(
            s.cluster_id,
            s.size,
            *[s.tma_means[c] for c in TMA_COMPONENTS],
            *[s.speedups[m] for m in TARGETS],
        )
    return dist.render() + "\n\n" + summary.render()


def fig8(result: SimilarityResult | None = None) -> str:
    """Fig. 8: parallel-coordinate plot of cluster TMA means + speedups."""
    res = result if result is not None else run_similarity_analysis()
    return "Fig. 8: " + render_parallel_coordinates(res.summaries)


def fig9(problem_size: int = PAPER_PROBLEM_SIZE) -> str:
    """Fig. 9: SPR-DDR memory-bound metric and speedups on the three
    higher-bandwidth systems (TRIAD reference = yellow line)."""
    study = run_speedup_study(problem_size=problem_size)
    names = [r.kernel for r in study.records]
    parts = [
        "Fig. 9 panel 1: Memory-bound TMA fraction on SPR-DDR",
        render_barchart(names, [r.memory_bound_ddr for r in study.records], max_value=1.0),
    ]
    for machine in TARGETS:
        triad = study.triad_speedups.get(machine)
        parts.append(
            f"\nFig. 9 panel: speedup on {machine} vs {BASELINE} "
            f"(| marks 1x; TRIAD = {triad:.2f}x)"
        )
        values = [r.speedup(machine) for r in study.records]
        cap = min(max(values), 40.0)
        parts.append(
            render_barchart(names, values, max_value=cap, reference=1.0, unit="x")
        )
    return "\n".join(parts)


def fig10(problem_size: int = PAPER_PROBLEM_SIZE) -> str:
    """Fig. 10: achieved memory bandwidth vs FLOPS on all four systems."""
    study = run_speedup_study(problem_size=problem_size)
    parts = ["Fig. 10: achieved GB/s vs GFLOPS per kernel per machine"]
    for machine in (BASELINE,) + TARGETS:
        table = TextTable(
            ["Kernel", "GB/s", "GFLOPS", "Above diagonal (FLOP-heavy)"],
            title=f"Fig. 10 {machine}",
        )
        for record in study.records:
            gbs = record.achieved_gbytes(machine)
            gflops = record.achieved_gflops(machine)
            table.add_row(record.kernel, gbs, gflops, "yes" if gflops > gbs else "")
        parts.append(table.render())
    flop_heavy = study.flop_heavy_kernels()
    parts.append(f"\nFLOP-heavy kernels on {BASELINE} ({len(flop_heavy)}):")
    parts.extend(f"  - {name}" for name in flop_heavy)
    return "\n".join(parts)
