"""Per-experiment drivers: regenerate every paper artifact by id.

``EXPERIMENTS`` maps the DESIGN.md experiment ids (T1-T4, F1-F10) to the
functions that regenerate them; :func:`run_experiment` and
:func:`run_all_experiments` are the entry points used by the CLI and the
benchmark harness.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.reporting import figures, tables

EXPERIMENTS: dict[str, Callable[[], str]] = {
    "T1": tables.table1,
    "T2": tables.table2,
    "T3": tables.table3,
    "T4": tables.table4,
    "F1": figures.fig1,
    "F2": figures.fig2,
    "F3": figures.fig3,
    "F4": figures.fig4,
    "F5": figures.fig5,
    "F6": figures.fig6,
    "F7": figures.fig7,
    "F8": figures.fig8,
    "F9": figures.fig9,
    "F10": figures.fig10,
}

DESCRIPTIONS: dict[str, str] = {
    "T1": "Table I: kernel inventory (groups, variants, features, complexity)",
    "T2": "Table II: systems with model-achieved FLOPS and bandwidth",
    "T3": "Table III: per-machine run parameters",
    "T4": "Table IV: NCU metrics for the instruction roofline",
    "F1": "Fig. 1: analytic metrics per kernel iteration",
    "F2": "Fig. 2: top-down (TMA) hierarchy",
    "F3": "Fig. 3: SPR-DDR top-down metrics",
    "F4": "Fig. 4: SPR-HBM top-down metrics",
    "F5": "Fig. 5: instruction roofline on P9-V100",
    "F6": "Fig. 6: dendrogram of Ward clustering on SPR-DDR TMA",
    "F7": "Fig. 7: per-cluster TMA means, speedups, group distribution",
    "F8": "Fig. 8: parallel-coordinate cluster profiles",
    "F9": "Fig. 9: memory-bound metric and cross-machine speedups",
    "F10": "Fig. 10: achieved bandwidth vs FLOPS on four systems",
}


def run_experiment(exp_id: str) -> str:
    """Regenerate one experiment artifact by id (e.g. ``"F7"``)."""
    key = exp_id.strip().upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; have {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]()


def run_all_experiments(output_dir: str | Path | None = None) -> dict[str, str]:
    """Regenerate everything; optionally write one ``.txt`` per artifact."""
    results = {key: fn() for key, fn in EXPERIMENTS.items()}
    if output_dir is not None:
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        for key, text in results.items():
            (out / f"{key.lower()}.txt").write_text(text + "\n")
    return results
