"""Reporting: regenerate every table and figure of the paper."""

from repro.reporting.experiments import (
    DESCRIPTIONS,
    EXPERIMENTS,
    run_all_experiments,
    run_experiment,
)
from repro.reporting.figures import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
)
from repro.reporting.tables import table1, table2, table3, table4
from repro.reporting.export import (
    clusters_frame,
    export_all,
    fig1_frame,
    parallel_coords_frame,
    roofline_frame,
    speedup_frame,
    topdown_frame,
)

__all__ = [
    "EXPERIMENTS",
    "DESCRIPTIONS",
    "run_experiment",
    "run_all_experiments",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "export_all",
    "fig1_frame",
    "topdown_frame",
    "roofline_frame",
    "clusters_frame",
    "parallel_coords_frame",
    "speedup_frame",
]
