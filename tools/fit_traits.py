#!/usr/bin/env python3
"""Fit per-kernel traits to the paper's published observations.

Generates ``src/repro/perfmodel/calibrated.py``. The fit has two stages:

1. **CPU stage** — for every kernel admitted to the similarity analysis,
   solve the CPU time model analytically so its SPR-DDR TMA vector lands
   on its cluster's Fig. 7 center (plus a small deterministic per-kernel
   offset, since real kernels are not identical), at a total-time scale
   consistent with the GPU speedup targets.
2. **GPU stage** — choose per-machine GPU compute efficiencies (or
   serialization fractions) so each kernel's predicted V100/MI250X
   speedups hit the cluster averages and Section V's named exceptions.

The model remains the single source of truth: this script only solves for
trait values; all reported numbers are recomputed through the model.
"""

from __future__ import annotations

import hashlib
import pprint
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.machines.registry import EPYC_MI250X, P9_V100, SPR_DDR  # noqa: E402
from repro.perfmodel.cpu_time import IPC_BASE, OOO_OVERLAP, CACHE_BW_FACTOR, ATOMIC_RATE_PER_CORE  # noqa: E402
from repro.perfmodel.timing import RAJA_OVERHEAD_CPU, RAJA_OVERHEAD_GPU  # noqa: E402
from repro.suite.registry import similarity_kernel_classes  # noqa: E402
from repro.suite.run_params import PAPER_PROBLEM_SIZE  # noqa: E402

# ---------------------------------------------------------------- targets
# Fig. 7 cluster centers: (frontend, bad_spec, retiring, core, memory).
CLUSTER_TMA = {
    "bal": (0.0452, 0.0380, 0.2402, 0.1488, 0.5279),
    "ret": (0.1460, 0.0050, 0.7169, 0.1021, 0.0300),
    "mem": (0.0103, 0.0001, 0.0562, 0.0522, 0.8812),
    "core": (0.0118, 0.0037, 0.4117, 0.5358, 0.0370),
}
# Fig. 7 cluster-average speedups (P9-V100, EPYC-MI250X). The memory
# cluster's speedups fall out of the bandwidth anchors, so it carries no
# explicit target.
# Targets for members WITHOUT an explicit override, chosen so each
# cluster's mean (including its Section V no-speedup members) lands on
# Fig. 7's reported averages.
CLUSTER_SPEEDUP = {
    "bal": (5.2, 15.6),
    "ret": (4.86, 7.56),
    "core": (4.9, 9.5),
    "mem": None,
}

#: Target cluster per kernel (Section IV reconstruction; see DESIGN.md).
TARGET_CLUSTER = {
    # --- cluster "mem" (paper cluster 2): 22 kernels
    "Stream_ADD": "mem", "Stream_COPY": "mem", "Stream_MUL": "mem",
    "Stream_TRIAD": "mem",
    "Lcals_DIFF_PREDICT": "mem", "Lcals_EOS": "mem", "Lcals_FIRST_DIFF": "mem",
    "Lcals_FIRST_SUM": "mem", "Lcals_GEN_LIN_RECUR": "mem",
    "Lcals_HYDRO_1D": "mem", "Lcals_HYDRO_2D": "mem",
    "Lcals_INT_PREDICT": "mem", "Lcals_TRIDIAG_ELIM": "mem",
    "Algorithm_MEMCPY": "mem", "Algorithm_MEMSET": "mem",
    "Basic_COPY8": "mem", "Basic_INIT3": "mem", "Basic_DAXPY": "mem",
    "Polybench_JACOBI_1D": "mem", "Polybench_FDTD_2D": "mem",
    "Apps_ENERGY": "mem", "Apps_PRESSURE": "mem",
    # --- cluster "bal" (paper cluster 0): 18 kernels
    "Algorithm_SCAN": "bal", "Stream_DOT": "bal", "Lcals_PLANCKIAN": "bal",
    "Basic_ARRAY_OF_PTRS": "bal", "Basic_DAXPY_ATOMIC": "bal",
    "Basic_IF_QUAD": "bal", "Basic_INDEXLIST_3LOOP": "bal",
    "Basic_MULADDSUB": "bal", "Basic_REDUCE_STRUCT": "bal",
    "Apps_DEL_DOT_VEC_2D": "bal", "Apps_DIFFUSION3DPA": "bal",
    "Apps_MASS3DEA": "bal", "Apps_MASS3DPA": "bal",
    "Apps_NODAL_ACCUMUL_3D": "bal", "Apps_ZONAL_ACCUMUL_3D": "bal",
    "Polybench_GESUMMV": "bal", "Polybench_ADI": "bal",
    "Polybench_HEAT_3D": "bal",
    # --- cluster "ret" (paper cluster 1): 13 kernels
    "Algorithm_REDUCE_SUM": "ret",
    "Apps_FIR": "ret", "Apps_LTIMES": "ret", "Apps_LTIMES_NOVIEW": "ret",
    "Apps_VOL3D": "ret", "Apps_MATVEC_3D_STENCIL": "ret",
    "Apps_CONVECTION3DPA": "ret",
    "Basic_INIT_VIEW1D": "ret", "Basic_INIT_VIEW1D_OFFSET": "ret",
    "Basic_NESTED_INIT": "ret", "Basic_PI_ATOMIC": "ret",
    "Lcals_FIRST_MIN": "ret", "Polybench_JACOBI_2D": "ret",
    # --- cluster "core" (paper cluster 3): 8 kernels
    "Algorithm_ATOMIC": "core", "Basic_MULTI_REDUCE": "core",
    "Basic_PI_REDUCE": "core", "Basic_REDUCE3_INT": "core",
    "Basic_TRAP_INT": "core",
    "Polybench_ATAX": "core", "Polybench_MVT": "core",
    "Polybench_GEMVER": "core",
}

#: Section V exceptions: explicit (V100, MI250X) speedup targets.
SPEEDUP_OVERRIDES = {
    # No GPU speedup on either GPU (Sections V-B / V-C).
    "Basic_PI_ATOMIC": (0.82, 0.90),
    "Polybench_ADI": (0.85, 0.95),
    "Polybench_ATAX": (0.80, 0.93),
    "Polybench_GEMVER": (0.83, 0.95),
    "Polybench_GESUMMV": (0.87, 0.96),
    "Polybench_MVT": (0.81, 0.94),
    # Apps_EDGE3D: Fig. 9's 118.6x on the MI250X.
    "Apps_EDGE3D": (9.0, 118.6),
}

#: Kernels whose MI250X GPU efficiency is pinned by Fig. 10d's achieved
#: TFLOPS; only their V100 side is fitted.
RATE_PINNED_MI = {"Apps_VOL3D", "Apps_DIFFUSION3DPA", "Apps_EDGE3D"}

#: Kernels left entirely on their hand-written traits: TRIAD and
#: MAT_MAT_SHARED are the model's calibration anchors.
SKIP_FIT = {"Stream_TRIAD"}

#: Achieved-FLOPS ceilings for fitted (non-annotated) kernels, keeping
#: Fig. 10's annotated top-4 on MI250X and MAT_MAT's lead on the V100.
FLOPS_CAP = {"EPYC-MI250X": 9.5e12, "P9-V100": 6.9e12}


def _jitter(name: str, scale: float, k: int) -> np.ndarray:
    digest = hashlib.sha512(name.encode()).digest()
    vals = np.frombuffer(digest[: 8 * k], dtype=np.uint64).astype(np.float64)
    return (vals / 2**64 - 0.5) * 2.0 * scale


def tma_target(name: str, cluster: str) -> np.ndarray:
    center = np.array(CLUSTER_TMA[cluster])
    jit = _jitter(name, 0.022, 5)
    target = np.clip(center + jit, 0.0005, None)
    return target / target.sum()


def speedup_targets(name: str, cluster: str) -> tuple[float, float] | None:
    if name in SPEEDUP_OVERRIDES:
        return SPEEDUP_OVERRIDES[name]
    base = CLUSTER_SPEEDUP[cluster]
    if base is None:
        return None
    jit = _jitter(name + "#spd", 0.06, 2)
    return (base[0] * (1.0 + jit[0]), base[1] * (1.0 + jit[1]))


def gpu_extras(work, machine) -> float:
    gpu = machine.gpu
    t_launch = work.launches * gpu.kernel_launch_overhead_us * 1e-6
    t_atomic = work.atomics / (gpu.atomic_throughput_gops * 1e9 * machine.units_per_node)
    t_mpi = 0.0
    return t_launch + t_atomic + t_mpi


def gpu_floor(work, traits, machine, pinned: bool = False) -> float:
    """Minimum achievable GPU time (memory/instruction bound) incl. extras.

    For ``pinned`` kernels the FLOP time at the hand-pinned efficiency is
    part of the floor (their achieved TFLOPS is a published number).
    """
    t_mem = work.bytes_total * (1.0 - traits.gpu_cache_resident) / (
        machine.achieved_bytes_per_sec * traits.streaming_eff
    )
    t_instr = work.instructions / (machine.gpu.sustained_tips_node * 1e12)
    floor = max(t_mem, t_instr)
    if pinned and work.flops > 0:
        t_flop = work.flops / (
            machine.peak_flops_per_sec
            * machine.gpu.flop_derate
            * traits.gpu_eff_for(machine.shorthand)
        )
        floor = max(floor, t_flop)
    return (floor + gpu_extras(work, machine)) * RAJA_OVERHEAD_GPU


def cpu_floor(work, traits, target) -> float:
    """Smallest SPR-DDR total consistent with the target fractions.

    Retirement cannot beat the full-SIMD rate and memory traffic cannot
    beat the all-cached bandwidth, so the fitted total must be at least
    the larger implied scale.
    """
    f_fe, f_bs, f_ret, f_core, f_mem = target
    cpu = SPR_DDR.cpu
    r_max = cpu.cores_per_node * cpu.frequency_ghz * 1e9 * IPC_BASE * (
        1.0 + (cpu.simd_width_doubles - 1)
    )
    t_ret_min = work.instructions / r_max
    floor = t_ret_min / max(f_ret, 1e-3)
    if work.bytes_total > 0:
        t_mem_min = work.bytes_total / (
            SPR_DDR.achieved_bytes_per_sec * CACHE_BW_FACTOR
        )
        floor = max(floor, t_mem_min / max(f_mem + OOO_OVERLAP * f_ret, 1e-3))
    t_atomic = work.atomics / (cpu.cores_per_node * ATOMIC_RATE_PER_CORE)
    if t_atomic > 0:
        floor = max(floor, t_atomic / max(f_core, 1e-3))
    return floor * RAJA_OVERHEAD_CPU


def fit_cpu(kernel, target: np.ndarray, total_target: float | None) -> dict:
    """Analytically solve CPU traits for the target TMA vector and scale.

    Returns the trait-field overrides. ``total_target`` is the desired
    RAJA-variant total time on SPR-DDR (None = natural memory scale).
    """
    work = kernel.work_profile()
    traits = kernel.traits()
    cpu = SPR_DDR.cpu
    f_fe, f_bs, f_ret, f_core, f_mem = target
    bw = SPR_DDR.achieved_bytes_per_sec
    streaming = traits.streaming_eff

    if total_target is None:
        # Natural scale: uncached memory stream at the preset streaming
        # efficiency sets the clock.
        t_mem_raw_nat = work.bytes_total / (bw * streaming)
        base_total = t_mem_raw_nat / (f_mem + OOO_OVERLAP * f_ret)
    else:
        base_total = total_target / RAJA_OVERHEAD_CPU

    t_ret = f_ret * base_total
    t_fe = f_fe * base_total
    t_bs = f_bs * base_total
    t_core = f_core * base_total
    t_mem_stall = f_mem * base_total

    # simd_eff from the retirement rate.
    rate_needed = work.instructions / t_ret if t_ret > 0 else np.inf
    lanes = rate_needed / (cpu.cores_per_node * cpu.frequency_ghz * 1e9 * IPC_BASE)
    simd_eff = float(np.clip((lanes - 1.0) / (cpu.simd_width_doubles - 1), 0.0, 1.0))
    # Recompute the achievable t_ret after clipping (scalar floor etc.).
    lanes_eff = 1.0 + simd_eff * (cpu.simd_width_doubles - 1)
    t_ret_real = work.instructions / (
        cpu.cores_per_node * cpu.frequency_ghz * 1e9 * IPC_BASE * lanes_eff
    )

    frontend_factor = float(np.clip(t_fe / t_ret_real, 0.0, 3.0)) if t_ret_real else 0.0
    branch = (
        t_bs * cpu.cores_per_node * cpu.frequency_ghz * 1e9
        / (work.iterations * cpu.branch_mispredict_penalty_cycles)
        if work.iterations
        else 0.0
    )

    # Memory: solve cache_resident at the preset streaming efficiency.
    t_mem_raw = t_mem_stall + OOO_OVERLAP * t_ret_real
    bytes_total = work.bytes_total
    if bytes_total > 0 and t_mem_raw > 0:
        # t_mem_raw = B(1-c)/(bw*s) + B*c/(bw*CACHE_BW_FACTOR)
        a = bytes_total / (bw * streaming)
        b = bytes_total / (bw * CACHE_BW_FACTOR)
        if abs(a - b) > 1e-30:
            c = (a - t_mem_raw) / (a - b)
        else:
            c = 0.0
        cache_resident = float(np.clip(c, 0.0, 1.0))
        if c > 1.0:
            # Even fully cached the traffic is slower than wanted: raise
            # streaming (bounded) to soak the residual; accept mismatch.
            cache_resident = 1.0
    else:
        cache_resident = traits.cache_resident

    # Core: solve cpu_compute_eff from the FP stall target.
    t_atomic = work.atomics / (cpu.cores_per_node * ATOMIC_RATE_PER_CORE)
    t_flop_raw = max(t_core - t_atomic, 0.0) + OOO_OVERLAP * t_ret_real
    if work.flops > 0 and t_flop_raw > 0:
        eff = work.flops / (SPR_DDR.peak_flops_per_sec * t_flop_raw)
        cpu_compute_eff = float(np.clip(eff, 1e-6, 2.0))
    else:
        cpu_compute_eff = traits.cpu_compute_eff

    return {
        "simd_eff": round(simd_eff, 5),
        "frontend_factor": round(frontend_factor, 5),
        "branch_misp_per_iter": round(float(np.clip(branch, 0.0, 0.5)), 6),
        "cache_resident": round(cache_resident, 5),
        "cpu_compute_eff": round(cpu_compute_eff, 6),
    }


def fit_gpu(kernel, overlay: dict, targets: tuple[float, float]) -> None:
    """Solve per-machine GPU efficiencies for the target speedups."""
    from dataclasses import replace

    work = kernel.work_profile()
    traits = replace(kernel.traits(), **{k: v for k, v in overlay.items() if k != "gpu_eff_overrides"})
    from repro.perfmodel.timing import predict_time

    t_ddr = predict_time(work, traits, SPR_DDR, is_raja=True).total_seconds
    eff_overrides = dict(overlay.get("gpu_eff_overrides", {}))
    for machine, s_target in ((P9_V100, targets[0]), (EPYC_MI250X, targets[1])):
        if machine is EPYC_MI250X and kernel.full_name in RATE_PINNED_MI:
            continue  # pinned by the Fig. 10d achieved-TFLOPS trait
        t_needed = t_ddr / s_target / RAJA_OVERHEAD_GPU
        extras = gpu_extras(work, machine)
        t_par_needed = t_needed - extras
        t_mem = work.bytes_total * (1.0 - traits.gpu_cache_resident) / (
            machine.achieved_bytes_per_sec * traits.streaming_eff
        )
        t_instr = work.instructions / (machine.gpu.sustained_tips_node * 1e12)
        floor = max(t_mem, t_instr)
        if work.flops <= 0:
            continue
        # When the memory/instruction floor binds, still pin the FLOP time
        # to the floor so a slow hand-written efficiency cannot drag the
        # kernel below its achievable speedup.
        eff = work.flops / (
            machine.peak_flops_per_sec
            * machine.gpu.flop_derate
            * max(t_par_needed, floor)
        )
        # Keep fitted kernels below the published achieved-FLOPS leaders.
        eff_cap = FLOPS_CAP[machine.shorthand] / (
            machine.peak_flops_per_sec * machine.gpu.flop_derate
        )
        eff_overrides[machine.shorthand] = round(
            float(np.clip(eff, 1e-5, eff_cap)), 6
        )
    if eff_overrides:
        overlay["gpu_eff_overrides"] = eff_overrides


def main() -> None:
    from repro.suite.registry import get_kernel_class

    calibration: dict[str, dict] = {}
    extra = [get_kernel_class("Apps_EDGE3D")]
    for cls in similarity_kernel_classes() + extra:
        kernel = cls(problem_size=PAPER_PROBLEM_SIZE)
        name = kernel.full_name
        if name in SKIP_FIT:
            continue
        cluster = TARGET_CLUSTER.get(name, "bal" if name == "Apps_EDGE3D" else None)
        if cluster is None:
            print(f"!! no target cluster for {name}; skipping")
            continue
        target = tma_target(name, cluster)
        spd = speedup_targets(name, cluster)
        total_target = None
        if spd is not None:
            work = kernel.work_profile()
            traits = kernel.traits()
            pinned = name in RATE_PINNED_MI
            total_target = max(
                spd[0] * gpu_floor(work, traits, P9_V100),
                spd[1] * gpu_floor(work, traits, EPYC_MI250X, pinned=pinned),
                cpu_floor(work, traits, target),
            )
        overlay = fit_cpu(kernel, target, total_target)
        if spd is not None:
            fit_gpu(kernel, overlay, spd)
        calibration[name] = overlay

    header = Path("src/repro/perfmodel/calibrated.py").read_text().split(
        "#: kernel full name -> trait-field overrides"
    )[0]
    body = (
        "#: kernel full name -> trait-field overrides (see KernelTraits).\n"
        "TRAIT_CALIBRATION: dict[str, dict] = "
        + pprint.pformat(calibration, width=78, sort_dicts=True)
        + "\n"
    )
    Path("src/repro/perfmodel/calibrated.py").write_text(header + body)
    print(f"wrote {len(calibration)} calibrated kernels")


if __name__ == "__main__":
    main()
