#!/usr/bin/env python
"""Gate execution-engine benchmark results against the committed baseline.

Reads a pytest-benchmark JSON file (``BENCH_<sha>.json`` from the CI
benchmarks job), pulls the ``extra_info`` stats the engine-sweep benches
record, and compares them against ``benchmarks/baselines/kernel_execution.json``:

* ``speedup`` — the legacy-vs-zero-copy engine ratio. Both sweeps run on
  the same machine in the same job, so this is self-normalizing across
  hardware; a drop means the engine itself regressed. Hard failure.
* ``engine_cells_per_sec`` — absolute executed-cell throughput. Hard
  failure when it regresses more than the tolerance below baseline;
  machine-dependent, so refresh the baseline (``--update``) when the CI
  runner class changes.

Other baseline files (``--baseline``) gate other suites: a baseline may
declare its own ``"metrics"`` list (e.g. ``benchmarks/baselines/query.json``
gates ``speedup`` and ``lazy_queries_per_sec`` for the lazy query engine);
without one, the default engine metrics above apply.

Exit status 0 = within tolerance, 1 = regression, 2 = usage/format error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "kernel_execution.json"
)

#: extra_info keys gated per benchmark when the baseline file does not
#: declare its own ``"metrics"`` list (higher is better for all).
GATED_METRICS = ("speedup", "engine_cells_per_sec")


def gated_metrics(baseline: dict) -> tuple[str, ...]:
    """The metric names this baseline gates (its ``metrics`` list)."""
    return tuple(baseline.get("metrics", GATED_METRICS))


def load_results(
    bench_json: Path, metrics: tuple[str, ...] = GATED_METRICS
) -> dict[str, dict]:
    data = json.loads(bench_json.read_text())
    out: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info") or {}
        if any(metric in extra for metric in metrics):
            out[bench["name"]] = extra
    return out


def check(results: dict[str, dict], baseline: dict) -> list[str]:
    tolerance = float(baseline.get("tolerance", 0.2))
    failures = []
    for name, expected in baseline["benchmarks"].items():
        got = results.get(name)
        if got is None:
            failures.append(f"{name}: missing from benchmark results")
            continue
        for metric in gated_metrics(baseline):
            if metric not in expected:
                continue
            floor = expected[metric] * (1.0 - tolerance)
            value = got.get(metric)
            if value is None:
                failures.append(f"{name}: result has no {metric!r}")
            elif value < floor:
                failures.append(
                    f"{name}: {metric} {value:.3f} regressed below "
                    f"{floor:.3f} (baseline {expected[metric]:.3f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def update_baseline(results: dict[str, dict], baseline_path: Path) -> None:
    baseline = json.loads(baseline_path.read_text())
    for name, entry in baseline["benchmarks"].items():
        got = results.get(name)
        if got is None:
            raise SystemExit(f"cannot update: {name} missing from results")
        for metric in gated_metrics(baseline):
            if metric in entry:
                entry[metric] = round(float(got[metric]), 2)
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from these results instead of gating",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        results = load_results(args.bench_json, gated_metrics(baseline))
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update:
        update_baseline(results, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    failures = check(results, baseline)
    metrics = gated_metrics(baseline)
    for name, extra in sorted(results.items()):
        shown = " ".join(f"{m}={extra.get(m)}" for m in metrics)
        print(f"{name}: {shown}")
    if failures:
        print("\nBENCHMARK REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("benchmarks within tolerance of committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
