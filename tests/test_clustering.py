"""From-scratch agglomerative clustering vs SciPy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster.hierarchy import fcluster as scipy_fcluster
from scipy.cluster.hierarchy import linkage as scipy_linkage

from repro.analysis.clustering import (
    ClusterResult,
    cluster_kernels,
    fcluster_by_distance,
    linkage,
)


def canonical(labels) -> list[int]:
    """Relabel cluster ids by first appearance for partition comparison."""
    mapping: dict = {}
    out = []
    for label in labels:
        mapping.setdefault(label, len(mapping))
        out.append(mapping[label])
    return out


points_strategy = st.integers(0, 10_000).map(
    lambda seed: np.random.default_rng(seed).random(
        (int(np.random.default_rng(seed + 1).integers(3, 40)), 5)
    )
)


class TestLinkage:
    @pytest.mark.parametrize("method", ["ward", "single", "complete", "average"])
    def test_matches_scipy(self, method):
        rng = np.random.default_rng(7)
        points = rng.random((25, 5))
        ours = linkage(points, method)
        theirs = scipy_linkage(points, method=method)
        np.testing.assert_allclose(ours[:, 2], theirs[:, 2], rtol=1e-10)
        np.testing.assert_allclose(ours[:, 3], theirs[:, 3])

    @given(points_strategy)
    @settings(max_examples=25, deadline=None)
    def test_ward_matches_scipy_property(self, points):
        ours = linkage(points, "ward")
        theirs = scipy_linkage(points, method="ward")
        np.testing.assert_allclose(ours[:, 2], theirs[:, 2], rtol=1e-8, atol=1e-12)

    def test_merge_distances_monotone_for_ward(self):
        rng = np.random.default_rng(3)
        merges = linkage(rng.random((30, 4)), "ward")
        assert np.all(np.diff(merges[:, 2]) >= -1e-12)

    def test_final_merge_contains_everything(self):
        rng = np.random.default_rng(5)
        merges = linkage(rng.random((12, 3)), "ward")
        assert merges[-1, 3] == 12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            linkage(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            linkage(np.zeros(5))
        with pytest.raises(ValueError):
            linkage(np.zeros((5, 2)), method="median")


class TestFcluster:
    @given(points_strategy, st.floats(0.1, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_partition_matches_scipy(self, points, threshold):
        merges = linkage(points, "ward")
        ours = fcluster_by_distance(merges, threshold)
        theirs = scipy_fcluster(
            scipy_linkage(points, method="ward"), threshold, criterion="distance"
        )
        assert canonical(ours) == canonical(theirs)

    def test_tiny_threshold_gives_singletons(self):
        rng = np.random.default_rng(11)
        points = rng.random((10, 3)) * 100
        merges = linkage(points, "ward")
        labels = fcluster_by_distance(merges, 1e-9)
        assert len(set(labels)) == 10

    def test_huge_threshold_gives_one_cluster(self):
        rng = np.random.default_rng(11)
        merges = linkage(rng.random((10, 3)), "ward")
        labels = fcluster_by_distance(merges, 1e9)
        assert len(set(labels)) == 1

    def test_threshold_must_be_positive(self):
        merges = linkage(np.random.default_rng(0).random((5, 2)))
        with pytest.raises(ValueError):
            fcluster_by_distance(merges, 0.0)


class TestClusterKernels:
    def test_separated_blobs_found(self):
        rng = np.random.default_rng(0)
        blobs = np.vstack(
            [rng.normal(loc, 0.02, size=(10, 5)) for loc in (0.0, 1.0, 2.0)]
        )
        result = cluster_kernels(blobs, threshold=1.0)
        assert isinstance(result, ClusterResult)
        assert result.num_clusters == 3
        # Blob membership must be contiguous per construction.
        for cluster in range(3):
            members = result.members(cluster)
            assert len(members) == 10
            assert members.max() - members.min() == 9
