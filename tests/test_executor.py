"""The suite executor: profiles, metadata, counters, compatibility."""

import numpy as np
import pytest

from repro.machines.registry import EPYC_MI250X, P9_V100, SPR_DDR
from repro.suite import Group, RunParams, SuiteExecutor
from repro.suite.executor import _variant_compatible
from repro.suite.variants import get_variant


@pytest.fixture(scope="module")
def stream_run():
    params = RunParams(
        problem_size="32M",
        variants=("RAJA_Seq", "RAJA_CUDA", "RAJA_HIP"),
        groups=(Group.STREAM,),
    )
    return SuiteExecutor(params).run()


class TestCompatibility:
    def test_cpu_machines_run_seq_and_openmp(self):
        assert _variant_compatible(get_variant("RAJA_Seq"), SPR_DDR)
        assert _variant_compatible(get_variant("Base_OpenMP"), SPR_DDR)
        assert not _variant_compatible(get_variant("RAJA_CUDA"), SPR_DDR)

    def test_cuda_only_on_nvidia(self):
        assert _variant_compatible(get_variant("RAJA_CUDA"), P9_V100)
        assert not _variant_compatible(get_variant("RAJA_CUDA"), EPYC_MI250X)

    def test_hip_only_on_amd(self):
        assert _variant_compatible(get_variant("RAJA_HIP"), EPYC_MI250X)
        assert not _variant_compatible(get_variant("RAJA_HIP"), P9_V100)

    def test_sycl_runs_on_both_gpus(self):
        assert _variant_compatible(get_variant("RAJA_SYCL"), P9_V100)
        assert _variant_compatible(get_variant("RAJA_SYCL"), EPYC_MI250X)


class TestRun:
    def test_one_profile_per_compatible_combo(self, stream_run):
        # RAJA_Seq on 2 CPUs + RAJA_CUDA on V100 + RAJA_HIP on MI250X.
        assert len(stream_run.profiles) == 4

    def test_profile_globals_carry_metadata(self, stream_run):
        for profile in stream_run.profiles:
            for key in ("variant", "machine", "problem_size", "mpi_ranks", "tuning"):
                assert key in profile.globals

    def test_region_tree_structure(self, stream_run):
        profile = stream_run.profiles[0]
        names = profile.region_names()
        assert names[0] == "RAJAPerf"
        assert "Stream" in names and "Stream_TRIAD" in names

    def test_cpu_profiles_carry_topdown_counters(self, stream_run):
        cpu = next(p for p in stream_run.profiles if p.globals["machine"] == "SPR-DDR")
        node = cpu.find(("RAJAPerf", "Stream", "Stream_TRIAD"))
        assert "perf::slots" in node.metrics
        assert "perf::topdown-be-bound:memory" in node.metrics

    def test_gpu_profiles_carry_ncu_counters(self, stream_run):
        gpu = next(p for p in stream_run.profiles if p.globals["machine"] == "P9-V100")
        node = gpu.find(("RAJAPerf", "Stream", "Stream_TRIAD"))
        assert "sm__sass_thread_inst_executed.sum" in node.metrics
        assert "time (gpu)" in node.metrics

    def test_analytic_metrics_attached(self, stream_run):
        node = stream_run.profiles[0].find(("RAJAPerf", "Stream", "Stream_TRIAD"))
        assert node.metrics["bytes_read"] == pytest.approx(16.0)
        assert node.metrics["flops_per_byte"] == pytest.approx(2.0 / 24.0)

    def test_gpu_tunings_produce_one_profile_each(self):
        params = RunParams(
            variants=("RAJA_CUDA",),
            machines=("P9-V100",),
            kernels=("Stream_TRIAD",),
            gpu_block_sizes=(128, 256, 512),
        )
        result = SuiteExecutor(params).run()
        tunings = sorted(p.globals["tuning"] for p in result.profiles)
        assert tunings == ["block_128", "block_256", "block_512"]

    def test_execute_mode_records_wall_time_and_checksum(self):
        params = RunParams(
            variants=("RAJA_Seq",),
            machines=("SPR-DDR",),
            kernels=("Basic_DAXPY",),
            execute=True,
            execution_size_cap=5_000,
        )
        result = SuiteExecutor(params).run()
        node = result.profiles[0].find(("RAJAPerf", "Basic", "Basic_DAXPY"))
        assert node.metrics["wall time (executed)"] > 0
        assert "checksum" in node.metrics

    def test_write_files(self, tmp_path):
        params = RunParams(
            variants=("RAJA_Seq",),
            machines=("SPR-DDR",),
            kernels=("Stream_TRIAD",),
            output_dir=str(tmp_path),
        )
        result = SuiteExecutor(params).run(write_files=True)
        assert len(result.cali_paths) == 1
        assert result.cali_paths[0].exists()

    def test_paper_configuration_is_table3(self):
        params = RunParams(kernels=("Stream_TRIAD",))
        result = SuiteExecutor(params).run_paper_configuration()
        combos = {(p.globals["machine"], p.globals["variant"]) for p in result.profiles}
        assert combos == {
            ("SPR-DDR", "RAJA_Seq"),
            ("SPR-HBM", "RAJA_Seq"),
            ("P9-V100", "RAJA_CUDA"),
            ("EPYC-MI250X", "RAJA_HIP"),
        }

    def test_reps_scale_recorded_time(self):
        base = RunParams(variants=("RAJA_Seq",), machines=("SPR-DDR",),
                         kernels=("Stream_TRIAD",), reps=1)
        many = RunParams(variants=("RAJA_Seq",), machines=("SPR-DDR",),
                         kernels=("Stream_TRIAD",), reps=10)
        t1 = (
            SuiteExecutor(base).run().profiles[0]
            .find(("RAJAPerf", "Stream", "Stream_TRIAD")).metrics["Avg time/rank"]
        )
        t10 = (
            SuiteExecutor(many).run().profiles[0]
            .find(("RAJAPerf", "Stream", "Stream_TRIAD")).metrics["Avg time/rank"]
        )
        assert t10 == pytest.approx(10 * t1, rel=1e-9)
