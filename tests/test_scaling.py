"""Scalability analysis (repro.analysis.scaling)."""

import pytest

from repro.analysis.scaling import (
    render_curve,
    scaled_machine,
    strong_scaling,
    weak_scaling,
)
from repro.machines.registry import P9_V100, SPR_DDR
from repro.suite.registry import get_kernel_class, make_kernel


class TestScaledMachine:
    def test_resources_scale(self):
        half = scaled_machine(SPR_DDR, 56)
        assert half.cpu.cores_per_node == 56
        assert half.peak_tflops_node == pytest.approx(SPR_DDR.peak_tflops_node / 2)
        # Bandwidth saturates at half the cores: 56 cores still see full BW.
        assert half.peak_membw_tb_node == pytest.approx(SPR_DDR.peak_membw_tb_node)

    def test_quarter_cores_get_half_bandwidth(self):
        quarter = scaled_machine(SPR_DDR, 28)
        assert quarter.peak_membw_tb_node == pytest.approx(
            SPR_DDR.peak_membw_tb_node / 2
        )

    def test_bounds(self):
        with pytest.raises(ValueError):
            scaled_machine(SPR_DDR, 0)
        with pytest.raises(ValueError):
            scaled_machine(SPR_DDR, 113)
        with pytest.raises(ValueError):
            scaled_machine(P9_V100, 4)


class TestStrongScaling:
    def test_memory_bound_kernel_saturates(self):
        curve = strong_scaling(make_kernel("Stream_TRIAD", 32_000_000), SPR_DDR)
        # Perfect scaling up to ~half the node, then bandwidth-limited.
        assert curve.points[0].efficiency == pytest.approx(1.0)
        assert curve.points[-1].efficiency < 0.7
        assert curve.saturation_cores(0.7) == 112

    def test_compute_bound_kernel_scales_linearly(self):
        curve = strong_scaling(make_kernel("Basic_TRAP_INT", 32_000_000), SPR_DDR)
        assert all(p.efficiency > 0.95 for p in curve.points)

    def test_times_monotone_nonincreasing(self):
        curve = strong_scaling(make_kernel("Basic_DAXPY", 32_000_000), SPR_DDR)
        times = [p.time_seconds for p in curve.points]
        assert all(b <= a * 1.0001 for a, b in zip(times, times[1:]))

    def test_core_counts_capped_to_machine(self):
        curve = strong_scaling(
            make_kernel("Stream_ADD", 1_000_000), SPR_DDR,
            core_counts=(1, 64, 500),
        )
        assert [p.cores for p in curve.points] == [1, 64]


class TestWeakScaling:
    def test_compute_bound_is_flat(self):
        curve = weak_scaling(get_kernel_class("Basic_TRAP_INT"), SPR_DDR)
        assert curve.mode == "weak"
        assert all(p.efficiency > 0.95 for p in curve.points)

    def test_memory_bound_degrades_past_bw_saturation(self):
        curve = weak_scaling(get_kernel_class("Stream_TRIAD"), SPR_DDR)
        assert curve.points[-1].efficiency < curve.points[0].efficiency


class TestRendering:
    def test_render(self):
        curve = strong_scaling(make_kernel("Stream_TRIAD", 1_000_000), SPR_DDR)
        text = render_curve(curve)
        assert "strong scaling of Stream_TRIAD" in text
        assert "cores" in text and "efficiency" in text
