"""Supervised multi-process campaign execution.

A campaign under ``--workers N`` must survive process-level failure:
workers that crash (``os._exit``), workers that wedge (heartbeats stop),
and a SIGINT that arrives mid-sweep. One lost worker costs one cell
attempt — never the campaign.
"""

import json
import os
import signal

import pytest

from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.suite import MANIFEST_NAME, RunParams, SuiteExecutor
from repro.suite.heartbeat import HeartbeatMonitor
from repro.suite.manifest import CampaignManifest
from repro.suite.supervisor import CampaignSupervisor


def _params(tmp_path, **overrides):
    defaults = dict(
        machines=("SPR-DDR",),
        variants=("Base_Seq", "RAJA_Seq"),
        kernels=("Basic_DAXPY",),
        trials=2,
        output_dir=str(tmp_path),
        workers=2,
        heartbeat_timeout=10.0,
        max_attempts=3,
        retry_base_delay=0.01,
        retry_jitter=0.0,
    )
    defaults.update(overrides)
    return RunParams(**defaults)


def _manifest_cells(tmp_path):
    return json.loads((tmp_path / MANIFEST_NAME).read_text())["cells"]


def test_parallel_campaign_completes(tmp_path):
    params = _params(tmp_path)
    result = SuiteExecutor(params).run(write_files=True)
    assert result.report.cell_counts() == {"ok": 4}
    assert len(result.profiles) == 4
    assert len(result.cali_paths) == 4
    assert result.report.clean
    cells = _manifest_cells(tmp_path)
    assert len(cells) == 4
    assert all(entry["status"] == "ok" for entry in cells.values())
    # the advisory lock is released on exit
    assert not (tmp_path / "campaign_manifest.lock").exists()


def test_parallel_matches_serial_cell_set(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = SuiteExecutor(_params(serial_dir, workers=1)).run(write_files=True)
    parallel = SuiteExecutor(_params(parallel_dir)).run(write_files=True)
    assert set(serial.report.cells) == set(parallel.report.cells)
    assert sorted(p.name for p in serial.cali_paths) == sorted(
        p.name for p in parallel.cali_paths
    )


def test_worker_crash_costs_one_attempt_not_the_campaign(tmp_path):
    """Acceptance: a worker_crash on one cell of a --workers 4 campaign
    completes with the crashed cell retried and the manifest all ok."""
    params = _params(tmp_path, workers=4)
    injector = FaultInjector(
        [
            FaultSpec(
                kind=FaultKind.WORKER_CRASH,
                variant="RAJA_Seq",
                trial=1,
                attempt=1,
            )
        ]
    )
    result = SuiteExecutor(params, injector=injector).run(write_files=True)
    assert result.report.cell_counts() == {"ok": 4}
    assert result.report.clean
    crash_records = [
        r for r in result.report.records if r.kernel == "<worker crash>"
    ]
    assert len(crash_records) == 1
    assert crash_records[0].status == "retried"
    assert crash_records[0].cell == "SPR-DDR|RAJA_Seq|default|trial1"
    assert "exit code 73" in crash_records[0].error
    cells = _manifest_cells(tmp_path)
    assert all(entry["status"] == "ok" for entry in cells.values())


def test_worker_crash_is_deterministic(tmp_path):
    """Same specs, same campaign -> same recovery story, twice."""
    stories = []
    for sub in ("a", "b"):
        injector = FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.WORKER_CRASH,
                    variant="RAJA_Seq",
                    trial=0,
                    attempt=1,
                )
            ]
        )
        result = SuiteExecutor(
            _params(tmp_path / sub), injector=injector
        ).run(write_files=True)
        stories.append(
            (
                result.report.cell_counts(),
                sorted(
                    (r.cell, r.status)
                    for r in result.report.records
                    if r.kernel == "<worker crash>"
                ),
            )
        )
    assert stories[0] == stories[1] == (
        {"ok": 4},
        [("SPR-DDR|RAJA_Seq|default|trial0", "retried")],
    )


def test_worker_crash_budget_exhaustion_fails_only_that_cell(tmp_path):
    """A cell that crashes its worker on every attempt is marked failed;
    the other cells still complete."""
    params = _params(tmp_path, max_attempts=2)
    injector = FaultInjector(
        [
            FaultSpec(
                kind=FaultKind.WORKER_CRASH,
                variant="RAJA_Seq",
                trial=1,
                attempt="*",
                times=None,
            )
        ]
    )
    result = SuiteExecutor(params, injector=injector).run(write_files=True)
    assert result.report.cell_counts() == {"ok": 3, "failed": 1}
    assert result.report.cells["SPR-DDR|RAJA_Seq|default|trial1"] == "failed"
    final = [
        r
        for r in result.report.records
        if r.kernel == "<worker crash>" and r.status == "failed"
    ]
    assert len(final) == 1
    assert final[0].attempts == 2
    cells = _manifest_cells(tmp_path)
    assert cells["SPR-DDR|RAJA_Seq|default|trial1"]["status"] == "failed"


def test_stale_heartbeat_worker_is_killed_and_cell_requeued(tmp_path):
    params = _params(tmp_path, heartbeat_timeout=0.5)
    injector = FaultInjector(
        [
            FaultSpec(
                kind=FaultKind.STALE_HEARTBEAT,
                variant="Base_Seq",
                trial=0,
                attempt=1,
                hang_seconds=60.0,
            )
        ]
    )
    result = SuiteExecutor(params, injector=injector).run(write_files=True)
    assert result.report.cell_counts() == {"ok": 4}
    stale = [r for r in result.report.records if r.kernel == "<worker crash>"]
    assert len(stale) == 1
    assert stale[0].status == "retried"
    assert "heartbeat" in stale[0].error


def test_sigint_mid_campaign_leaves_loadable_manifest_and_resumes(tmp_path):
    """Satellite: SIGINT drains in-flight cells, flushes the manifest,
    and --resume completes only the missing cells."""
    params = _params(tmp_path)
    executor = SuiteExecutor(params)
    fired = []

    def interrupt_once(key):
        if not fired:
            fired.append(key)
            signal.raise_signal(signal.SIGINT)

    supervisor = CampaignSupervisor(params, on_cell_complete=interrupt_once)
    result = supervisor.run(executor.build_cells(), write_files=True)
    assert result.report.interrupted
    assert "re-invoke with --resume" in result.report.summary()
    completed = set(result.report.cells)
    assert fired and completed  # at least the interrupting cell landed
    assert len(completed) < 4  # ... but not the whole campaign

    manifest = CampaignManifest.load_or_create(tmp_path, params.fingerprint())
    assert set(manifest.cells) == completed
    assert all(entry["status"] == "ok" for entry in manifest.cells.values())

    resumed = SuiteExecutor(_params(tmp_path, workers=1, resume=True)).run(
        write_files=True
    )
    counts = resumed.report.cell_counts()
    assert counts["skipped"] == len(completed)
    assert counts["ok"] == 4 - len(completed)
    assert set(resumed.report.cells) | completed == {
        f"SPR-DDR|{v}|default|trial{t}"
        for v in ("Base_Seq", "RAJA_Seq")
        for t in (0, 1)
    }
    assert all(
        entry["status"] == "ok" for entry in _manifest_cells(tmp_path).values()
    )


def test_parallel_resume_skips_completed_cells(tmp_path):
    first = SuiteExecutor(_params(tmp_path)).run(write_files=True)
    assert first.report.cell_counts() == {"ok": 4}
    again = SuiteExecutor(_params(tmp_path, resume=True)).run(write_files=True)
    assert again.report.cell_counts() == {"skipped": 4}
    assert not again.report.records  # nothing re-ran


def test_fail_fast_incompatible_with_workers():
    with pytest.raises(ValueError, match="fail_fast"):
        RunParams(fail_fast=True, workers=2)


def test_supervisor_requires_multiple_workers(tmp_path):
    with pytest.raises(ValueError, match="workers >= 2"):
        CampaignSupervisor(_params(tmp_path, workers=1))


def test_run_params_validate_supervision_knobs():
    with pytest.raises(ValueError, match="workers"):
        RunParams(workers=0)
    with pytest.raises(ValueError, match="heartbeat"):
        RunParams(heartbeat_timeout=0.0)
    with pytest.raises(ValueError, match="heartbeat"):
        RunParams(heartbeat_interval=-1.0)


def test_workers_do_not_change_campaign_fingerprint(tmp_path):
    """A parallel campaign may resume a serial one and vice versa."""
    serial = _params(tmp_path, workers=1).fingerprint()
    parallel = _params(tmp_path, workers=8, heartbeat_timeout=1.0).fingerprint()
    assert serial == parallel


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_heartbeat_monitor_staleness_uses_supervisor_clock():
    clock = _FakeClock()
    monitor = HeartbeatMonitor(timeout=5.0, clock=clock)
    monitor.register(0)
    monitor.register(1)
    clock.t = 4.0
    monitor.beat(1)
    assert not monitor.is_stale(0)
    clock.t = 5.5
    assert monitor.is_stale(0)
    assert not monitor.is_stale(1)
    assert monitor.stale_workers() == [0]
    monitor.forget(0)
    assert monitor.stale_workers() == []
    assert not monitor.is_stale(0)  # forgotten workers are not stale
