"""The column-store dataframe (repro.dataframe.Frame)."""

import numpy as np
import pytest

from repro.dataframe import Frame


@pytest.fixture
def frame():
    return Frame(
        {
            "kernel": ["TRIAD", "DAXPY", "SCAN", "DOT"],
            "group": ["Stream", "Basic", "Algorithm", "Stream"],
            "time": [1.0, 2.0, 3.0, 4.0],
        }
    )


class TestConstruction:
    def test_columns_and_len(self, frame):
        assert frame.columns == ["kernel", "group", "time"]
        assert len(frame) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Frame({"a": [1, 2], "b": [1, 2, 3]})

    def test_scalar_broadcast(self):
        f = Frame({"a": [1, 2, 3], "b": 7})
        assert list(f["b"]) == [7, 7, 7]

    def test_from_records_union_of_keys(self):
        f = Frame.from_records([{"a": 1}, {"a": 2, "b": "x"}])
        assert f.columns == ["a", "b"]
        assert f["b"][0] is None

    def test_strings_become_object_dtype(self, frame):
        assert frame["kernel"].dtype == object

    def test_2d_column_rejected(self):
        with pytest.raises(ValueError):
            Frame({"a": np.zeros((2, 2))})

    def test_empty_frame(self):
        f = Frame()
        assert len(f) == 0 and f.columns == []


class TestSelection:
    def test_getitem_missing(self, frame):
        with pytest.raises(KeyError):
            frame["nope"]

    def test_select_subset(self, frame):
        sub = frame.select(["time", "kernel"])
        assert sub.columns == ["time", "kernel"]

    def test_take_indices(self, frame):
        sub = frame.take([2, 0])
        assert list(sub["kernel"]) == ["SCAN", "TRIAD"]

    def test_filter_mask(self, frame):
        sub = frame.filter(frame["time"] > 2.0)
        assert len(sub) == 2

    def test_filter_callable(self, frame):
        sub = frame.filter(lambda row: row["group"] == "Stream")
        assert list(sub["kernel"]) == ["TRIAD", "DOT"]

    def test_filter_bad_mask_length(self, frame):
        with pytest.raises(ValueError):
            frame.filter(np.array([True]))

    def test_row_access(self, frame):
        assert frame.row(1)["kernel"] == "DAXPY"
        with pytest.raises(IndexError):
            frame.row(99)


class TestMutation:
    def test_with_column_adds(self, frame):
        f2 = frame.with_column("flops", [1, 2, 3, 4])
        assert "flops" in f2 and "flops" not in frame

    def test_with_column_replaces(self, frame):
        f2 = frame.with_column("time", [9.0, 9.0, 9.0, 9.0])
        assert f2["time"][0] == 9.0 and frame["time"][0] == 1.0

    def test_with_column_length_checked(self, frame):
        with pytest.raises(ValueError):
            frame.with_column("bad", [1, 2])

    def test_drop(self, frame):
        f2 = frame.drop("group")
        assert f2.columns == ["kernel", "time"]
        with pytest.raises(KeyError):
            frame.drop("nope")

    def test_rename(self, frame):
        f2 = frame.rename({"time": "seconds"})
        assert "seconds" in f2 and "time" not in f2

    def test_rename_collision_rejected(self, frame):
        with pytest.raises(ValueError):
            frame.rename({"time": "group"})


class TestSortJoinStack:
    def test_sort_by_numeric(self, frame):
        out = frame.sort_by("time", descending=True)
        assert list(out["time"]) == [4.0, 3.0, 2.0, 1.0]

    def test_sort_by_two_keys_stable(self, frame):
        out = frame.sort_by("group", "kernel")
        assert list(out["group"]) == ["Algorithm", "Basic", "Stream", "Stream"]
        assert list(out["kernel"])[2:] == ["DOT", "TRIAD"]

    def test_vstack(self, frame):
        both = frame.vstack(frame)
        assert len(both) == 8

    def test_vstack_column_mismatch(self, frame):
        with pytest.raises(ValueError):
            frame.vstack(Frame({"other": [1]}))

    def test_inner_join(self, frame):
        meta = Frame({"group": ["Stream", "Basic"], "origin": ["McCalpin", "LLNL"]})
        joined = frame.join(meta, on="group")
        assert len(joined) == 3
        assert set(joined["origin"]) == {"McCalpin", "LLNL"}

    def test_left_join_fills_none(self, frame):
        meta = Frame({"group": ["Stream"], "origin": ["McCalpin"]})
        joined = frame.join(meta, on="group", how="left")
        assert len(joined) == 4
        assert sum(v is None for v in joined["origin"]) == 2

    def test_join_bad_how(self, frame):
        with pytest.raises(ValueError):
            frame.join(frame, on="group", how="outer")


class TestNumeric:
    def test_numeric_columns(self, frame):
        assert frame.numeric_columns() == ["time"]

    def test_to_matrix(self, frame):
        mat = frame.to_matrix(["time"])
        assert mat.shape == (4, 1)

    def test_equality(self, frame):
        assert frame == frame.copy()
        assert frame != frame.drop("time")
