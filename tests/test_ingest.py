"""Thicket ingest: parallel equivalence, the ingest cache, shared refs."""

from __future__ import annotations

import warnings

import pytest

from repro.caliper import calipack
from repro.caliper.cali import write_cali
from repro.caliper.records import CaliProfile, RegionRecord
from repro.suite.executor import SuiteExecutor
from repro.suite.fsck import fsck_directory
from repro.suite.refchecksums import MISSING, ReferenceChecksumStore
from repro.suite.registry import get_kernel_class
from repro.suite.run_params import RunParams
from repro.thicket import Thicket
from repro.thicket import ingest
from repro.thicket.ingest_cache import CACHE_DIR_NAME
from repro.thicket.thicket import ProfileLoadWarning


def make_profile(i: int) -> CaliProfile:
    profile = CaliProfile(
        globals={"machine": f"m{i % 2}", "variant": f"v{i}", "trial": 0}
    )
    root = RegionRecord(name="RAJAPerf", path=("RAJAPerf",), metrics={})
    kids = []
    for k in range(3):
        kids.append(
            RegionRecord(
                name=f"K{k}",
                path=("RAJAPerf", f"K{k}"),
                metrics={"time": float(i * 10 + k), "reps": float(k)},
            )
        )
    root.children = kids
    profile.roots = [root]
    return profile


@pytest.fixture
def loose_files(tmp_path):
    files = []
    for i in range(8):
        files.append(
            str(write_cali(make_profile(i), tmp_path / f"p{i}.cali"))
        )
    return files


def packed_params(tmp_path, **overrides) -> RunParams:
    defaults = dict(
        problem_size=1000,
        kernels=("Basic_DAXPY",),
        variants=("Base_Seq", "RAJA_Seq"),
        machines=("SPR-DDR",),
        pack=True,
        output_dir=str(tmp_path),
    )
    defaults.update(overrides)
    return RunParams(**defaults)


def counting_parser(monkeypatch):
    """Wrap ``ingest.parse_cali_payload`` so each parse is recorded."""
    calls: list[str] = []
    real = ingest.parse_cali_payload

    def counted(raw, source):
        calls.append(str(source))
        return real(raw, source)

    monkeypatch.setattr(ingest, "parse_cali_payload", counted)
    return calls


# -------------------------------------------------------------- equivalence
def test_parallel_ingest_equals_serial(loose_files):
    serial = Thicket.from_caliperreader(loose_files)
    parallel = Thicket.from_caliperreader(loose_files, workers=3)
    assert serial.dataframe.equals(parallel.dataframe)
    assert serial.metadata.equals(parallel.metadata)
    assert list(serial.dataframe["profile"]) == list(
        parallel.dataframe["profile"]
    )


def test_archive_ingest_equals_file_ingest(tmp_path, loose_files):
    packed = tmp_path / "packed"
    packed.mkdir()
    for path in loose_files:
        data = open(path, "rb").read()
        (packed / path.rsplit("/", 1)[1]).write_bytes(data)
    archive, _ = calipack.pack_directory(packed)

    from_files = Thicket.from_caliperreader(loose_files)
    from_archive = Thicket.from_caliperreader(str(archive))
    from_archive_parallel = Thicket.from_caliperreader(str(archive), workers=2)
    assert from_archive.dataframe.equals(from_files.dataframe)
    assert from_archive.metadata.equals(from_files.metadata)
    assert from_archive_parallel.dataframe.equals(from_files.dataframe)


def test_member_ref_selects_single_entry(tmp_path, loose_files):
    packed = tmp_path / "packed"
    packed.mkdir()
    for path in loose_files[:2]:
        (packed / path.rsplit("/", 1)[1]).write_bytes(open(path, "rb").read())
    archive, entries = calipack.pack_directory(packed)
    one = Thicket.from_caliperreader(
        calipack.member_ref(archive, entries[0].name)
    )
    assert one.metadata.nrows == 1


def test_on_error_warn_composes_survivors(tmp_path, loose_files):
    packed = tmp_path / "packed"
    packed.mkdir()
    for path in loose_files:
        (packed / path.rsplit("/", 1)[1]).write_bytes(open(path, "rb").read())
    archive, _ = calipack.pack_directory(packed)
    victim = calipack.load_index(archive)[2]
    raw = bytearray(archive.read_bytes())
    raw[victim.offset + victim.length // 2] ^= 0xFF
    archive.write_bytes(bytes(raw))

    with pytest.raises(ValueError):
        Thicket.from_caliperreader(str(archive))
    with pytest.warns(ProfileLoadWarning, match=victim.name):
        thicket = Thicket.from_caliperreader(str(archive), on_error="warn")
    assert thicket.metadata.nrows == len(loose_files) - 1


# -------------------------------------------------------------- ingest cache
def test_cache_hit_skips_every_parse(tmp_path, loose_files, monkeypatch):
    packed = tmp_path / "packed"
    packed.mkdir()
    for path in loose_files:
        (packed / path.rsplit("/", 1)[1]).write_bytes(open(path, "rb").read())
    archive, _ = calipack.pack_directory(packed)
    cache_dir = packed / CACHE_DIR_NAME

    calls = counting_parser(monkeypatch)
    cold = Thicket.from_caliperreader(str(archive), cache=cache_dir)
    assert len(calls) == len(loose_files)

    calls.clear()
    warm = Thicket.from_caliperreader(str(archive), cache=cache_dir)
    assert calls == []  # not a single payload parsed
    assert warm.dataframe.equals(cold.dataframe)
    assert warm.metadata.equals(cold.metadata)


def test_cache_invalidated_after_fsck_and_resume(tmp_path, monkeypatch):
    """Healing re-runs a deterministic cell, and the canonical archive
    rebuild makes the result a pure function of the entry set — so the
    healed archive converges byte-identical to the pristine one and the
    warm cache legitimately *hits*. A genuine content change (replacing
    an entry with different metrics) must still miss."""
    SuiteExecutor(packed_params(tmp_path)).run(write_files=True)
    archive = tmp_path / calipack.ARCHIVE_NAME
    cache_dir = tmp_path / CACHE_DIR_NAME
    pristine = archive.read_bytes()

    golden = Thicket.from_caliperreader(str(archive), cache=cache_dir)

    victim = calipack.load_index(archive)[0]
    raw = bytearray(archive.read_bytes())
    raw[victim.offset + victim.length // 2] ^= 0xFF
    archive.write_bytes(bytes(raw))
    assert not fsck_directory(tmp_path).clean
    healed = SuiteExecutor(
        packed_params(tmp_path, resume=True)
    ).run(write_files=True)
    assert healed.report.clean
    assert archive.read_bytes() == pristine  # deterministic heal converges

    calls = counting_parser(monkeypatch)
    rebuilt = Thicket.from_caliperreader(str(archive), cache=cache_dir)
    assert calls == []  # identical content -> a warm hit is correct
    assert rebuilt.metadata.nrows == 2
    assert rebuilt.dataframe.equals(golden.dataframe)

    with calipack.CalipackWriter(archive) as writer:
        writer.append_profile(victim.name, make_profile(99))
    calls.clear()
    Thicket.from_caliperreader(str(archive), cache=cache_dir)
    assert calls  # content CRC changed -> cache miss -> real parses

    calls.clear()
    Thicket.from_caliperreader(str(archive), cache=cache_dir)
    assert calls == []  # and the changed content is cached again


def test_cache_never_used_for_in_memory_profiles(tmp_path, monkeypatch):
    profiles = [make_profile(i) for i in range(3)]
    cache_dir = tmp_path / CACHE_DIR_NAME
    t0 = Thicket.from_caliperreader(profiles, cache=cache_dir)
    assert t0.metadata.nrows == 3
    assert not cache_dir.exists()  # no content identity -> no cache entry


# ------------------------------------------------- shared reference sidecar
def test_reference_checksum_store_round_trip(tmp_path):
    store = ReferenceChecksumStore(tmp_path)
    assert store.get("Basic_DAXPY", 1000) is MISSING
    store.put("Basic_DAXPY", 1000, 1.25)
    store.put("Basic_REDUCE3_INT", 1000, None)  # no Base_Seq: stored None
    assert store.get("Basic_DAXPY", 1000) == 1.25
    assert store.get("Basic_REDUCE3_INT", 1000) is None
    assert store.get("Basic_DAXPY", 2000) is MISSING
    # a second handle merges instead of clobbering
    other = ReferenceChecksumStore(tmp_path)
    other.put("Stream_TRIAD", 1000, 2.5)
    assert other.get("Basic_DAXPY", 1000) == 1.25
    assert other.get("Stream_TRIAD", 1000) == 2.5


def test_executor_prefers_published_reference(tmp_path):
    params = packed_params(tmp_path, execute=True, pack=False)
    executor = SuiteExecutor(params)
    store = ReferenceChecksumStore(tmp_path)
    sentinel = 123.456
    store.put("Basic_DAXPY", params.execution_size, sentinel)
    executor.refstore = store
    cls = get_kernel_class("Basic_DAXPY")
    assert executor._reference_checksum(cls) == sentinel


def test_executed_campaign_publishes_references(tmp_path):
    params = packed_params(tmp_path, execute=True, pack=False)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = SuiteExecutor(params).run(write_files=True)
    assert result.report.clean
    store = ReferenceChecksumStore(tmp_path)
    assert store.get("Basic_DAXPY", params.execution_size) is not MISSING
