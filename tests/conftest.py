"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines.registry import EPYC_MI250X, P9_V100, SPR_DDR, SPR_HBM
from repro.suite.registry import all_kernel_classes, load_all_kernels

#: Problem size for tests that really execute kernels.
SMALL = 2_000
#: Problem size for model-space tests (no execution).
PAPER = 32_000_000


@pytest.fixture(scope="session")
def kernel_classes():
    load_all_kernels()
    return all_kernel_classes()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=["SPR-DDR", "SPR-HBM", "P9-V100", "EPYC-MI250X"])
def machine(request):
    return {
        "SPR-DDR": SPR_DDR,
        "SPR-HBM": SPR_HBM,
        "P9-V100": P9_V100,
        "EPYC-MI250X": EPYC_MI250X,
    }[request.param]


@pytest.fixture(params=["SPR-DDR", "SPR-HBM"])
def cpu_machine(request):
    return {"SPR-DDR": SPR_DDR, "SPR-HBM": SPR_HBM}[request.param]


@pytest.fixture(params=["P9-V100", "EPYC-MI250X"])
def gpu_machine(request):
    return {"P9-V100": P9_V100, "EPYC-MI250X": EPYC_MI250X}[request.param]


def kernel_ids(classes) -> list[str]:
    return [cls.class_full_name() for cls in classes]
