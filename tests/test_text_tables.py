"""Text table / bar chart rendering (repro.util.tables)."""

import pytest

from repro.util.tables import TextTable, render_barchart


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["a", "b"], title="T")
        table.add_row(1, "x")
        table.add_row(22, "yy")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text and "yy" in text

    def test_alignment(self):
        table = TextTable(["col"])
        table.add_row("short")
        table.add_row("a much longer cell")
        lines = table.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to the same width

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_float_formatting(self):
        table = TextTable(["v"])
        table.add_row(3.14159265)
        assert "3.142" in table.render()

    def test_len_counts_rows(self):
        table = TextTable(["v"])
        assert len(table) == 0
        table.add_rows([(1,), (2,)])
        assert len(table) == 2

    def test_csv_escaping(self):
        table = TextTable(["v"])
        table.add_row('he said "hi", twice')
        csv_text = table.to_csv()
        assert '"he said ""hi"", twice"' in csv_text


class TestBarchart:
    def test_values_appear(self):
        text = render_barchart(["x", "y"], [1.0, 2.0])
        assert "x" in text and "y" in text and "2" in text

    def test_reference_marker(self):
        text = render_barchart(["k"], [0.5], max_value=1.0, reference=1.0)
        assert "|" in text

    def test_capped_values_flagged(self):
        text = render_barchart(["k"], [100.0], max_value=10.0)
        assert "+" in text  # over-cap marker

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_barchart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "empty" in render_barchart([], [])
