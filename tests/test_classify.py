"""classify_kernel: the porting-decision API."""

import numpy as np
import pytest

from repro.analysis import classify_kernel, run_similarity_analysis


@pytest.fixture(scope="module")
def result():
    return run_similarity_analysis()


def test_suite_kernels_classify_into_their_own_cluster(result):
    """Feeding a member's own vector back must recover its cluster and
    itself as the nearest kernel."""
    for index in (0, 10, 30, 60):
        name = result.kernel_names[index]
        cluster, speedups, nearest = classify_kernel(result.vectors[index], result)
        assert nearest == name
        assert cluster == result.cluster_of(name)
        assert set(speedups) == {"SPR-HBM", "P9-V100", "EPYC-MI250X"}


def test_archetype_vectors_hit_expected_clusters(result):
    mem_cluster = result.most_memory_bound_cluster()
    cluster, speedups, _ = classify_kernel([0.01, 0.0, 0.06, 0.05, 0.88], result)
    assert cluster == mem_cluster
    assert speedups["EPYC-MI250X"] > 15


def test_validation(result):
    with pytest.raises(ValueError):
        classify_kernel([0.5, 0.5], result)
    with pytest.raises(ValueError):
        classify_kernel([0.9, 0.9, 0.9, 0.9, 0.9], result)
