"""Property-based tests of the performance model (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machines.registry import EPYC_MI250X, P9_V100, SPR_DDR, SPR_HBM
from repro.perfmodel import CpuTimeModel, GpuTimeModel, KernelTraits, WorkProfile
from repro.perfmodel.timing import predict_time

MACHINES = (SPR_DDR, SPR_HBM, P9_V100, EPYC_MI250X)

works = st.builds(
    WorkProfile,
    iterations=st.floats(1, 1e8),
    bytes_read=st.floats(0, 1e10),
    bytes_written=st.floats(0, 1e10),
    flops=st.floats(0, 1e11),
)

traits_strategy = st.builds(
    KernelTraits,
    streaming_eff=st.floats(0.05, 1.0),
    cpu_compute_eff=st.floats(0.01, 1.0),
    gpu_compute_eff=st.floats(0.01, 2.0),
    simd_eff=st.floats(0.0, 1.0),
    frontend_factor=st.floats(0.0, 1.0),
    cache_resident=st.floats(0.0, 1.0),
    gpu_cache_resident=st.floats(0.0, 1.0),
    gpu_serial_fraction=st.floats(0.0, 0.5),
)


@given(works, traits_strategy, st.sampled_from(range(4)))
@settings(max_examples=80, deadline=None)
def test_predicted_time_positive_and_finite(work, traits, machine_index):
    result = predict_time(work, traits, MACHINES[machine_index])
    assert np.isfinite(result.total_seconds)
    assert result.total_seconds > 0


@given(works, traits_strategy)
@settings(max_examples=60, deadline=None)
def test_cpu_tma_is_a_distribution(work, traits):
    tma = CpuTimeModel(SPR_DDR).predict(work, traits).tma()
    values = np.array(list(tma.values()))
    assert np.all(values >= -1e-12)
    assert values.sum() == pytest.approx(1.0)


@given(works, traits_strategy, st.floats(1.1, 10.0))
@settings(max_examples=60, deadline=None)
def test_cpu_time_monotone_in_bytes(work, traits, factor):
    assume(work.bytes_total > 0)
    from dataclasses import replace

    bigger = replace(
        work,
        bytes_read=work.bytes_read * factor,
        bytes_written=work.bytes_written * factor,
        instructions=work.instructions,
    )
    model = CpuTimeModel(SPR_DDR)
    assert model.predict(bigger, traits).total >= model.predict(work, traits).total - 1e-15


@given(works, traits_strategy, st.floats(1.1, 10.0))
@settings(max_examples=60, deadline=None)
def test_gpu_time_monotone_in_flops(work, traits, factor):
    assume(work.flops > 0)
    from dataclasses import replace

    bigger = replace(work, flops=work.flops * factor, instructions=work.instructions)
    model = GpuTimeModel(P9_V100)
    assert model.predict(bigger, traits).total >= model.predict(work, traits).total - 1e-15


@given(works, traits_strategy)
@settings(max_examples=60, deadline=None)
def test_streaming_efficiency_never_helps_to_lower(work, traits):
    """Lower streaming efficiency can only slow a kernel down."""
    assume(work.bytes_total > 0)
    from dataclasses import replace

    slow_traits = replace(traits, streaming_eff=traits.streaming_eff / 2)
    for machine in MACHINES:
        fast = predict_time(work, traits, machine).total_seconds
        slow = predict_time(work, slow_traits, machine).total_seconds
        assert slow >= fast - 1e-15


@given(works, traits_strategy)
@settings(max_examples=60, deadline=None)
def test_scaled_work_scales_linear_components(work, traits):
    """Doubling all work at most doubles the time (some components
    overlap) and never less than the original time."""
    double = work.scaled(2.0)
    for machine in (SPR_DDR, P9_V100):
        t1 = predict_time(work, traits, machine).total_seconds
        t2 = predict_time(double, traits, machine).total_seconds
        assert t1 - 1e-15 <= t2 <= 2.0 * t1 * (1 + 1e-9)


@given(works, traits_strategy)
@settings(max_examples=60, deadline=None)
def test_gpu_occupancy_derate_bounded(work, traits):
    """Tunings spread by at most ~2x: the occupancy derate is mild (the
    suite's observation that most kernels sit within ~20% across block
    sizes, with pathological tunings capped at ~2x)."""
    model = GpuTimeModel(EPYC_MI250X)
    times = [
        model.predict(work, traits, block_size=block).total
        for block in (32, 64, 128, 256, 512, 1024)
    ]
    assert max(times) <= 2.0 * min(times) * (1 + 1e-9)


@given(works)
@settings(max_examples=60, deadline=None)
def test_work_profile_per_iteration_consistency(work):
    per_iter = work.per_iteration()
    assert per_iter["bytes_read"] * work.iterations == pytest.approx(
        work.bytes_read, rel=1e-12, abs=1e-9
    )


@given(st.floats(1, 1e9), st.floats(0, 1e9), st.floats(0, 1e9))
@settings(max_examples=60, deadline=None)
def test_instruction_heuristic_positive(iters, bytes_read, flops):
    work = WorkProfile(iters, bytes_read, 0.0, flops)
    assert work.instructions >= 2.0 * iters  # at least loop control
