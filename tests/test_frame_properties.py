"""Property-based tests for the dataframe (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Frame, frame_from_csv, frame_from_json, frame_to_csv, frame_to_json

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8
)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


@st.composite
def frames(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return Frame(
        {
            "key": draw(st.lists(names, min_size=n, max_size=n)),
            "x": np.asarray(draw(st.lists(floats, min_size=n, max_size=n)), dtype=float),
            "i": np.asarray(
                draw(st.lists(st.integers(-1000, 1000), min_size=n, max_size=n)),
                dtype=np.int64,
            ),
        }
    )


@given(frames())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_identity(frame):
    assert frame_from_json(frame_to_json(frame)) == frame


@given(frames())
@settings(max_examples=40, deadline=None)
def test_csv_roundtrip_preserves_numeric(frame):
    loaded = frame_from_csv(frame_to_csv(frame))
    np.testing.assert_allclose(loaded["x"].astype(float), frame["x"], rtol=1e-6)
    assert list(loaded["i"]) == list(frame["i"])


@given(frames())
@settings(max_examples=40, deadline=None)
def test_sort_is_permutation_and_ordered(frame):
    out = frame.sort_by("i")
    assert sorted(out["i"]) == sorted(frame["i"])
    assert all(a <= b for a, b in zip(out["i"], out["i"][1:]))


@given(frames())
@settings(max_examples=40, deadline=None)
def test_groupby_sizes_partition_rows(frame):
    sizes = frame.groupby("key").size()
    assert int(np.sum(sizes["count"])) == len(frame)


@given(frames(), frames())
@settings(max_examples=30, deadline=None)
def test_inner_join_row_count_formula(left, right):
    """|A join B| = sum over keys of countA(k) * countB(k)."""
    joined = left.join(right.rename({"x": "x2", "i": "i2"}), on="key")
    from collections import Counter

    ca = Counter(left["key"])
    cb = Counter(right["key"])
    expected = sum(ca[k] * cb.get(k, 0) for k in ca)
    assert len(joined) == expected


@given(frames())
@settings(max_examples=40, deadline=None)
def test_filter_take_consistency(frame):
    mask = frame["i"] >= 0
    assert len(frame.filter(mask)) == int(mask.sum())
