"""Reporting drivers and the command-line interface."""

import pytest

from repro.cli.main import build_parser, main
from repro.reporting import (
    DESCRIPTIONS,
    EXPERIMENTS,
    run_all_experiments,
    run_experiment,
    table1,
    table2,
    table3,
    table4,
)


class TestTables:
    def test_table1_lists_all_kernels(self):
        text = table1()
        assert "TRIAD" in text and "EDGE3D" in text and "FLOYD_WARSHALL" in text
        assert "n^(3/2)" in text  # complexity column

    def test_table2_matches_paper_numbers(self):
        text = table2()
        assert "SPR-DDR" in text and "Tioga" in text
        assert "191.5" in text  # MI250X node TFLOPS

    def test_table3_row_count(self):
        assert len(table3().splitlines()) == 3 + 4  # title + header + sep + 4 rows

    def test_table4_metric_names(self):
        text = table4()
        assert "dram__sectors_read.sum" in text
        assert "thread-based" in text


class TestExperiments:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "T1", "T2", "T3", "T4",
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10",
        }
        assert set(DESCRIPTIONS) == set(EXPERIMENTS)

    def test_run_experiment_case_insensitive(self):
        assert "Table III" in run_experiment("t3")

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("F99")

    def test_fig2_hierarchy(self):
        assert "Backend Bound" in run_experiment("F2")

    def test_fig7_has_four_clusters(self):
        text = run_experiment("F7")
        assert "Cluster 3" in text and "Cluster 4" not in text

    def test_fig9_reference_lines(self):
        text = run_experiment("F9")
        assert "TRIAD" in text and "panel" in text

    def test_run_all_writes_files(self, tmp_path):
        results = run_all_experiments(output_dir=tmp_path)
        assert len(results) == 14
        assert (tmp_path / "f7.txt").exists()
        assert (tmp_path / "t1.txt").exists()


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["list", "kernels"])
        assert args.command == "list"

    def test_list_kernels(self, capsys):
        assert main(["list", "kernels"]) == 0
        out = capsys.readouterr().out
        assert "Stream_TRIAD" in out and "Comm_HALO_EXCHANGE" in out

    def test_list_machines(self, capsys):
        main(["list", "machines"])
        assert "Tioga" in capsys.readouterr().out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "T3"]) == 0
        assert "32000000" in capsys.readouterr().out

    def test_run_then_analyze(self, tmp_path, capsys):
        code = main([
            "run", "--paper", "--kernels", "Stream_TRIAD", "Basic_DAXPY",
            "--output-dir", str(tmp_path),
        ])
        assert code == 0
        files = sorted(str(p) for p in tmp_path.glob("*.cali"))
        assert len(files) == 4
        capsys.readouterr()
        assert main(["analyze", *files]) == 0
        out = capsys.readouterr().out
        assert "Stream_TRIAD" in out

    def test_run_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["run", "--variants", "RAJA_FORTRAN"])

    def test_analyze_tree(self, tmp_path, capsys):
        main(["run", "--machines", "SPR-DDR", "--variants", "RAJA_Seq",
              "--kernels", "Stream_TRIAD", "--output-dir", str(tmp_path)])
        files = [str(p) for p in tmp_path.glob("*.cali")]
        capsys.readouterr()
        main(["analyze", *files, "--tree"])
        out = capsys.readouterr().out
        assert "RAJAPerf" in out
