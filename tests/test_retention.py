"""Retention, compaction, watermarks, scrubbing — the disk-health rails.

Destruction must be as crash-safe as creation: a GC pass interrupted at
any byte leaves every job fully live or provably condemned (a sealed
tombstone), never half-deleted; compaction never changes what a reader
resolves; the watermarks turn disk exhaustion into explicit
backpressure before ENOSPC can tear a durable write.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.caliper.calipack import (
    ARCHIVE_NAME,
    CalipackWriter,
    load_entries,
    read_entry_bytes,
    scan_frames,
)
from repro.caliper.cali import footer_line
from repro.chaos import invariants
from repro.chaos.points import REGISTERED_POINTS
from repro.cli import exitcodes
from repro.cli.main import main
from repro.service import admission
from repro.service.admission import AdmissionPolicy
from repro.service.jobstore import (
    STATE_CANCELLED,
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUCCEEDED,
    JobStore,
    TombstoneDamaged,
    parse_tombstone_text,
    seal_tombstone,
)
from repro.service.retention import (
    COMPACT_SCRATCH_SUFFIX,
    RetentionPolicy,
    collect_job,
    compact_archive,
    complete_tombstones,
    gc,
    reclaim,
    select_candidates,
)
from repro.service.scheduler import JobScheduler, SchedulerConfig
from repro.suite.fsck import fsck_directory
from repro.suite.scrub import Scrubber, scrub_service_root
from repro.util import diskstat
from repro.util.diskstat import (
    STATE_HARD,
    STATE_OK,
    STATE_SOFT,
    DiskWatermarks,
    disk_free_bytes,
    watermarks_from_env,
)


def _spec(**overrides) -> dict:
    spec = dict(
        problem_size=1024,
        reps=1,
        machines=["SPR-DDR"],
        variants=["Base_Seq"],
        kernels=["Basic_DAXPY"],
        trials=1,
        execute=False,
        pack=False,
        workers=1,
    )
    spec.update(overrides)
    return spec


def _store(tmp_path) -> JobStore:
    store = JobStore(tmp_path)
    store.ensure_layout()
    return store


def _terminal_job(
    store: JobStore,
    job_id: str,
    tenant: str = "t",
    state: str = STATE_SUCCEEDED,
    payload: bytes = b"x" * 128,
):
    """A fabricated terminal job with a campaign directory on disk."""
    record = store.submit(_spec(), tenant=tenant, job_id=job_id)
    record.transition(STATE_RUNNING)
    record.transition(state)
    store.save(record)
    campaign = store.campaign_dir(job_id)
    (campaign / "sub").mkdir(parents=True, exist_ok=True)
    (campaign / "data.cali").write_bytes(payload)
    (campaign / "sub" / "nested.bin").write_bytes(payload)
    return store.load(job_id)


def _residue(store: JobStore, job_id: str) -> list[str]:
    return [
        what
        for what, path in (
            ("record", store.record_path(job_id)),
            ("tombstone", store.tombstone_path(job_id)),
            ("campaign", store.campaign_dir(job_id)),
            ("lease", store.lease_path(job_id)),
            ("pin", store.pin_path(job_id)),
            ("cancel", store.cancel_path(job_id)),
        )
        if path.exists()
    ]


# ---------------------------------------------------------------- policy
def test_policy_validates_and_reports_enabled():
    assert not RetentionPolicy().enabled
    assert RetentionPolicy(max_age_s=60).enabled
    assert RetentionPolicy(max_terminal_jobs=0).enabled
    assert RetentionPolicy(max_tenant_bytes=0).enabled
    for bad in (
        dict(max_age_s=-1),
        dict(max_terminal_jobs=-1),
        dict(max_tenant_bytes=-5),
    ):
        with pytest.raises(ValueError):
            RetentionPolicy(**bad)


def test_count_rule_collects_oldest_beyond_keep(tmp_path):
    store = _store(tmp_path)
    for job_id in ("a", "b", "c"):
        _terminal_job(store, job_id)
    chosen = select_candidates(store, RetentionPolicy(max_terminal_jobs=1))
    assert [r.job_id for r, _ in chosen] == ["a", "b"]


def test_age_rule_uses_updated_at(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "old")
    stamp = time.mktime(
        time.strptime(record.updated_at, "%Y-%m-%dT%H:%M:%S")
    )
    fresh = select_candidates(
        store, RetentionPolicy(max_age_s=3600), now=stamp + 10
    )
    assert fresh == []
    stale = select_candidates(
        store, RetentionPolicy(max_age_s=3600), now=stamp + 7200
    )
    assert [r.job_id for r, _ in stale] == ["old"]


def test_tenant_bytes_rule_reclaims_oldest_until_under_budget(tmp_path):
    store = _store(tmp_path)
    for job_id in ("a", "b", "c"):
        _terminal_job(store, job_id, tenant="big", payload=b"y" * 1000)
    _terminal_job(store, "other", tenant="small", payload=b"z" * 1000)
    chosen = select_candidates(
        store, RetentionPolicy(max_tenant_bytes=2500)
    )
    # Collecting "a" brings tenant "big" from 6000 to 4000, then "b" to
    # 2000 <= 2500; "c" and the other tenant survive.
    assert [r.job_id for r, _ in chosen] == ["a", "b"]


def test_pinned_jobs_count_toward_budgets_but_never_collect(tmp_path):
    store = _store(tmp_path)
    for job_id in ("a", "b", "c"):
        _terminal_job(store, job_id)
    store.pin("a")
    chosen = select_candidates(store, RetentionPolicy(max_terminal_jobs=1))
    assert [r.job_id for r, _ in chosen] == ["b"]
    assert not collect_job(store, "a")
    store.unpin("a")
    assert collect_job(store, "a")


def test_non_terminal_jobs_are_never_selected_or_collected(tmp_path):
    store = _store(tmp_path)
    store.submit(_spec(), tenant="t", job_id="live")
    assert (
        select_candidates(store, RetentionPolicy(max_terminal_jobs=0)) == []
    )
    assert not collect_job(store, "live")
    assert store.load("live") is not None


def test_cancel_racing_gc_never_loses_the_race(tmp_path):
    """A cancel lands before the job is terminal (GC skips it) or after
    (the marker is moot) — the two-phase protocol has no third case."""
    store = _store(tmp_path)
    record = store.submit(_spec(), tenant="t", job_id="raced")
    store.request_cancel("raced")
    # Not yet terminal: GC must refuse even under the most aggressive
    # policy, with the cancel marker pending.
    assert not collect_job(store, "raced", "race test")
    assert store.load("raced") is not None
    # The cancel wins, the job goes terminal — now GC may collect, and
    # the marker is reclaimed along with everything else.
    record = store.load("raced")
    record.transition(STATE_CANCELLED, reason="cancelled")
    store.save(record)
    assert collect_job(store, "raced", "race test")
    assert _residue(store, "raced") == []


# ------------------------------------------------------------- two-phase
def test_collect_is_two_phase_and_leaves_no_residue(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "gone")
    _terminal_job(store, "kept")
    assert collect_job(store, "gone", "test policy")
    assert _residue(store, "gone") == []
    assert store.load("kept") is not None
    assert (store.campaign_dir("kept") / "data.cali").exists()


def test_sealed_tombstone_resumes_interrupted_reclamation(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "half")
    store.write_tombstone(record, "interrupted")
    # Simulate a crash mid-delete: one file already gone, rest intact.
    (store.campaign_dir("half") / "data.cali").unlink()
    assert complete_tombstones(store) == ["half"]
    assert _residue(store, "half") == []
    # Idempotent: a second pass finds nothing.
    assert complete_tombstones(store) == []


def test_damaged_tombstone_condemns_nothing(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "safe")
    path = store.write_tombstone(record, "about to be torn")
    path.write_text(path.read_text()[:20])
    with pytest.warns(UserWarning):
        assert complete_tombstones(store) == []
    assert store.load("safe") is not None
    assert (store.campaign_dir("safe") / "data.cali").exists()
    backup = path.with_suffix(path.suffix + ".bak")
    assert backup.exists() and not path.exists()


def test_tombstone_for_non_terminal_record_is_refused(tmp_path):
    store = _store(tmp_path)
    store.submit(_spec(), tenant="t", job_id="live")
    payload = {
        "job_id": "live",
        "tenant": "t",
        "state": STATE_QUEUED,
        "reason": "forged",
        "condemned_at": "2026-01-01T00:00:00",
    }
    path = store.tombstone_path("live")
    path.write_text(seal_tombstone(payload))
    assert complete_tombstones(store) == []
    assert store.load("live") is not None
    assert path.with_suffix(path.suffix + ".bak").exists()


def test_tombstone_seal_rejects_tampering():
    payload = {"job_id": "x", "tenant": "t", "state": "SUCCEEDED"}
    text = seal_tombstone(payload)
    assert parse_tombstone_text(text)["job_id"] == "x"
    with pytest.raises(TombstoneDamaged):
        parse_tombstone_text(text[: len(text) // 2])
    with pytest.raises(TombstoneDamaged):
        parse_tombstone_text(text.replace('"x"', '"y"'))


def test_reclaim_is_idempotent(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "twice")
    store.write_tombstone(record, "test")
    reclaim(store, "twice")
    reclaim(store, "twice")  # nothing left: must not raise
    assert _residue(store, "twice") == []


# ------------------------------------------------------------------- gc
def test_gc_dry_run_writes_nothing(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "a")
    _terminal_job(store, "b")
    report = gc(store, RetentionPolicy(max_terminal_jobs=1), dry_run=True)
    assert [c["job_id"] for c in report.collected] == ["a"]
    assert report.reclaimed_bytes > 0
    assert store.load("a") is not None
    assert (store.campaign_dir("a") / "data.cali").exists()
    assert "would collect" in report.summary()
    # The payload is JSON-serializable for --json consumers.
    json.dumps(report.to_payload())


def test_gc_completes_interrupted_work_first(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "stale")
    store.write_tombstone(record, "interrupted")
    report = gc(store, RetentionPolicy())
    assert report.completed == ["stale"]
    assert _residue(store, "stale") == []


# ------------------------------------------------------------ compaction
def _sealed(tag: str, size: int = 40) -> bytes:
    """A minimal sealed .cali byte string (compaction verifies seals)."""
    body = json.dumps({"tag": tag, "pad": "x" * size}).encode()
    return body + b"\n" + footer_line(body).encode() + b"\n"


def _build_archive(path, entries: dict[str, bytes]):
    writer = CalipackWriter(path)
    for name in entries:
        writer.append_bytes(name, entries[name])
    writer.close()


def test_compaction_drops_superseded_and_keeps_bytes(tmp_path):
    archive = tmp_path / ARCHIVE_NAME
    _build_archive(
        archive,
        {"a.cali": _sealed("a-old", 150), "b.cali": _sealed("b", 40)},
    )
    writer = CalipackWriter(archive)  # resume appends a superseding a
    writer.append_bytes("a.cali", _sealed("a-new", 90))
    writer.close()
    frames, _ = scan_frames(archive)
    assert len(frames) == 3
    before = {
        e.name: read_entry_bytes(archive, e) for e in load_entries(archive)
    }
    report = compact_archive(archive)
    assert report.swapped and report.superseded_dropped == 1
    assert report.entries_kept == 2
    assert report.bytes_after < report.bytes_before
    after = {
        e.name: read_entry_bytes(archive, e) for e in load_entries(archive)
    }
    assert after == before  # every readable entry byte-identical
    # Idempotent: a no-change pass never touches the inode.
    stat = archive.stat()
    again = compact_archive(archive)
    assert not again.swapped and again.superseded_dropped == 0
    assert archive.stat().st_mtime_ns == stat.st_mtime_ns


def test_compaction_drops_damaged_entries(tmp_path):
    archive = tmp_path / ARCHIVE_NAME
    _build_archive(
        archive, {"a.cali": _sealed("a"), "b.cali": _sealed("b")}
    )
    victim = next(e for e in load_entries(archive) if e.name == "b.cali")
    raw = bytearray(archive.read_bytes())
    raw[victim.offset + victim.length // 2] ^= 0xFF
    archive.write_bytes(bytes(raw))
    good = read_entry_bytes(
        archive, next(e for e in load_entries(archive) if e.name == "a.cali")
    )
    report = compact_archive(archive)
    assert report.damaged_dropped == ["b.cali"]
    entries = load_entries(archive)
    assert [e.name for e in entries] == ["a.cali"]
    assert read_entry_bytes(archive, entries[0]) == good


def test_compaction_dry_run_reports_without_writing(tmp_path):
    archive = tmp_path / ARCHIVE_NAME
    _build_archive(archive, {"a.cali": _sealed("a", 80)})
    writer = CalipackWriter(archive)
    writer.append_bytes("a.cali", _sealed("a2", 20))
    writer.close()
    raw = archive.read_bytes()
    report = compact_archive(archive, dry_run=True)
    assert report.dry_run and report.superseded_dropped == 1
    assert not report.swapped
    assert archive.read_bytes() == raw


def test_gc_compact_pass_covers_surviving_terminal_jobs(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "a")
    _terminal_job(store, "b")
    archive = store.campaign_dir("b") / ARCHIVE_NAME
    _build_archive(archive, {"p.cali": _sealed("p", 80)})
    writer = CalipackWriter(archive)
    writer.append_bytes("p.cali", _sealed("p2", 20))
    writer.close()
    report = gc(store, RetentionPolicy(max_terminal_jobs=1), compact=True)
    assert [c["job_id"] for c in report.collected] == ["a"]
    assert len(report.compacted) == 1
    assert report.compacted[0].superseded_dropped == 1


# ------------------------------------------------------------------ fsck
def test_fsck_completes_tombstones_and_sweeps_scratch(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "doomed")
    _terminal_job(store, "kept")
    store.write_tombstone(record, "interrupted")
    scratch = store.campaign_dir("kept") / (
        ARCHIVE_NAME + f".{os.getpid()}{COMPACT_SCRATCH_SUFFIX}"
    )
    scratch.write_bytes(b"half-built rebuild")
    report = fsck_directory(tmp_path)
    assert _residue(store, "doomed") == []
    assert not scratch.exists()
    assert any("interrupted reclamation" in n for n in report.notes)
    # The condemned campaign is never misreported as unaccounted work.
    assert not any("unaccounted" in n for n in report.notes)
    assert store.load("kept") is not None


def test_fsck_dry_run_reports_tombstones_without_destroying(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "doomed")
    store.write_tombstone(record, "interrupted")
    report = fsck_directory(tmp_path, quarantine=False, mark_rerun=False)
    assert any("reclamation incomplete" in n for n in report.notes)
    assert store.load("doomed") is not None
    assert store.tombstone_path("doomed").exists()


# ------------------------------------------------------------ watermarks
def test_watermark_state_machine(tmp_path, monkeypatch):
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "5000")
    assert disk_free_bytes(tmp_path) == 5000
    wm = DiskWatermarks(soft_free_bytes=4000, hard_free_bytes=1000)
    assert wm.state(tmp_path) == STATE_OK
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "4000")
    assert wm.state(tmp_path) == STATE_SOFT
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "999")
    assert wm.state(tmp_path) == STATE_HARD
    describe = wm.describe(tmp_path)
    assert describe["state"] == STATE_HARD
    assert describe["free_bytes"] == 999


def test_watermark_validation_and_env_parsing(monkeypatch):
    with pytest.raises(ValueError):
        DiskWatermarks(soft_free_bytes=100, hard_free_bytes=200)
    assert not DiskWatermarks().enabled
    monkeypatch.setenv(diskstat.SOFT_BYTES_ENV, "4096")
    wm = watermarks_from_env()
    assert wm.enabled and wm.soft_free_bytes == 4096
    monkeypatch.setenv(diskstat.HARD_BYTES_ENV, "not-a-number")
    assert watermarks_from_env().hard_free_bytes is None  # junk ignored
    monkeypatch.setenv(diskstat.HARD_BYTES_ENV, "9999")
    assert not watermarks_from_env().enabled  # inverted rails: disabled


def test_real_statvfs_free_bytes(tmp_path):
    free = disk_free_bytes(tmp_path)
    assert free is not None and free > 0
    # Walks up to an existing parent for not-yet-created paths.
    assert disk_free_bytes(tmp_path / "no" / "such" / "dir") is not None


def test_admission_rejects_under_disk_pressure(tmp_path, monkeypatch):
    store = _store(tmp_path)
    policy = AdmissionPolicy(
        watermarks=DiskWatermarks(soft_free_bytes=4000, hard_free_bytes=100)
    )
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "10000")
    assert admission.evaluate(store, "t", policy).admitted
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "3000")
    decision = admission.evaluate(store, "t", policy)
    assert decision.rejected and "disk pressure" in decision.reason
    assert "soft watermark" in decision.reason


def test_scheduler_pauses_claims_at_hard_watermark(tmp_path, monkeypatch):
    store = _store(tmp_path)
    store.submit(_spec(), tenant="t", job_id="waiting")
    wm = DiskWatermarks(soft_free_bytes=4000, hard_free_bytes=1000)
    scheduler = JobScheduler(store, SchedulerConfig(watermarks=wm))
    scheduler.recover()
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "500")
    assert scheduler.claims_paused()
    scheduler.tick()
    assert store.load("waiting").state == STATE_QUEUED  # not claimed
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "50000")
    assert not scheduler.claims_paused()


# -------------------------------------------------------------- scrubber
def test_scrub_pass_detects_and_quarantines_damage(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "clean")
    _terminal_job(store, "dirty")
    archive = store.campaign_dir("dirty") / ARCHIVE_NAME
    _build_archive(archive, {"p.cali": _sealed("p")})
    entry = load_entries(archive)[0]
    raw = bytearray(archive.read_bytes())
    raw[entry.offset + 5] ^= 0xFF
    archive.write_bytes(bytes(raw))
    cache_dir = store.campaign_dir("dirty") / ".ingest_cache"
    cache_dir.mkdir()
    bad_cache = cache_dir / "thicket-deadbeef.tic"
    bad_cache.write_bytes(b"not a sealed cache entry")
    record_path = store.record_path("clean")
    record_path.write_text(record_path.read_text()[:-10])

    report = scrub_service_root(store)
    assert not report.clean
    assert report.records_damaged == ["clean"]
    assert record_path.with_suffix(record_path.suffix + ".bak").exists()
    assert any("p.cali" in ref for ref in report.entries_damaged)
    assert str(store.campaign_dir("dirty")) in report.fsck_campaigns
    assert not bad_cache.exists()
    assert report.cache_entries_dropped == [str(bad_cache)]


def test_scrub_report_only_mode_has_no_side_effects(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "dirty")
    cache_dir = store.campaign_dir("dirty") / ".ingest_cache"
    cache_dir.mkdir()
    bad_cache = cache_dir / "thicket-cafe.tic"
    bad_cache.write_bytes(b"garbage")
    report = scrub_service_root(store, quarantine=False)
    assert report.cache_entries_dropped == [str(bad_cache)]
    assert bad_cache.exists()  # detected, not reclaimed


def test_scrubber_thread_runs_passes(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "a")
    scrubber = Scrubber(tmp_path, interval=0.01)
    scrubber.start()
    deadline = time.monotonic() + 5.0
    while scrubber.passes == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    scrubber.stop()
    assert scrubber.passes >= 1
    assert scrubber.last_report is not None and scrubber.last_report.clean
    with pytest.raises(ValueError):
        Scrubber(tmp_path, interval=0)


# ------------------------------------------------------------ invariants
@pytest.mark.parametrize(
    "point", ["retention.pre-tombstone", "retention.mid-delete"]
)
def test_raise_mode_strike_then_recovery_converges(tmp_path, point):
    """In-process chaos: a strike at either GC boundary leaves a state
    the next (unarmed) pass converges from, with I7 clean."""
    from repro.chaos.points import ChaosCrash, ChaosSchedule, arm, disarm

    store = _store(tmp_path)
    _terminal_job(store, "gc-old")
    _terminal_job(store, "gc-young")
    pre = {
        job_id: invariants.snapshot_store(store.campaign_dir(job_id))
        for job_id in ("gc-old", "gc-young")
    }
    arm(ChaosSchedule(point=point))
    try:
        with pytest.raises(ChaosCrash):
            gc(store, RetentionPolicy(max_terminal_jobs=1))
    finally:
        disarm()
    if point == "retention.pre-tombstone":
        # The strike landed before the condemnation: fully live.
        assert store.load("gc-old") is not None
        assert not store.tombstone_path("gc-old").exists()
    else:
        # Mid-delete: the sealed tombstone proves the interruption.
        assert store.tombstone_path("gc-old").exists()
    report = gc(store, RetentionPolicy(max_terminal_jobs=1))
    assert report.collected or report.completed
    assert invariants.check_retention(tmp_path, pre) == []
    assert _residue(store, "gc-old") == []
    assert store.load("gc-young") is not None


def test_compact_swap_strike_leaves_archive_bit_identical(tmp_path):
    from repro.chaos.points import ChaosCrash, ChaosSchedule, arm, disarm

    archive = tmp_path / ARCHIVE_NAME
    _build_archive(archive, {"a.cali": _sealed("a-old", 100)})
    writer = CalipackWriter(archive)
    writer.append_bytes("a.cali", _sealed("a-new", 30))
    writer.close()
    pristine = archive.read_bytes()
    arm(
        ChaosSchedule(
            point="retention.pre-compact-swap", torn=True, seed=3
        )
    )
    try:
        with pytest.raises(ChaosCrash):
            compact_archive(archive)
    finally:
        disarm()
    assert archive.read_bytes() == pristine  # original untouched
    assert list(tmp_path.glob("*" + COMPACT_SCRATCH_SUFFIX))  # orphan
    report = compact_archive(archive)  # unarmed retry converges
    assert report.swapped and report.superseded_dropped == 1
    entries = load_entries(archive)
    assert [e.name for e in entries] == ["a.cali"]
    assert read_entry_bytes(archive, entries[0]) == _sealed("a-new", 30)
    assert not list(tmp_path.glob("*" + COMPACT_SCRATCH_SUFFIX))


def test_retention_chaos_points_registered():
    for name in (
        "retention.pre-tombstone",
        "retention.mid-delete",
        "retention.pre-compact-swap",
    ):
        spec = REGISTERED_POINTS[name]
        assert spec.phase == "retention"
        assert spec.modes == ("service",)
    assert REGISTERED_POINTS["retention.pre-compact-swap"].torn


def test_check_retention_passes_on_converged_states(tmp_path):
    store = _store(tmp_path)
    _terminal_job(store, "kept")
    _terminal_job(store, "gone")
    pre = {
        job_id: invariants.snapshot_store(store.campaign_dir(job_id))
        for job_id in ("kept", "gone")
    }
    assert collect_job(store, "gone", "test")
    assert invariants.check_retention(tmp_path, pre) == []


def test_check_retention_flags_half_deleted_and_lost_bytes(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "half")
    pre = {"half": invariants.snapshot_store(store.campaign_dir("half"))}
    store.write_tombstone(record, "stuck")  # tombstone + record = limbo
    found = invariants.check_retention(tmp_path, pre)
    assert found and "neither fully live nor fully reclaimed" in found[0]


def test_check_job_service_tolerates_condemned_campaigns(tmp_path):
    store = _store(tmp_path)
    record = _terminal_job(store, "doomed")
    store.write_tombstone(record, "mid-gc")
    store.record_path("doomed").unlink()  # reclaim got this far
    found = invariants.check_job_service(tmp_path, {})
    assert not any("unaccounted" in v for v in found)


# ------------------------------------------------------------------- CLI
def test_cli_gc_dry_run_then_collect(tmp_path, capsys):
    store = _store(tmp_path)
    _terminal_job(store, "a")
    _terminal_job(store, "b")
    assert main(["gc", str(tmp_path), "--keep", "1", "--dry-run"]) == 0
    assert "would collect" in capsys.readouterr().out
    assert store.load("a") is not None
    assert main(["gc", str(tmp_path), "--keep", "1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [c["job_id"] for c in payload["collected"]] == ["a"]
    assert store.load("a") is None and store.load("b") is not None


def test_cli_gc_pin_protects_and_usage_errors(tmp_path, capsys):
    store = _store(tmp_path)
    _terminal_job(store, "a")
    _terminal_job(store, "b")
    assert main(["gc", str(tmp_path), "--pin", "a", "--keep", "1"]) == 0
    assert store.load("a") is not None  # pinned survived the pass
    assert (
        main(["gc", str(tmp_path), "--pin", "nope"])
        == exitcodes.JOB_NOT_FOUND
    )
    assert (
        main(["gc", str(tmp_path / "not-a-root")]) == exitcodes.USAGE
    )
    capsys.readouterr()


def test_cli_jobs_rejects_unknown_state(tmp_path, capsys):
    _store(tmp_path)
    code = main(["jobs", "--root", str(tmp_path), "--state", "EXPLODED"])
    assert code == exitcodes.USAGE
    assert "unknown state" in capsys.readouterr().err


def test_cli_jobs_state_and_tenant_filters(tmp_path, capsys):
    store = _store(tmp_path)
    _terminal_job(store, "done", tenant="alice")
    store.submit(_spec(), tenant="bob", job_id="queued-job")
    assert main(["jobs", "--root", str(tmp_path), "--state", "SUCCEEDED"]) == 0
    out = capsys.readouterr().out
    assert "done" in out and "queued-job" not in out
    assert main(["jobs", "--root", str(tmp_path), "--tenant", "bob"]) == 0
    out = capsys.readouterr().out
    assert "queued-job" in out and "done" not in out


def test_cli_jobs_degrades_at_hard_watermark(tmp_path, monkeypatch, capsys):
    _store(tmp_path)
    monkeypatch.setenv(diskstat.SOFT_BYTES_ENV, "4000")
    monkeypatch.setenv(diskstat.HARD_BYTES_ENV, "1000")
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "500")
    code = main(["jobs", "--root", str(tmp_path)])
    assert code == exitcodes.DEGRADED_ANALYSIS
    assert "hard watermark" in capsys.readouterr().err


def test_cli_submit_rejected_under_disk_pressure(tmp_path, monkeypatch, capsys):
    _store(tmp_path)
    monkeypatch.setenv(diskstat.SOFT_BYTES_ENV, "4000")
    monkeypatch.setenv(diskstat.FREE_BYTES_ENV, "1000")
    code = main(
        ["submit", "--root", str(tmp_path), "--size", "1K", "--job-id", "j"]
    )
    assert code == exitcodes.JOB_REJECTED
    assert "disk pressure" in capsys.readouterr().err


# ---------------------------------------------------------- ingest cache
def test_ingest_cache_prunes_to_byte_budget(tmp_path, monkeypatch):
    from repro.thicket.ingest_cache import _prune, cache_budget_bytes

    monkeypatch.setenv("REPRO_INGEST_CACHE_BYTES", "250")
    assert cache_budget_bytes() == 250
    for i in range(5):
        entry = tmp_path / f"thicket-{i:08x}.tic"
        entry.write_bytes(b"e" * 100)
        os.utime(entry, (1000 + i, 1000 + i))
    _prune(tmp_path, budget=cache_budget_bytes())
    left = sorted(p.name for p in tmp_path.glob("*.tic"))
    assert left == ["thicket-00000003.tic", "thicket-00000004.tic"]


def test_ingest_cache_prune_tolerates_racing_deletes(tmp_path):
    from repro.thicket.ingest_cache import _prune

    (tmp_path / "thicket-1.tic").write_bytes(b"e" * 100)
    (tmp_path / "thicket-2.tic").symlink_to(tmp_path / "gone")  # stat fails
    _prune(tmp_path, budget=0)  # must not raise
    assert not (tmp_path / "thicket-1.tic").exists()


def test_ingest_cache_budget_env_fallback(monkeypatch):
    from repro.thicket.ingest_cache import (
        DEFAULT_CACHE_BYTES,
        cache_budget_bytes,
    )

    monkeypatch.delenv("REPRO_INGEST_CACHE_BYTES", raising=False)
    assert cache_budget_bytes() == DEFAULT_CACHE_BYTES
    monkeypatch.setenv("REPRO_INGEST_CACHE_BYTES", "junk")
    assert cache_budget_bytes() == DEFAULT_CACHE_BYTES


# ---------------------------------------------------------------- daemon
def test_daemon_wires_retention_and_scrubbing(tmp_path):
    from repro.service.daemon import ServiceDaemon

    store = _store(tmp_path)
    record = _terminal_job(store, "stale")
    store.write_tombstone(record, "interrupted before daemon start")
    daemon = ServiceDaemon(
        tmp_path,
        port=0,
        policy=AdmissionPolicy(
            watermarks=DiskWatermarks(soft_free_bytes=1, hard_free_bytes=0)
        ),
        retention=RetentionPolicy(max_terminal_jobs=5),
        retention_interval=3600.0,
        scrub_interval=3600.0,
    )
    try:
        daemon._maybe_gc()  # first tick: finishes the interrupted work
        assert daemon.gc_passes == 1
        assert _residue(store, "stale") == []
        daemon._maybe_gc()  # within the interval, no pressure: no pass
        assert daemon.gc_passes == 1
        health = daemon.health()
        assert health["gc_passes"] == 1
        assert health["scrub_passes"] == 0
        assert health["disk"]["state"] in (STATE_OK, STATE_SOFT, STATE_HARD)
        assert "claims_paused" in health
    finally:
        daemon.close()
