"""The durable campaign job service: store, scheduler, admission, API.

A submitted job must survive anything short of losing the disk: records
are CRC-sealed and rewritten durably, ownership is a lease any
successor can take over exactly once, cancellation is a marker file so
the scheduler stays the single record writer, and a drained or crashed
daemon resumes every job where its campaign manifest left it. The
service's analyze result is byte-identical to a direct CLI analyze of
the same campaign — the payload shape has a single source.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.chaos import invariants
from repro.chaos.points import REGISTERED_POINTS
from repro.service import admission
from repro.service.admission import AdmissionDecision, AdmissionPolicy
from repro.service.api import ServiceAPI, analysis_payload
from repro.service.daemon import ServiceDaemon
from repro.service.jobstore import (
    STATE_CANCELLED,
    STATE_ORPHANED,
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUBMITTED,
    STATE_SUCCEEDED,
    TRANSITIONS,
    JobError,
    JobRecord,
    JobStore,
    params_from_spec,
    parse_record_text,
    seal_record,
    validate_job_id,
)
from repro.service.scheduler import JobScheduler, SchedulerConfig
from repro.suite.errors import CampaignLockedError
from repro.suite.executor import SuiteExecutor
from repro.suite.fsck import fsck_directory

_CTX = multiprocessing.get_context("fork")


def _spec(**overrides) -> dict:
    spec = dict(
        problem_size=1024,
        reps=1,
        machines=["SPR-DDR"],
        variants=["Base_Seq", "RAJA_Seq"],
        kernels=["Basic_DAXPY", "Stream_TRIAD"],
        trials=2,
        execute=False,
        pack=False,
        workers=1,
        heartbeat_timeout=10.0,
        retry_base_delay=0.0,
        retry_max_delay=0.0,
        retry_jitter=0.0,
    )
    spec.update(overrides)
    return spec


def _dead_pid() -> int:
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return pid


def _store(tmp_path) -> JobStore:
    store = JobStore(tmp_path)
    store.ensure_layout()
    return store


# ------------------------------------------------------------- the record
def test_record_seal_roundtrip():
    record = JobRecord(
        job_id="j1", tenant="t", spec=_spec(), state=STATE_QUEUED,
        seq=3, attempts=1, resume=True, reason="why",
        progress={"ok": 2, "failed": 0, "total": 4},
    )
    back = parse_record_text(seal_record(record))
    assert back == record


def test_tampered_record_fails_its_seal():
    text = seal_record(JobRecord(job_id="j1", tenant="t", spec=_spec()))
    torn = text[: len(text) // 2]
    with pytest.raises(JobError, match="does not parse"):
        parse_record_text(torn)
    flipped = text.replace('"attempts": 0', '"attempts": 7')
    with pytest.raises(JobError, match="seal mismatch"):
        parse_record_text(flipped)
    with pytest.raises(JobError, match="not a job record"):
        parse_record_text('{"format": "something-else"}')


def test_state_machine_rejects_illegal_edges():
    record = JobRecord(job_id="j1", tenant="t", spec={})
    with pytest.raises(JobError, match="illegal job transition"):
        record.transition(STATE_RUNNING)  # SUBMITTED cannot skip QUEUED
    record.transition(STATE_QUEUED)
    record.transition(STATE_RUNNING)
    record.transition(STATE_SUCCEEDED)
    with pytest.raises(JobError, match="illegal job transition"):
        record.transition(STATE_QUEUED)  # terminal states never move
    with pytest.raises(JobError, match="unknown job state"):
        record.transition("EXPLODED")
    # Every terminal state really is terminal in the edge table.
    for state in ("SUCCEEDED", "FAILED", "CANCELLED", "ORPHANED"):
        assert TRANSITIONS[state] == frozenset()


def test_job_id_validation():
    assert validate_job_id("job-000001") == "job-000001"
    for bad in ("", "a/b", ".hidden", "x" * 129, "sp ace"):
        with pytest.raises(JobError, match="invalid job id"):
            validate_job_id(bad)


def test_spec_validation_rejects_unknown_keys_and_bad_values():
    with pytest.raises(JobError, match="unknown job spec key"):
        params_from_spec(_spec(not_a_knob=1), "/tmp/x")
    with pytest.raises(JobError, match="invalid job spec"):
        params_from_spec(_spec(trials=0), "/tmp/x")
    # shards force pack=True: the merge tree needs archives.
    params = params_from_spec(_spec(shards=2, workers=2), "/tmp/x")
    assert params.pack is True


# -------------------------------------------------------------- the store
def test_submit_lands_a_durable_queued_record(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), tenant="alice")
    assert record.state == STATE_QUEUED
    assert record.job_id == "job-000001"
    on_disk = parse_record_text(store.record_path(record.job_id).read_text())
    assert on_disk == record
    # A second anonymous submit gets the next sequence number.
    assert store.submit(_spec()).job_id == "job-000002"


def test_submit_is_idempotent_on_caller_job_id(tmp_path):
    store = _store(tmp_path)
    first = store.submit(_spec(), job_id="nightly")
    again = store.submit(_spec(), job_id="nightly")
    assert again == first
    assert store.list_ids() == ["nightly"]


def test_damaged_record_is_backed_up_not_trusted(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec())
    path = store.record_path(record.job_id)
    path.write_text(path.read_text()[:40])  # torn rewrite
    with pytest.warns(UserWarning, match="damaged job record"):
        assert store.load(record.job_id) is None
    assert path.with_suffix(".json.bak").exists()
    assert not path.exists()


def test_job_lease_is_exclusive_with_takeover(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec())
    # A *live* foreign holder is exclusive; a dead one is taken over.
    peer = _CTX.Process(target=time.sleep, args=(60,))
    peer.start()
    try:
        store.lease_path(record.job_id).write_text(
            json.dumps({"pid": peer.pid, "time": time.time()})
        )
        assert store.lease_holder_alive(record.job_id)
        with pytest.raises(CampaignLockedError):
            store.claim(record.job_id)
    finally:
        peer.terminate()
        peer.join()
    lease = store.claim(record.job_id)  # holder died: exclusive takeover
    assert json.loads(
        store.lease_path(record.job_id).read_text()
    )["pid"] == os.getpid()
    lease.release()
    assert not store.lease_path(record.job_id).exists()


def test_cancel_is_a_marker_not_a_record_write(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec())
    before = store.record_path(record.job_id).read_bytes()
    store.request_cancel(record.job_id)
    assert store.cancel_requested(record.job_id)
    # Only the scheduler transitions records; the request changed nothing.
    assert store.record_path(record.job_id).read_bytes() == before
    with pytest.raises(JobError, match="unknown job"):
        store.request_cancel("nope")


# --------------------------------------------------------------- admission
def test_admission_bounds_queue_depth_and_tenants(tmp_path):
    store = _store(tmp_path)
    open_policy = AdmissionPolicy(
        max_queue_depth=None, max_queued_per_tenant=None, max_tenant_bytes=None
    )
    assert admission.evaluate(store, "a", open_policy).admitted

    store.submit(_spec(), tenant="a")
    store.submit(_spec(), tenant="b")
    full = admission.evaluate(store, "a", AdmissionPolicy(max_queue_depth=2))
    assert full.rejected and "queue full: 2 active" in full.reason

    fair = admission.evaluate(
        store, "a", AdmissionPolicy(max_queued_per_tenant=1)
    )
    assert fair.rejected and "tenant 'a' has 1 active" in fair.reason
    assert admission.evaluate(
        store, "c", AdmissionPolicy(max_queued_per_tenant=1)
    ).admitted


def test_admission_counts_terminal_jobs_against_disk_quota(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), tenant="a")
    record.transition(STATE_RUNNING) or record.transition  # QUEUED->RUNNING
    record.transition(STATE_SUCCEEDED)
    store.save(record)
    campaign = store.campaign_dir(record.job_id)
    campaign.mkdir(parents=True)
    (campaign / "big.cali").write_bytes(b"x" * 4096)
    assert admission.tenant_disk_usage(store, "a") >= 4096
    quota = admission.evaluate(
        store, "a", AdmissionPolicy(max_tenant_bytes=1024)
    )
    assert quota.rejected and "byte(s) of campaign output" in quota.reason
    # Another tenant's quota is untouched by tenant a's hoard.
    assert admission.evaluate(
        store, "b", AdmissionPolicy(max_tenant_bytes=1024)
    ).admitted
    assert AdmissionDecision(admitted=True).rejected is False


# -------------------------------------------------------------- scheduler
def test_scheduler_runs_a_job_to_succeeded(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), job_id="end2end")
    scheduler = JobScheduler(store, SchedulerConfig(progress_interval=0.0))
    assert scheduler.run_until_idle(timeout=120.0)
    final = store.load("end2end")
    assert final.state == STATE_SUCCEEDED
    assert final.attempts == 1
    assert final.progress == {"ok": 4, "failed": 0, "total": 4}
    assert not store.lease_holder_alive("end2end")
    # The campaign is an ordinary, analyzable campaign directory.
    expected = {
        c.key
        for c in SuiteExecutor(
            params_from_spec(record.spec, store.campaign_dir("end2end"))
        ).build_cells()
    }
    assert invariants.check_full_cell_set(
        expected, store.campaign_dir("end2end")
    ) == []
    assert invariants.check_job_service(tmp_path, {"end2end": expected}) == []


def test_scheduler_cancels_queued_job_on_tick(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec())
    store.request_cancel(record.job_id)
    scheduler = JobScheduler(store)
    scheduler.tick()
    final = store.load(record.job_id)
    assert final.state == STATE_CANCELLED
    assert not store.cancel_requested(record.job_id)  # marker consumed
    assert not (
        store.campaigns_dir / record.job_id
    ).exists()  # cancelled before any work


def test_recover_promotes_submitted_strays(tmp_path):
    store = _store(tmp_path)
    record = store._create("stray", _spec(), "t")  # crash before first save
    assert record.state == STATE_SUBMITTED
    JobScheduler(store).recover()
    assert store.load("stray").state == STATE_QUEUED


def test_recover_takes_over_dead_running_lease_and_requeues(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), job_id="crashed")
    record.transition(STATE_RUNNING)
    record.attempts = 1
    store.save(record)
    store.lease_path("crashed").write_text(
        json.dumps({"pid": _dead_pid(), "time": time.time()})
    )
    touched = JobScheduler(store).recover()
    assert touched == ["crashed"]
    healed = store.load("crashed")
    assert healed.state == STATE_QUEUED
    assert healed.resume is True
    assert "scheduler died" in healed.reason
    assert not store.lease_path("crashed").exists()


def test_recover_leaves_live_peers_jobs_alone(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), job_id="peer-owned")
    record.transition(STATE_RUNNING)
    store.save(record)
    store.lease_path("peer-owned").write_text(
        json.dumps({"pid": os.getpid(), "time": time.time()})
    )
    assert JobScheduler(store).recover() == []
    assert store.load("peer-owned").state == STATE_RUNNING


def test_heal_parks_job_as_orphaned_after_attempt_budget(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), job_id="doomed")
    record.transition(STATE_RUNNING)
    record.attempts = 3
    store.save(record)
    store.lease_path("doomed").write_text(
        json.dumps({"pid": _dead_pid(), "time": time.time()})
    )
    JobScheduler(store, SchedulerConfig(max_job_attempts=3)).recover()
    final = store.load("doomed")
    assert final.state == STATE_ORPHANED
    assert "attempt budget (3) exhausted" in final.reason


def test_drain_requeues_running_jobs_uncharged_with_resume(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), job_id="draining")
    record.attempts = 1
    record.transition(STATE_RUNNING)
    store.save(record)
    scheduler = JobScheduler(store)
    lease = store.claim("draining")
    child = _CTX.Process(target=time.sleep, args=(60,))
    child.start()
    scheduler._children["draining"] = child
    scheduler._leases["draining"] = lease
    drained = scheduler.drain()
    assert drained == ["draining"]
    assert not child.is_alive()
    final = store.load("draining")
    assert final.state == STATE_QUEUED
    assert final.resume is True
    assert final.attempts == 0  # the drain is not the job's fault
    assert final.reason == "daemon drained"
    assert not store.lease_path("draining").exists()
    # Draining schedulers stop claiming: the requeued job stays queued.
    scheduler.tick()
    assert store.load("draining").state == STATE_QUEUED


# ---------------------------------------------------------------- the API
def test_api_submit_status_reject_and_errors(tmp_path):
    store = _store(tmp_path)
    api = ServiceAPI(store, AdmissionPolicy(max_queue_depth=1))
    status, body = api.submit({"trials": 0})
    assert status == 400 and "invalid job spec" in body["error"]
    status, body = api.submit(_spec(), tenant="a", job_id="one")
    assert status == 200 and body["job"]["state"] == STATE_QUEUED
    status, body = api.submit(_spec(), tenant="b")
    assert status == 429 and body["rejected"] and "queue full" in body["reason"]
    assert api.status("one")[0] == 200
    assert api.status("nope")[0] == 404
    assert api.cancel("nope")[0] == 404
    status, body = api.list_jobs(state=STATE_QUEUED)
    assert status == 200 and [j["job_id"] for j in body["jobs"]] == ["one"]


def test_api_result_handshake_and_degraded_empty_campaign(tmp_path):
    store = _store(tmp_path)
    api = ServiceAPI(store)
    assert api.result("nope")[0] == 404
    record = store.submit(_spec(), job_id="empty")
    status, body = api.result("empty")
    assert status == 409 and "not terminal" in body["error"]
    record.transition(STATE_RUNNING)
    record.transition(STATE_SUCCEEDED)
    store.save(record)
    status, body = api.result("empty")  # no campaign dir at all
    assert status == 200
    assert body["result"]["degraded"] is True
    assert body["result"]["matrix"] == []
    assert body["result"]["load_errors"]["count"] == 1


def test_service_result_is_byte_equal_to_cli_analyze(tmp_path):
    """The tentpole contract: one payload shape, one source of truth."""
    store = _store(tmp_path)
    store.submit(_spec(), job_id="golden")
    assert JobScheduler(store).run_until_idle(timeout=120.0)
    status, body = ServiceAPI(store).result("golden")
    assert status == 200 and body["result"]["degraded"] is False

    from repro.thicket import Thicket

    campaign = store.campaign_dir("golden")
    thicket = Thicket.from_caliperreader(
        sorted(str(p) for p in campaign.glob("*.cali"))
    )
    direct = analysis_payload(thicket, "Avg time/rank")
    assert json.dumps(body["result"], indent=1) == json.dumps(direct, indent=1)
    assert direct["matrix"] and direct["regions"]


# ---------------------------------------------------------------- daemon
def test_daemon_serves_http_and_drains_on_stop(tmp_path):
    import threading

    from repro.service.api import http_json

    daemon = ServiceDaemon(tmp_path, port=0)
    thread = threading.Thread(
        target=daemon.serve_forever, kwargs={"install_signals": False}
    )
    thread.start()
    try:
        status, health = http_json(f"{daemon.url}/healthz")
        assert status == 200 and health["ok"] is True
        status, body = http_json(
            f"{daemon.url}/api/jobs",
            {"spec": _spec(), "job_id": "via-http", "tenant": "t"},
        )
        assert status == 200 and body["job"]["job_id"] == "via-http"
        # Idempotent resubmission over HTTP returns the same record.
        status, again = http_json(
            f"{daemon.url}/api/jobs", {"spec": _spec(), "job_id": "via-http"}
        )
        assert status == 200 and again["job"]["job_id"] == "via-http"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, body = http_json(f"{daemon.url}/api/jobs/via-http")
            if body["job"]["state"] in ("SUCCEEDED", "FAILED", "ORPHANED"):
                break
            time.sleep(0.1)
        assert body["job"]["state"] == STATE_SUCCEEDED
        status, result = http_json(f"{daemon.url}/api/jobs/via-http/result")
        assert status == 200 and result["result"]["degraded"] is False
        assert http_json(f"{daemon.url}/api/nowhere")[0] == 404
    finally:
        daemon.request_stop()
        thread.join(30.0)
    assert not thread.is_alive()


# ------------------------------------------------------------ fsck audit
def test_fsck_audits_the_job_store(tmp_path):
    store = _store(tmp_path)
    good = store.submit(_spec(), job_id="good")
    good.transition(STATE_RUNNING)
    good.transition(STATE_SUCCEEDED)
    store.save(good)
    store.cancel_path("good").touch()  # orphaned marker on a terminal job

    bad = store.submit(_spec(), job_id="torn")
    path = store.record_path("torn")
    path.write_text(path.read_text()[:33])

    dead = _dead_pid()
    store.lease_path("good").write_text(
        json.dumps({"pid": dead, "time": time.time()})
    )
    (store.jobs_dir / "good.lease.takeover").write_text(
        json.dumps({"pid": dead})
    )
    ghost = store.campaigns_dir / "no-record-here"
    ghost.mkdir()

    report = fsck_directory(tmp_path, quarantine=True)
    notes = "\n".join(report.notes)
    assert "damaged job record torn.json backed up" in notes
    assert (store.jobs_dir / "torn.json.bak").exists()
    assert "stale lease-takeover token" in notes
    assert "lease holder pid" in notes and "dead" in notes
    assert not store.lease_path("good").exists()
    assert "cancel marker for terminal job good removed" in notes
    assert not store.cancel_path("good").exists()
    assert "campaign directory no-record-here has no job record" in notes
    del bad


def test_fsck_without_quarantine_only_reports(tmp_path):
    store = _store(tmp_path)
    store.submit(_spec(), job_id="torn")
    path = store.record_path("torn")
    path.write_text("{ not a record")
    report = fsck_directory(tmp_path, quarantine=False)
    assert any("damaged job record torn.json" in n for n in report.notes)
    assert path.exists()  # report-only mode touches nothing
    assert not (store.jobs_dir / "torn.json.bak").exists()


# ------------------------------------------------------------- invariants
def test_check_job_records_parse_catches_torn_records(tmp_path):
    store = _store(tmp_path)
    store.submit(_spec(), job_id="fine")
    assert invariants.check_job_records_parse(tmp_path) == []
    store.record_path("fine").write_text("{ torn")
    violations = invariants.check_job_records_parse(tmp_path)
    assert violations and "fine.json unreadable" in violations[0]


def test_check_job_service_flags_every_divergence(tmp_path):
    store = _store(tmp_path)
    record = store.submit(_spec(), job_id="sad")
    record.transition(STATE_CANCELLED)
    store.save(record)
    (store.campaigns_dir / "mystery").mkdir()
    store.lease_path("sad").write_text(
        json.dumps({"pid": os.getpid(), "time": time.time()})
    )
    violations = invariants.check_job_service(
        tmp_path, {"sad": {"k"}, "lost": {"k"}}
    )
    text = "\n".join(violations)
    assert "job sad is CANCELLED" in text
    assert "job lost lost: no readable record" in text
    assert "campaign directory mystery has no job record" in text
    assert "terminal job sad still holds a live scheduler lease" in text


def test_service_chaos_points_are_registered():
    for name in (
        "service.pre-job-save",
        "service.post-claim",
        "service.mid-drain",
    ):
        spec = REGISTERED_POINTS[name]
        assert spec.phase == "service"
        assert spec.modes == ("service",)

    from repro.chaos.runner import MODES

    assert "service" in MODES
