"""More independent-reference checks for kernels not covered in
test_kernels_specific, plus the nested-loop dispatch primitives."""

import numpy as np
import pytest

from repro.rajasim import cuda_exec, kernel_2d, kernel_3d, omp_parallel_for_exec, seq_exec
from repro.suite.registry import make_kernel
from repro.suite.variants import get_variant

RAJA_SEQ = get_variant("RAJA_Seq")
CUDA = get_variant("RAJA_CUDA")


class TestNestedDispatch:
    @pytest.mark.parametrize("policy", [seq_exec, omp_parallel_for_exec, cuda_exec],
                             ids=["seq", "omp", "cuda"])
    def test_kernel_2d_covers_cross_product(self, policy):
        out = np.zeros((7, 11))

        def body(i, j):
            out[i, j] += i * 100 + j

        kernel_2d(policy, (7, 11), body)
        ii, jj = np.meshgrid(np.arange(7), np.arange(11), indexing="ij")
        np.testing.assert_array_equal(out, ii * 100 + jj)

    @pytest.mark.parametrize("policy", [seq_exec, cuda_exec], ids=["seq", "cuda"])
    def test_kernel_3d_covers_cross_product(self, policy):
        out = np.zeros((4, 5, 6))

        def body(i, j, k):
            out[i, j, k] += 1.0

        kernel_3d(policy, (4, 5, 6), body)
        np.testing.assert_array_equal(out, 1.0)

    def test_kernel_2d_with_offset_segments(self):
        out = np.zeros((5, 5))
        kernel_2d(seq_exec, ((1, 4), (2, 5)), lambda i, j: out.__setitem__((i, j), 1.0))
        assert out[1:4, 2:5].sum() == 9.0 and out.sum() == 9.0


class TestLcalsReferences:
    def test_eos_formula(self):
        k = make_kernel("Lcals_EOS", 400)
        k.run_variant(RAJA_SEQ)
        i = np.arange(400)
        u, y, z = k.u, k.y, k.z
        q, r, t = k.Q, k.R, k.T
        expected = (
            u[i]
            + r * (z[i] + r * y[i])
            + t * (u[i + 3] + r * (u[i + 2] + r * u[i + 1])
                   + t * (u[i + 6] + q * (u[i + 5] + q * u[i + 4])))
        )
        np.testing.assert_allclose(k.x, expected)

    def test_hydro_1d_formula(self):
        k = make_kernel("Lcals_HYDRO_1D", 300)
        k.run_variant(CUDA)
        i = np.arange(300)
        expected = k.Q + k.y * (k.R * k.z[i + 10] + k.T * k.z[i + 11])
        np.testing.assert_allclose(k.x, expected)

    def test_tridiag_elim_formula(self):
        k = make_kernel("Lcals_TRIDIAG_ELIM", 300)
        k.run_variant(RAJA_SEQ)
        i = np.arange(1, 300)
        np.testing.assert_allclose(
            k.xout[1:], k.z[1:] * (k.y[1:] - k.xin[:-1])
        )

    def test_int_predict_formula(self):
        k = make_kernel("Lcals_INT_PREDICT", 200)
        k.ensure_setup()
        px0 = k.px.copy()
        k.run_raja(RAJA_SEQ.policy())
        expected = (
            k.DM28 * px0[12] + k.DM27 * px0[11] + k.DM26 * px0[10]
            + k.DM25 * px0[9] + k.DM24 * px0[8] + k.DM23 * px0[7]
            + k.DM22 * px0[6] + k.C0 * (px0[4] + px0[5]) + px0[2]
        )
        np.testing.assert_allclose(k.px[0], expected)

    def test_gen_lin_recur_reference(self):
        k = make_kernel("Lcals_GEN_LIN_RECUR", 250)
        k.ensure_setup()
        sa, sb = k.sa.copy(), k.sb.copy()
        stb5 = k.stb5.copy()
        # Scalar reference.
        b5 = np.zeros(250)
        for kk in range(250):
            b5[kk] = sa[kk] + stb5[kk] * sb[kk]
            stb5[kk] = b5[kk] - stb5[kk]
        for i in range(1, 251):
            kk = 250 - i
            b5[kk] = sa[kk] + stb5[kk] * sb[kk]
            stb5[kk] = b5[kk] - stb5[kk]
        k.run_raja(RAJA_SEQ.policy())
        np.testing.assert_allclose(k.b5, b5)
        np.testing.assert_allclose(k.stb5, stb5)


class TestAppsReferences:
    def test_energy_passes_are_deterministic_and_clamped(self):
        k = make_kernel("Apps_ENERGY", 500)
        k.run_variant(CUDA)
        assert np.all(k.e_new >= k.EMIN)
        assert np.all((k.q_new == 0.0) | (k.delvc <= 0.0))

    def test_pressure_clamps(self):
        k = make_kernel("Apps_PRESSURE", 500)
        k.run_variant(RAJA_SEQ)
        assert np.all(k.p_new >= k.PMIN)
        assert np.all(k.p_new[k.vnewc >= 1.0] == k.PMIN)

    def test_del_dot_vec_uniform_field_has_zero_divergence(self):
        # A constant velocity field has zero divergence on any mesh.
        k = make_kernel("Apps_DEL_DOT_VEC_2D", 400)
        k.ensure_setup()
        k.xdot[:] = 3.0
        k.ydot[:] = -2.0
        k.run_base(get_variant("Base_Seq").policy())
        np.testing.assert_allclose(k.div, 0.0, atol=1e-10)

    def test_edge3d_operator_is_positive_semidefinite(self):
        # y = C^T diag(det J) C x with det J > 0 => <x, y> >= 0.
        k = make_kernel("Apps_EDGE3D", 600)
        k.ensure_setup()
        x0 = k.x.copy()
        k.run_base(get_variant("Base_Seq").policy())
        assert float(np.sum(x0 * k.y)) >= 0.0

    def test_mass3dea_matrices_symmetric(self):
        k = make_kernel("Apps_MASS3DEA", 256)
        k.run_variant(RAJA_SEQ)
        np.testing.assert_allclose(k.m, np.swapaxes(k.m, 1, 2), rtol=1e-12)

    def test_diffusion3dpa_operator_positive(self):
        k = make_kernel("Apps_DIFFUSION3DPA", 512)
        k.ensure_setup()
        x0 = k.x.copy()
        k.run_base(get_variant("Base_Seq").policy())
        # Dominant-diagonal coefficient: the quadratic form stays positive.
        assert float(np.sum(x0 * k.y)) > 0.0


class TestPolybenchReferences:
    def test_heat_3d_matches_two_explicit_sweeps(self):
        k = make_kernel("Polybench_HEAT_3D", 512)  # 8^3
        k.ensure_setup()
        a = k.a.copy()
        b = k.b.copy()

        def sweep(dst, src):
            out = dst.copy()
            c = slice(1, -1)
            out[c, c, c] = (
                0.125 * (src[2:, c, c] - 2 * src[c, c, c] + src[:-2, c, c])
                + 0.125 * (src[c, 2:, c] - 2 * src[c, c, c] + src[c, :-2, c])
                + 0.125 * (src[c, c, 2:] - 2 * src[c, c, c] + src[c, c, :-2])
                + src[c, c, c]
            )
            return out

        b_ref = sweep(b, a)
        a_ref = sweep(a, b_ref)
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.a, a_ref, rtol=1e-12)

    def test_fdtd_2d_field_update_consistency(self):
        k = make_kernel("Polybench_FDTD_2D", 400)
        k.ensure_setup()
        ey0 = k.ey.copy()
        hz0 = k.hz.copy()
        k.run_raja(CUDA.policy())
        # ey interior rows followed the hz difference.
        np.testing.assert_allclose(
            k.ey[1:, :] + 0.5 * (hz0[1:, :] - hz0[:-1, :]), ey0[1:, :], rtol=1e-10
        )

    def test_adi_boundaries(self):
        k = make_kernel("Polybench_ADI", 400)
        k.run_variant(RAJA_SEQ)
        np.testing.assert_allclose(k.v[0, :], 1.0)
        np.testing.assert_allclose(k.v[-1, :], 1.0)
        np.testing.assert_allclose(k.u[:, 0], 1.0)
        np.testing.assert_allclose(k.u[:, -1], 1.0)

    def test_gesummv_matches_numpy(self):
        k = make_kernel("Polybench_GESUMMV", 1600)
        k.ensure_setup()
        a, b, x = k.a.copy(), k.b.copy(), k.x.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(
            k.y, k.ALPHA * (a @ x) + k.BETA * (b @ x), rtol=1e-12
        )

    def test_gemver_matches_numpy(self):
        k = make_kernel("Polybench_GEMVER", 900)
        k.ensure_setup()
        a0 = k.a.copy()
        u1, v1, u2, v2, y, z = k.u1, k.v1, k.u2, k.v2, k.y, k.z
        k.run_raja(CUDA.policy())
        a_ref = a0 + np.outer(u1, v1) + np.outer(u2, v2)
        x_ref = k.BETA * (a_ref.T @ y) + z
        w_ref = k.ALPHA * (a_ref @ x_ref)
        np.testing.assert_allclose(k.w, w_ref, rtol=1e-10)

    def test_mvt_matches_numpy(self):
        k = make_kernel("Polybench_MVT", 900)
        k.ensure_setup()
        a, y1, y2 = k.a.copy(), k.y1.copy(), k.y2.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.x1, a @ y1, rtol=1e-10)
        np.testing.assert_allclose(k.x2, a.T @ y2, rtol=1e-10)

    def test_2mm_matches_numpy(self):
        k = make_kernel("Polybench_2MM", 1600)
        k.ensure_setup()
        a, b, c, d0 = k.a.copy(), k.b.copy(), k.c.copy(), k.d.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(
            k.d, k.BETA * d0 + k.ALPHA * (a @ b) @ c, rtol=1e-10
        )

    def test_3mm_matches_numpy(self):
        k = make_kernel("Polybench_3MM", 1600)
        k.ensure_setup()
        a, b, c, d = k.a.copy(), k.b.copy(), k.c.copy(), k.d.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.g, (a @ b) @ (c @ d), rtol=1e-10)
