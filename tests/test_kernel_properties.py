"""Property-based tests over the kernel suite (hypothesis).

Random problem sizes and variant pairs: checksums must always agree, and
O(n) kernels' analytic metrics must scale linearly with problem size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.suite.registry import all_kernel_classes, similarity_kernel_classes
from repro.suite.variants import get_variant

# A spread of kernels across groups and implementation styles.
SAMPLED = [
    "Stream_TRIAD",
    "Stream_DOT",
    "Basic_DAXPY",
    "Basic_INDEXLIST_3LOOP",
    "Basic_NESTED_INIT",
    "Algorithm_SCAN",
    "Algorithm_SORTPAIRS",
    "Lcals_GEN_LIN_RECUR",
    "Lcals_HYDRO_2D",
    "Apps_VOL3D",
    "Apps_LTIMES",
    "Polybench_ATAX",
    "Polybench_JACOBI_2D",
    "Comm_HALO_EXCHANGE",
]

VARIANT_PAIRS = [
    ("Base_Seq", "RAJA_Seq"),
    ("Base_Seq", "RAJA_CUDA"),
    ("RAJA_OpenMP", "RAJA_HIP"),
]


@pytest.mark.parametrize("name", SAMPLED)
@given(size=st.integers(min_value=600, max_value=6000), pair=st.sampled_from(VARIANT_PAIRS))
@settings(max_examples=6, deadline=None)
def test_variants_agree_at_random_sizes(name, size, pair):
    from repro.suite.registry import make_kernel
    from repro.suite.checksum import checksums_match

    kernel = make_kernel(name, problem_size=size)
    v1, v2 = get_variant(pair[0]), get_variant(pair[1])
    if not (kernel.supports(v1) and kernel.supports(v2)):
        return
    c1 = kernel.run_variant(v1)
    c2 = kernel.run_variant(v2)
    assert checksums_match(c1, c2), (name, size, pair)


@pytest.mark.parametrize(
    "cls", similarity_kernel_classes(), ids=lambda c: c.class_full_name()
)
def test_linear_kernels_metrics_scale_linearly(cls):
    """For O(n) kernels, bytes and FLOPs per iteration are size-invariant
    (within the granularity of derived mesh dimensions)."""
    small = cls(problem_size=200_000)
    large = cls(problem_size=3_200_000)
    m_small = small.analytic_metrics()
    m_large = large.analytic_metrics()
    for key in ("bytes_read", "bytes_written", "flops"):
        a, b = m_small[key], m_large[key]
        if max(abs(a), abs(b)) < 1.0:
            # Sub-linear terms (a scalar accumulator, a fixed bin array,
            # an O(sqrt(n)) output vector) legitimately vanish per
            # iteration as n grows.
            continue
        denom = max(abs(a), abs(b))
        assert abs(a - b) / denom < 0.25, (cls.class_full_name(), key, a, b)


@given(st.integers(1000, 100_000))
@settings(max_examples=20, deadline=None)
def test_iterations_close_to_problem_size_for_linear_kernels(n):
    """O(n) kernels iterate ~problem_size times (mesh rounding aside)."""
    for cls in (c for c in all_kernel_classes() if c.COMPLEXITY.is_linear):
        kernel = cls(problem_size=n)
        ratio = kernel.iterations() / n
        assert 0.2 < ratio <= 1.2, cls.class_full_name()


@pytest.mark.parametrize("name", SAMPLED)
def test_seed_controls_data(name):
    from repro.suite.registry import get_kernel_class

    cls = get_kernel_class(name)
    a = cls(problem_size=1000, seed=1)
    b = cls(problem_size=1000, seed=2)
    variant = get_variant("Base_Seq")
    ca, cb = a.run_variant(variant), b.run_variant(variant)
    # Different seeds -> different data -> (almost surely) different sums,
    # except for kernels whose outputs are data-independent.
    data_independent = {"Basic_NESTED_INIT"}
    if name not in data_independent:
        assert ca != cb, name
