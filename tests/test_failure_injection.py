"""Failure injection: the verification machinery must *catch* bugs.

A test suite that only checks the happy path can pass with broken
checkers; these tests plant real defects and assert they are detected.
"""

import numpy as np
import pytest

from repro.kernels.stream.triad import StreamTriad
from repro.suite.checksum import checksums_match
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import get_variant


class BrokenTriadWrongFactor(StreamTriad):
    """RAJA variant silently uses the wrong coefficient."""

    def run_raja(self, policy):
        a, b, c = self.a, self.b, self.c

        def body(i):
            a[i] = b[i] + (self.Q + 1e-6) * c[i]  # subtle miscompile

        from repro.rajasim import forall

        forall(policy, self.problem_size, body)


class BrokenTriadDropsTail(StreamTriad):
    """RAJA variant forgets the last partial block (a classic GPU bug)."""

    def run_raja(self, policy):
        a, b, c, q = self.a, self.b, self.c, self.Q
        n = (self.problem_size // 256) * 256  # drops the remainder

        def body(i):
            a[i] = b[i] + q * c[i]

        from repro.rajasim import forall

        forall(policy, n, body)


class BrokenTriadPermutes(StreamTriad):
    """Writes correct values to the wrong slots (indexing bug)."""

    def run_raja(self, policy):
        a, b, c, q = self.a, self.b, self.c, self.Q

        def body(i):
            a[i[::-1]] = b[i] + q * c[i]

        from repro.rajasim import forall

        forall(policy, self.problem_size, body)


@pytest.mark.parametrize(
    "broken_cls",
    [BrokenTriadWrongFactor, BrokenTriadDropsTail, BrokenTriadPermutes],
    ids=["wrong-factor", "dropped-tail", "permuted-writes"],
)
def test_checksum_verification_catches_defect(broken_cls):
    kernel = broken_cls(problem_size=3_000)
    with pytest.raises(AssertionError, match="checksum mismatch"):
        kernel.verify_variants(
            [get_variant("Base_Seq"), get_variant("RAJA_Seq")]
        )


def test_checksum_tolerance_is_tight():
    """A relative error of 1e-6 in the output must not slip through."""
    assert not checksums_match(1.0, 1.0 + 1e-6)


def test_permutation_not_masked_by_summation():
    """The position weighting is what catches the permuted-writes bug —
    demonstrate a plain sum would NOT have caught it."""
    kernel = BrokenTriadPermutes(problem_size=1_000)
    reference = StreamTriad(problem_size=1_000)
    kernel.run_variant(get_variant("RAJA_Seq"))
    reference.run_variant(get_variant("RAJA_Seq"))
    assert float(np.sum(kernel.a)) == pytest.approx(float(np.sum(reference.a)))
    assert kernel.checksum() != pytest.approx(reference.checksum())


class IncompleteKernel(KernelBase):
    NAME = "INCOMPLETE"

    def setup(self):
        pass


def test_abstract_methods_enforced():
    kernel = IncompleteKernel(problem_size=10)
    with pytest.raises(NotImplementedError):
        kernel.bytes_read()
    with pytest.raises(NotImplementedError):
        kernel.traits()
    kernel.ensure_setup()
    with pytest.raises(NotImplementedError):
        kernel.run_base(get_variant("Base_Seq").policy())


def test_broken_profile_counters_detected():
    """The TMA analysis refuses counters without the slots denominator."""
    from repro.analysis.topdown import topdown_from_counters

    with pytest.raises(ValueError):
        topdown_from_counters({"perf::topdown-retiring": 100.0})


def test_mpi_message_loss_detected():
    """Losing a halo message must surface as a deadlock, not silence."""
    from repro.kernels.comm.halo_kernels import CommHaloExchange

    kernel = CommHaloExchange(problem_size=4096)
    kernel.ensure_setup()
    original_pack = kernel._pack

    def lossy_pack():
        original_pack()
        # Drop rank 0's outgoing low-boundary message by clearing the
        # mailbox after packing + sending would be complex; instead
        # simulate the loss by breaking the exchange's recv source.
    kernel._pack = lossy_pack
    # Direct check on the communicator: waiting on a never-sent message.
    req = kernel.comm.irecv(0, 1, np.zeros(4), tag=99)
    with pytest.raises(RuntimeError, match="deadlock"):
        kernel.comm.wait(0, req)
