"""Failure injection: the verification machinery must *catch* bugs.

A test suite that only checks the happy path can pass with broken
checkers; these tests plant real defects and assert they are detected.
"""

import numpy as np
import pytest

from repro.kernels.stream.triad import StreamTriad
from repro.suite.checksum import checksums_match
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import get_variant


class BrokenTriadWrongFactor(StreamTriad):
    """RAJA variant silently uses the wrong coefficient."""

    def run_raja(self, policy):
        a, b, c = self.a, self.b, self.c

        def body(i):
            a[i] = b[i] + (self.Q + 1e-6) * c[i]  # subtle miscompile

        from repro.rajasim import forall

        forall(policy, self.problem_size, body)


class BrokenTriadDropsTail(StreamTriad):
    """RAJA variant forgets the last partial block (a classic GPU bug)."""

    def run_raja(self, policy):
        a, b, c, q = self.a, self.b, self.c, self.Q
        n = (self.problem_size // 256) * 256  # drops the remainder

        def body(i):
            a[i] = b[i] + q * c[i]

        from repro.rajasim import forall

        forall(policy, n, body)


class BrokenTriadPermutes(StreamTriad):
    """Writes correct values to the wrong slots (indexing bug)."""

    def run_raja(self, policy):
        a, b, c, q = self.a, self.b, self.c, self.Q

        def body(i):
            a[i[::-1]] = b[i] + q * c[i]

        from repro.rajasim import forall

        forall(policy, self.problem_size, body)


@pytest.mark.parametrize(
    "broken_cls",
    [BrokenTriadWrongFactor, BrokenTriadDropsTail, BrokenTriadPermutes],
    ids=["wrong-factor", "dropped-tail", "permuted-writes"],
)
def test_checksum_verification_catches_defect(broken_cls):
    kernel = broken_cls(problem_size=3_000)
    with pytest.raises(AssertionError, match="checksum mismatch"):
        kernel.verify_variants(
            [get_variant("Base_Seq"), get_variant("RAJA_Seq")]
        )


def test_checksum_tolerance_is_tight():
    """A relative error of 1e-6 in the output must not slip through."""
    assert not checksums_match(1.0, 1.0 + 1e-6)


def test_permutation_not_masked_by_summation():
    """The position weighting is what catches the permuted-writes bug —
    demonstrate a plain sum would NOT have caught it."""
    kernel = BrokenTriadPermutes(problem_size=1_000)
    reference = StreamTriad(problem_size=1_000)
    kernel.run_variant(get_variant("RAJA_Seq"))
    reference.run_variant(get_variant("RAJA_Seq"))
    assert float(np.sum(kernel.a)) == pytest.approx(float(np.sum(reference.a)))
    assert kernel.checksum() != pytest.approx(reference.checksum())


class IncompleteKernel(KernelBase):
    NAME = "INCOMPLETE"

    def setup(self):
        pass


def test_abstract_methods_enforced():
    kernel = IncompleteKernel(problem_size=10)
    with pytest.raises(NotImplementedError):
        kernel.bytes_read()
    with pytest.raises(NotImplementedError):
        kernel.traits()
    kernel.ensure_setup()
    with pytest.raises(NotImplementedError):
        kernel.run_base(get_variant("Base_Seq").policy())


def test_broken_profile_counters_detected():
    """The TMA analysis refuses counters without the slots denominator."""
    from repro.analysis.topdown import topdown_from_counters

    with pytest.raises(ValueError):
        topdown_from_counters({"perf::topdown-retiring": 100.0})


def test_mpi_message_loss_detected():
    """Losing a halo message must surface as a deadlock, not silence."""
    from repro.kernels.comm.halo_kernels import CommHaloExchange

    kernel = CommHaloExchange(problem_size=4096)
    kernel.ensure_setup()
    original_pack = kernel._pack

    def lossy_pack():
        original_pack()
        # Drop rank 0's outgoing low-boundary message by clearing the
        # mailbox after packing + sending would be complex; instead
        # simulate the loss by breaking the exchange's recv source.
    kernel._pack = lossy_pack
    # Direct check on the communicator: waiting on a never-sent message.
    req = kernel.comm.irecv(0, 1, np.zeros(4), tag=99)
    with pytest.raises(RuntimeError, match="deadlock"):
        kernel.comm.wait(0, req)


# --------------------------------------------------------------------------
# Campaign fault tolerance: the injector plants faults, the executor must
# absorb transient ones (retry/backoff), bound hung kernels (deadline
# clock), checkpoint completed cells (resume), and the analysis layer must
# tolerate corrupt .cali files (degraded mode).
# --------------------------------------------------------------------------

from pathlib import Path

from repro.faults import (
    DeadlineClock,
    FaultInjector,
    FaultKind,
    FaultSite,
    FaultSpec,
    InjectedKernelFault,
)
from repro.suite import (
    ChecksumMismatchError,
    KernelExecutionError,
    MANIFEST_NAME,
    RetryPolicy,
    RunParams,
    RunTimeoutError,
    SuiteExecutor,
)
from repro.thicket import ProfileLoadWarning, Thicket


def _params(tmp_path=None, **overrides):
    base = dict(
        problem_size="100K",
        variants=("Base_Seq", "RAJA_Seq"),
        machines=("SPR-DDR",),
        kernels=("Stream_TRIAD", "Stream_ADD"),
        max_attempts=3,
        retry_base_delay=0.0,
        retry_jitter=0.0,
    )
    if tmp_path is not None:
        base["output_dir"] = str(tmp_path)
    base.update(overrides)
    return RunParams(**base)


def _no_sleep(_seconds):
    pass


class TestFaultInjector:
    def test_transient_budget_is_exact(self):
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.KERNEL_EXCEPTION, kernel="K", times=2)]
        )
        site = FaultSite(kernel="K", variant="V", trial=0)
        for _ in range(2):
            with pytest.raises(InjectedKernelFault):
                injector.kernel_fault(site)
        injector.kernel_fault(site)  # budget exhausted: no raise
        assert len(injector.fired_log) == 2

    def test_site_patterns_filter(self):
        injector = FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.KERNEL_EXCEPTION,
                    kernel="Stream_*",
                    variant="RAJA_Seq",
                    trial=1,
                    times=None,
                )
            ]
        )
        miss = FaultSite(kernel="Basic_DAXPY", variant="RAJA_Seq", trial=1)
        injector.kernel_fault(miss)  # wrong kernel: silent
        injector.kernel_fault(FaultSite("Stream_ADD", "Base_Seq", 1))  # wrong variant
        injector.kernel_fault(FaultSite("Stream_ADD", "RAJA_Seq", 0))  # wrong trial
        with pytest.raises(InjectedKernelFault):
            injector.kernel_fault(FaultSite("Stream_ADD", "RAJA_Seq", 1))

    def test_corruption_is_deterministic(self):
        site = FaultSite(kernel="K", variant="V", trial=0)
        values = []
        for _ in range(2):
            injector = FaultInjector(
                [FaultSpec(kind=FaultKind.CHECKSUM_CORRUPTION, times=1)]
            )
            values.append(injector.corrupt_checksum(10.0, site))
        assert values[0] == values[1] != 10.0

    def test_from_config_json_and_env(self, monkeypatch):
        spec_json = (
            '[{"kind": "kernel_exception", "kernel": "Stream_TRIAD", "times": 2}]'
        )
        injector = FaultInjector.from_config(spec_json)
        assert injector.specs[0].kind is FaultKind.KERNEL_EXCEPTION
        assert injector.specs[0].times == 2
        monkeypatch.setenv("REPRO_FAULTS", spec_json)
        assert len(FaultInjector.from_env().specs) == 1
        monkeypatch.delenv("REPRO_FAULTS")
        assert FaultInjector.from_env() is None

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec"):
            FaultInjector.from_config('[{"kind": "hang", "kernelz": "X"}]')

    def test_context_manager_installs_and_restores(self):
        from repro.faults import active_injector

        assert active_injector() is None
        with FaultInjector([]) as injector:
            assert active_injector() is injector
        assert active_injector() is None

    def test_deadline_clock_advances(self):
        clock = DeadlineClock(time_fn=lambda: 100.0)
        assert clock.now() == 100.0
        clock.advance(7.5)
        assert clock.now() == 107.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestRetryBackoff:
    def test_delays_are_deterministic_given_seed(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5, seed=7)
        assert list(policy.delays()) == list(policy.delays())
        other = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5, seed=8)
        assert list(policy.delays()) != list(other.delays())

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_transient_kernel_fault_is_retried(self):
        sleeps = []
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.KERNEL_EXCEPTION,
                    kernel="Stream_TRIAD",
                    variant="RAJA_Seq",
                    times=2,
                )
            ]
        ):
            result = SuiteExecutor(
                _params(retry_base_delay=0.01, retry_jitter=0.0),
                sleep_fn=sleeps.append,
            ).run()
        report = result.report
        assert report.counts() == {"ok": 3, "retried": 1}
        (retried,) = report.retried
        assert retried.kernel == "Stream_TRIAD"
        assert retried.attempts == 3
        assert sleeps == pytest.approx([0.01, 0.02])  # exponential backoff

    def test_permanent_fault_isolates_one_kernel(self):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.KERNEL_EXCEPTION,
                    kernel="Stream_ADD",
                    variant="RAJA_Seq",
                    times=None,
                )
            ]
        ):
            result = SuiteExecutor(_params(), sleep_fn=_no_sleep).run()
        report = result.report
        assert report.counts() == {"ok": 3, "failed": 1}
        (failed,) = report.failed
        assert failed.kernel == "Stream_ADD"
        assert "InjectedKernelFault" in failed.error
        # The sweep completed: every profile still exists, including the
        # one containing the failed kernel (its region is flagged).
        assert len(result.profiles) == 2
        assert not report.clean

    def test_identical_campaigns_produce_identical_reports(self):
        def campaign():
            with FaultInjector(
                [
                    FaultSpec(
                        kind=FaultKind.KERNEL_EXCEPTION,
                        kernel="Stream_TRIAD",
                        times=1,
                    )
                ]
            ):
                result = SuiteExecutor(_params(), sleep_fn=_no_sleep).run()
            return [
                (r.kernel, r.variant, r.status, r.attempts)
                for r in result.report.records
            ]

        assert campaign() == campaign()

    def test_fail_fast_restores_abort_on_first_error(self):
        with FaultInjector(
            [FaultSpec(kind=FaultKind.KERNEL_EXCEPTION, kernel="Stream_TRIAD", times=None)]
        ):
            with pytest.raises(KernelExecutionError):
                SuiteExecutor(_params(fail_fast=True), sleep_fn=_no_sleep).run()


class TestTimeoutEnforcement:
    def test_hung_kernel_trips_the_watchdog(self):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.HANG,
                    kernel="Stream_TRIAD",
                    variant="RAJA_Seq",
                    times=None,
                    hang_seconds=120.0,
                )
            ]
        ):
            result = SuiteExecutor(
                _params(kernel_deadline_s=10.0), sleep_fn=_no_sleep
            ).run()
        (failed,) = result.report.failed
        assert failed.kernel == "Stream_TRIAD"
        assert "exceeded deadline" in failed.error

    def test_transient_hang_recovers_via_retry(self):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.HANG,
                    kernel="Stream_TRIAD",
                    variant="RAJA_Seq",
                    times=1,
                    hang_seconds=120.0,
                )
            ]
        ):
            result = SuiteExecutor(
                _params(kernel_deadline_s=10.0), sleep_fn=_no_sleep
            ).run()
        assert result.report.counts() == {"ok": 3, "retried": 1}

    def test_no_deadline_means_no_watchdog(self):
        with FaultInjector(
            [FaultSpec(kind=FaultKind.HANG, times=None, hang_seconds=1e6)]
        ):
            result = SuiteExecutor(_params(), sleep_fn=_no_sleep).run()
        assert result.report.counts() == {"ok": 4}

    def test_fail_fast_raises_timeout(self):
        with FaultInjector(
            [FaultSpec(kind=FaultKind.HANG, kernel="Stream_ADD", times=None, hang_seconds=60.0)]
        ):
            with pytest.raises(RunTimeoutError):
                SuiteExecutor(
                    _params(kernel_deadline_s=1.0, fail_fast=True), sleep_fn=_no_sleep
                ).run()


class TestCrossVariantChecksumVerification:
    def test_executed_variants_record_checksum_ok(self):
        result = SuiteExecutor(
            _params(execute=True, execution_size_cap=2_000), sleep_fn=_no_sleep
        ).run()
        for record in result.report.records:
            assert record.checksum_ok is True
        node = result.profiles[0].find(("RAJAPerf", "Stream", "Stream_TRIAD"))
        assert node.metrics["checksum_ok"] == 1.0

    def test_transient_corruption_detected_and_retried(self):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.CHECKSUM_CORRUPTION,
                    kernel="Stream_TRIAD",
                    variant="RAJA_Seq",
                    times=1,
                )
            ]
        ):
            result = SuiteExecutor(
                _params(execute=True, execution_size_cap=2_000), sleep_fn=_no_sleep
            ).run()
        assert result.report.counts() == {"ok": 3, "retried": 1}
        assert not result.report.checksum_mismatches()  # retry recovered

    def test_permanent_corruption_fails_the_kernel(self):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.CHECKSUM_CORRUPTION,
                    kernel="Stream_TRIAD",
                    variant="RAJA_Seq",
                    times=None,
                )
            ]
        ):
            result = SuiteExecutor(
                _params(execute=True, execution_size_cap=2_000), sleep_fn=_no_sleep
            ).run()
        (failed,) = result.report.failed
        assert failed.checksum_ok is False
        assert "checksum mismatch" in failed.error
        assert result.report.checksum_mismatches()

    def test_fail_fast_raises_checksum_mismatch(self):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.CHECKSUM_CORRUPTION,
                    variant="RAJA_Seq",
                    times=None,
                )
            ]
        ):
            with pytest.raises(ChecksumMismatchError):
                SuiteExecutor(
                    _params(execute=True, execution_size_cap=2_000, fail_fast=True),
                    sleep_fn=_no_sleep,
                ).run()


class TestAtomicProfileWrites:
    def test_transient_io_fault_retried_files_valid(self, tmp_path):
        with FaultInjector(
            [FaultSpec(kind=FaultKind.IO_WRITE_FAILURE, path="*Base_Seq*", times=1)]
        ):
            result = SuiteExecutor(_params(tmp_path), sleep_fn=_no_sleep).run(
                write_files=True
            )
        assert len(result.cali_paths) == 2
        from repro.caliper import read_cali

        for path in result.cali_paths:
            read_cali(path)  # every final file parses

    def test_permanent_io_fault_leaves_no_truncated_cali(self, tmp_path):
        with FaultInjector(
            [FaultSpec(kind=FaultKind.IO_WRITE_FAILURE, path="*Base_Seq*", times=None)]
        ):
            result = SuiteExecutor(_params(tmp_path), sleep_fn=_no_sleep).run(
                write_files=True
            )
        assert len(result.cali_paths) == 1  # only the RAJA_Seq profile landed
        # The interrupted write left a .tmp sibling at most — never a
        # truncated .cali that analyze would later choke on.
        cali_files = sorted(p.name for p in tmp_path.glob("*.cali"))
        assert cali_files == ["rajaperf_SPR-DDR_RAJA_Seq_default.cali"]
        assert result.report.failed_cells() == ["SPR-DDR|Base_Seq|default|trial0"]


class TestCheckpointResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        first = SuiteExecutor(_params(tmp_path), sleep_fn=_no_sleep).run(
            write_files=True
        )
        assert (tmp_path / MANIFEST_NAME).exists()
        assert len(first.profiles) == 2
        resumed = SuiteExecutor(_params(tmp_path, resume=True), sleep_fn=_no_sleep).run(
            write_files=True
        )
        assert len(resumed.profiles) == 0
        assert resumed.report.cell_counts() == {"skipped": 2}

    def test_resume_reruns_only_the_failed_cell(self, tmp_path):
        with FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.KERNEL_EXCEPTION,
                    kernel="Stream_ADD",
                    variant="RAJA_Seq",
                    times=None,
                )
            ]
        ):
            first = SuiteExecutor(_params(tmp_path), sleep_fn=_no_sleep).run(
                write_files=True
            )
        assert first.report.failed_cells() == ["SPR-DDR|RAJA_Seq|default|trial0"]
        # Re-invoke with --resume and the fault gone: only the failed
        # cell runs again, and this time it completes.
        resumed = SuiteExecutor(_params(tmp_path, resume=True), sleep_fn=_no_sleep).run(
            write_files=True
        )
        assert len(resumed.profiles) == 1
        assert resumed.report.cells == {
            "SPR-DDR|Base_Seq|default|trial0": "skipped",
            "SPR-DDR|RAJA_Seq|default|trial0": "ok",
        }
        assert resumed.report.clean

    def test_acceptance_scenario_paper_sweep(self, tmp_path):
        """The ISSUE's acceptance bar: 3 transient faults + 1 permanent
        fault planted into a Table III sweep; the run completes with 3
        retried and 1 failed, all other profiles land on disk, and
        --resume re-runs only the failed cell."""
        params = _params(
            tmp_path,
            variants=("Base_Seq", "RAJA_Seq"),
            machines=("SPR-DDR", "SPR-HBM"),
            kernels=("Stream_TRIAD", "Stream_ADD", "Stream_COPY"),
        )
        specs = [
            FaultSpec(kind=FaultKind.KERNEL_EXCEPTION, kernel="Stream_TRIAD",
                      variant="RAJA_Seq", machine="SPR-DDR", times=1),
            FaultSpec(kind=FaultKind.KERNEL_EXCEPTION, kernel="Stream_ADD",
                      variant="Base_Seq", machine="SPR-HBM", times=1),
            FaultSpec(kind=FaultKind.KERNEL_EXCEPTION, kernel="Stream_COPY",
                      variant="RAJA_Seq", machine="SPR-HBM", times=1),
            FaultSpec(kind=FaultKind.KERNEL_EXCEPTION, kernel="Stream_COPY",
                      variant="Base_Seq", machine="SPR-DDR", times=None),
        ]
        with FaultInjector(specs):
            result = SuiteExecutor(params, sleep_fn=_no_sleep).run(write_files=True)
        counts = result.report.counts()
        assert counts["retried"] == 3
        assert counts["failed"] == 1
        assert len(result.cali_paths) == 4  # every cell's profile landed
        assert result.report.failed_cells() == ["SPR-DDR|Base_Seq|default|trial0"]

        resumed = SuiteExecutor(
            _params(
                tmp_path,
                resume=True,
                variants=("Base_Seq", "RAJA_Seq"),
                machines=("SPR-DDR", "SPR-HBM"),
                kernels=("Stream_TRIAD", "Stream_ADD", "Stream_COPY"),
            ),
            sleep_fn=_no_sleep,
        ).run(write_files=True)
        assert len(resumed.profiles) == 1
        assert resumed.report.cell_counts() == {"skipped": 3, "ok": 1}

    def test_manifest_fingerprint_mismatch_warns(self, tmp_path):
        SuiteExecutor(_params(tmp_path), sleep_fn=_no_sleep).run(write_files=True)
        changed = _params(tmp_path, resume=True, kernels=("Stream_TRIAD",))
        with pytest.warns(UserWarning, match="different configuration"):
            SuiteExecutor(changed, sleep_fn=_no_sleep).run(write_files=True)


class TestDegradedModeAnalysis:
    def _campaign(self, tmp_path):
        return SuiteExecutor(_params(tmp_path), sleep_fn=_no_sleep).run(
            write_files=True
        )

    def test_corrupt_cali_warns_and_survivors_analyzed(self, tmp_path):
        result = self._campaign(tmp_path)
        corrupt = tmp_path / "corrupt.cali"
        corrupt.write_text('{"format": "cali-json", "version": 1, "glo')  # truncated
        missing = tmp_path / "never_written.cali"
        sources = [*result.cali_paths, corrupt, missing]
        with pytest.warns(ProfileLoadWarning):
            thicket = Thicket.from_caliperreader(sources, on_error="warn")
        assert len(thicket.profiles) == 2
        assert len(thicket.load_errors) == 2
        regions, _, matrix = thicket.metric_matrix(
            "Avg time/rank", region_filter=lambda s: "_" in s
        )
        assert regions and np.isfinite(matrix).all()

    def test_strict_mode_still_raises(self, tmp_path):
        corrupt = tmp_path / "corrupt.cali"
        corrupt.write_text("not json at all")
        with pytest.raises(ValueError):
            Thicket.from_caliperreader([corrupt])

    def test_all_sources_corrupt_is_an_error(self, tmp_path):
        corrupt = tmp_path / "corrupt.cali"
        corrupt.write_text("garbage")
        with pytest.warns(ProfileLoadWarning):
            with pytest.raises(ValueError, match="no readable profiles"):
                Thicket.from_caliperreader([corrupt], on_error="warn")

    def test_cli_analyze_tolerates_corrupt_file(self, tmp_path, capsys):
        from repro.cli.main import main

        result = self._campaign(tmp_path)
        corrupt = tmp_path / "corrupt.cali"
        corrupt.write_text("{ nope")
        code = main(["analyze", str(corrupt), *[str(p) for p in result.cali_paths]])
        captured = capsys.readouterr()
        # Analysis completes on the survivors but exits with the
        # distinct degraded-mode code so schedulers can tell the
        # difference from a fully clean analysis.
        from repro.cli import exitcodes

        assert code == exitcodes.DEGRADED_ANALYSIS
        assert "warning:" in captured.err
        assert "degraded" in captured.err
        assert "Thicket(2 profiles" in captured.out

    def test_cli_analyze_strict_crashes_on_corrupt_file(self, tmp_path):
        from repro.cli.main import main

        corrupt = tmp_path / "corrupt.cali"
        corrupt.write_text("{ nope")
        with pytest.raises(ValueError):
            main(["analyze", "--strict", str(corrupt)])


class TestVariantProbeCaching:
    def test_class_variants_requires_no_instance(self):
        from repro.suite.kernel_base import KernelBase

        assert StreamTriad.class_variants() == StreamTriad(1).variants()
        # Cached per class, not inherited across subclasses.
        assert StreamTriad.class_variants() is StreamTriad.class_variants()
        assert (
            "_VARIANTS_CACHE" in StreamTriad.__dict__
            or StreamTriad.class_variants() is not None
        )
        assert KernelBase.__dict__.get("_VARIANTS_CACHE") is not StreamTriad.__dict__.get(
            "_VARIANTS_CACHE"
        )

    def test_subclass_override_not_shadowed_by_parent_cache(self):
        from repro.rajasim.policies import Backend

        base_variants = StreamTriad.class_variants()

        class NarrowTriad(StreamTriad):
            BACKENDS = (Backend.SEQUENTIAL,)

        expected = 2 + (1 if NarrowTriad.HAS_KOKKOS else 0)
        assert len(NarrowTriad.class_variants()) == expected
        assert StreamTriad.class_variants() == base_variants
