"""Caliper annotation/profiles/ConfigManager and Adiak metadata."""

import pytest

from repro import adiak
from repro.caliper import (
    CaliperSession,
    ConfigManager,
    annotate,
    read_cali,
    region,
    set_session,
    write_cali,
)
from repro.caliper.records import CaliProfile, RegionRecord


class TestRegions:
    def test_nesting_builds_tree(self):
        session = CaliperSession(collect_time=False)
        with session.region("RAJAPerf"):
            with session.region("Stream"):
                with session.region("Stream_TRIAD"):
                    session.set_metric("flops", 2.0)
        profile = session.close()
        node = profile.find(("RAJAPerf", "Stream", "Stream_TRIAD"))
        assert node is not None and node.metrics["flops"] == 2.0

    def test_time_collected(self):
        session = CaliperSession()
        with session.region("work"):
            sum(range(1000))
        profile = session.close()
        assert profile.roots[0].metrics[CaliperSession.TIME_METRIC] > 0

    def test_metric_accumulates_on_reentry(self):
        session = CaliperSession(collect_time=False)
        for _ in range(3):
            with session.region("k"):
                session.set_metric("count", 1.0)
        assert session.close().roots[0].metrics["count"] == 3.0

    def test_mismatched_end_raises(self):
        session = CaliperSession()
        session.begin_region("a")
        with pytest.raises(RuntimeError):
            session.end_region("b")

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            CaliperSession().end_region()

    def test_close_with_open_region_raises(self):
        session = CaliperSession()
        session.begin_region("open")
        with pytest.raises(RuntimeError):
            session.close()

    def test_metric_outside_region_raises(self):
        with pytest.raises(RuntimeError):
            CaliperSession().set_metric("x", 1.0)

    def test_empty_region_name_rejected(self):
        with pytest.raises(ValueError):
            CaliperSession().begin_region("")

    def test_decorator_uses_default_session(self):
        session = CaliperSession(collect_time=False)
        old = set_session(session)
        try:
            @annotate("decorated")
            def work():
                return 42

            assert work() == 42
            with region("ctx"):
                pass
        finally:
            set_session(old)
        profile = session.close()
        assert {r.name for r in profile.roots} == {"decorated", "ctx"}


class TestRecords:
    def test_path_invariant(self):
        with pytest.raises(ValueError):
            RegionRecord(name="a", path=("b",))

    def test_child_idempotent(self):
        node = RegionRecord(name="a", path=("a",))
        c1 = node.child("b")
        c2 = node.child("b")
        assert c1 is c2 and len(node.children) == 1

    def test_walk_depth_first(self):
        profile = CaliProfile()
        root = profile.root("r")
        root.child("x").child("y")
        root.child("z")
        names = [n.name for n in profile.walk()]
        assert names == ["r", "x", "y", "z"]


class TestCaliIO:
    def _profile(self):
        session = CaliperSession(collect_time=False)
        session.set_global("variant", "RAJA_CUDA")
        session.set_global("problem_size", 32_000_000)
        with session.region("RAJAPerf"):
            with session.region("Stream_TRIAD"):
                session.set_metric("Avg time/rank", 1.5e-3)
        return session.close()

    def test_roundtrip(self, tmp_path):
        profile = self._profile()
        path = write_cali(profile, tmp_path / "run.cali")
        loaded = read_cali(path)
        assert loaded.globals == profile.globals
        node = loaded.find(("RAJAPerf", "Stream_TRIAD"))
        assert node.metrics["Avg time/rank"] == pytest.approx(1.5e-3)

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.cali"
        path.write_text('{"format": "not-cali"}')
        with pytest.raises(ValueError):
            read_cali(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.cali"
        path.write_text('{"format": "cali-json", "version": 999}')
        with pytest.raises(ValueError):
            read_cali(path)


class TestConfigManager:
    def test_simple_config(self):
        mgr = ConfigManager("runtime-report")
        assert mgr.error() is None and mgr.enabled("runtime-report")

    def test_options_parsed(self):
        mgr = ConfigManager("spot(output=x.cali,time.exclusive=true)")
        entry = mgr.get("spot")
        assert entry.options["output"] == "x.cali"
        assert entry.option_bool("time.exclusive") is True
        assert mgr.output_path() == "x.cali"

    def test_multiple_configs(self):
        mgr = ConfigManager("runtime-report,spot(output=a.cali)")
        assert mgr.enabled("runtime-report") and mgr.enabled("spot")

    def test_unknown_config_reports_error(self):
        mgr = ConfigManager("frobnicator")
        assert mgr.error() is not None
        assert not mgr.enabled("frobnicator")

    def test_unbalanced_parens(self):
        assert ConfigManager("spot(output=x").error() is not None
        assert ConfigManager("spot)x(").error() is not None

    def test_malformed_option(self):
        assert ConfigManager("spot(nonsense)").error() is not None

    def test_empty_spec_ok(self):
        assert ConfigManager("").error() is None


class TestAdiak:
    def test_lifecycle(self):
        adiak.init()
        adiak.value("variant", "RAJA_Seq")
        adiak.collect_all()
        meta = adiak.fini()
        assert meta["variant"] == "RAJA_Seq"
        assert "user" in meta and "launchdate" in meta
        assert not adiak.is_active()

    def test_use_before_init_raises(self):
        if adiak.is_active():
            adiak.fini()
        with pytest.raises(adiak.AdiakError):
            adiak.value("x", 1)
        with pytest.raises(adiak.AdiakError):
            adiak.fini()

    def test_empty_name_rejected(self):
        adiak.init()
        try:
            with pytest.raises(ValueError):
                adiak.value("", 1)
        finally:
            adiak.fini()
