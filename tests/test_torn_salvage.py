"""Torn-write salvage sweeps: every byte-boundary truncation is safe.

A torn write leaves an arbitrary prefix of the in-flight bytes on disk.
These sweeps truncate a sealed ``.calipack`` archive at *every* byte
boundary of its final entry, index, and footer, and a cache sidecar at
every boundary, asserting the recovery contract at each one:

* archive: :func:`~repro.caliper.calipack.load_entries` either salvages
  (returning entries whose bytes verify against the original) or raises
  an explicit :class:`~repro.caliper.calipack.CalipackError` — it never
  hands back wrong bytes;
* ingest cache: :func:`~repro.thicket.ingest_cache.load` always reports
  a silent miss (``None``) — never an exception, never a stale hit;
* job store: every truncation or bit-flip of a sealed job record or
  retention tombstone either raises the explicit damage error
  (:class:`~repro.service.jobstore.JobRecordDamaged` /
  :class:`~repro.service.jobstore.TombstoneDamaged`) or resolves to the
  byte-identical payload — a torn tombstone can never condemn a
  different job.
"""

import json
import zlib

import numpy as np
import pytest

from repro.caliper import calipack
from repro.caliper.cali import footer_line
from repro.dataframe import Frame
from repro.service import jobstore
from repro.thicket import ingest_cache


def _sealed_payload(tag: str, size: int = 40) -> bytes:
    """A minimal sealed .cali byte string with deterministic content."""
    body = json.dumps({"tag": tag, "pad": "x" * size}).encode()
    return body + b"\n" + footer_line(body).encode() + b"\n"


@pytest.fixture
def archive(tmp_path):
    """A sealed two-entry archive plus its pristine bytes and payloads."""
    path = tmp_path / "campaign.calipack"
    payloads = {
        "a.cali": _sealed_payload("a"),
        "b.cali": _sealed_payload("b"),
    }
    writer = calipack.CalipackWriter(path)
    for name, data in payloads.items():
        writer.append_bytes(name, data)
    writer.close()
    return path, path.read_bytes(), payloads


def _entry_b_offset(pristine: bytes) -> int:
    """Byte offset where the final entry's framing header starts."""
    at = pristine.find(b"#calipack-entry name=b.cali ")
    assert at > 0
    return at


class TestArchiveTruncationSweep:
    def test_every_boundary_salvages_or_errors(self, tmp_path, archive):
        path, pristine, payloads = archive
        start = _entry_b_offset(pristine)
        wrong = []
        for cut in range(start, len(pristine)):
            path.write_bytes(pristine[:cut])
            try:
                entries = calipack.load_entries(path)
            except calipack.CalipackError:
                continue  # explicit error: acceptable
            for entry in entries:
                try:
                    data = calipack.read_entry_bytes(path, entry, verify=True)
                except ValueError:
                    continue  # explicit per-entry error: acceptable
                if data != payloads.get(entry.name):
                    wrong.append((cut, entry.name))
        assert not wrong, f"wrong bytes served at truncations: {wrong[:5]}"

    def test_truncation_before_final_entry_keeps_first(self, archive):
        path, pristine, payloads = archive
        path.write_bytes(pristine[: _entry_b_offset(pristine)])
        entries = calipack.load_entries(path)  # salvage scan, no footer
        assert [e.name for e in entries] == ["a.cali"]
        assert calipack.read_entry_bytes(path, entries[0]) == payloads["a.cali"]

    def test_mid_final_entry_drops_partial_tail(self, archive):
        path, pristine, payloads = archive
        start = _entry_b_offset(pristine)
        # cut inside b's payload: salvage must drop b, keep a
        path.write_bytes(pristine[: start + 40])
        names = {e.name for e in calipack.load_entries(path)}
        assert "a.cali" in names
        if "b.cali" in names:  # only acceptable if the bytes still verify
            entry = calipack.find_entry(path, "b.cali")
            assert calipack.read_entry_bytes(path, entry) == payloads["b.cali"]

    def test_footer_only_torn_still_full_archive(self, archive):
        path, pristine, payloads = archive
        footer_at = pristine.rfind(b"#calipack-footer ")
        for cut in range(footer_at, len(pristine)):
            path.write_bytes(pristine[:cut])
            entries = calipack.load_entries(path)  # falls back to scan
            assert {e.name for e in entries} == set(payloads)
            for entry in entries:
                got = calipack.read_entry_bytes(path, entry, verify=True)
                assert got == payloads[entry.name]

    def test_index_torn_preserves_all_entries(self, archive):
        path, pristine, payloads = archive
        index_at = pristine.rfind(b'{"format"')
        footer_at = pristine.rfind(b"#calipack-footer ")
        assert 0 < index_at < footer_at
        for cut in range(index_at, footer_at):
            path.write_bytes(pristine[:cut])
            entries = calipack.load_entries(path)
            assert {e.name for e in entries} == set(payloads)

    def test_corrupt_index_crc_is_explicit(self, archive):
        path, pristine, payloads = archive
        index_at = pristine.rfind(b'{"format"')
        mutated = bytearray(pristine)
        mutated[index_at + 2] ^= 0xFF  # damage the index, keep the footer
        path.write_bytes(bytes(mutated))
        with pytest.raises(calipack.CalipackError, match="CRC"):
            calipack.load_index(path)
        # the salvage path still recovers every entry byte-for-byte
        entries = calipack.load_entries(path)
        assert {e.name for e in entries} == set(payloads)

    def test_seeded_sweep_is_deterministic(self, archive):
        from repro.chaos.points import _torn_prefix

        _, pristine, _ = archive
        span = len(pristine)
        cuts = [_torn_prefix(seed, "campaign.calipack", span)
                for seed in range(8)]
        assert cuts == [_torn_prefix(seed, "campaign.calipack", span)
                        for seed in range(8)]
        assert all(0 <= c <= span for c in cuts)


# ------------------------------------------------------------ ingest cache
@pytest.fixture
def cache_entry(tmp_path):
    """A stored cache entry plus its sources key and pristine bytes."""
    dataframe = Frame({
        "name": np.array(["daxpy", "triad"], dtype=object),
        "Avg time/rank": np.array([1.5, 2.5]),
    })
    metadata = Frame({"profile": np.array(["p1", "p2"], dtype=object)})
    sources = [("a.cali", "00000001"), ("b.cali", "00000002")]
    cache_dir = tmp_path / ingest_cache.CACHE_DIR_NAME
    path = ingest_cache.store(cache_dir, sources, dataframe, metadata)
    return cache_dir, sources, path, path.read_bytes()


class TestCacheSidecarTruncationSweep:
    def test_intact_entry_hits(self, cache_entry):
        cache_dir, sources, _, _ = cache_entry
        hit = ingest_cache.load(cache_dir, sources)
        assert hit is not None
        dataframe, metadata = hit
        assert list(dataframe["Avg time/rank"]) == [1.5, 2.5]
        assert list(metadata["profile"]) == ["p1", "p2"]

    def test_every_truncation_is_silent_miss(self, cache_entry):
        cache_dir, sources, path, pristine = cache_entry
        for cut in range(len(pristine)):
            path.write_bytes(pristine[:cut])
            assert ingest_cache.load(cache_dir, sources) is None, (
                f"truncation at byte {cut} was not a silent miss"
            )

    def test_every_single_byte_flip_is_silent_miss_or_identical(
        self, cache_entry
    ):
        cache_dir, sources, path, pristine = cache_entry
        # sample a seeded spread of positions rather than every byte
        positions = sorted(
            {zlib.crc32(f"flip:{i}".encode()) % len(pristine)
             for i in range(64)}
        )
        for pos in positions:
            mutated = bytearray(pristine)
            mutated[pos] ^= 0xFF
            path.write_bytes(bytes(mutated))
            assert ingest_cache.load(cache_dir, sources) is None, (
                f"corrupt byte {pos} produced a hit"
            )

    def test_changed_source_set_never_hits(self, cache_entry):
        cache_dir, sources, _, _ = cache_entry
        resealed = [(name, "deadbeef") for name, _ in sources]
        assert ingest_cache.load(cache_dir, resealed) is None

    def test_renamed_entry_never_hits(self, cache_entry):
        cache_dir, sources, path, pristine = cache_entry
        other = [("c.cali", "00000003")]
        imposter = ingest_cache.cache_path(cache_dir, ingest_cache.cache_key(other))
        imposter.write_bytes(pristine)  # hand-renamed stale entry
        assert ingest_cache.load(cache_dir, other) is None


# -------------------------------------------------------- job-store seals
@pytest.fixture
def sealed_record():
    """A sealed job record's text plus its canonical payload."""
    record = jobstore.JobRecord(
        job_id="torn-test",
        tenant="acme",
        spec={"problem_size": 1024, "kernels": ["Basic_DAXPY"]},
        state=jobstore.STATE_SUCCEEDED,
        seq=7,
    )
    return jobstore.seal_record(record), record.to_payload()


class TestJobRecordTruncationSweep:
    def test_every_truncation_is_damaged_or_identical(self, sealed_record):
        text, payload = sealed_record
        for cut in range(len(text)):
            try:
                got = jobstore.parse_record_text(text[:cut])
            except jobstore.JobRecordDamaged:
                continue  # explicit damage: acceptable
            # a prefix that still parses must resolve to the same record
            assert got.to_payload() == payload, f"misparse at byte {cut}"

    def test_seeded_byte_flips_never_misparse(self, sealed_record):
        text, payload = sealed_record
        positions = sorted(
            {zlib.crc32(f"flip:{i}".encode()) % len(text)
             for i in range(64)}
        )
        for pos in positions:
            mutated = text[:pos] + chr(ord(text[pos]) ^ 0x01) + text[pos + 1:]
            try:
                got = jobstore.parse_record_text(mutated)
            except jobstore.JobRecordDamaged:
                continue
            assert got.to_payload() == payload, f"misparse at byte {pos}"


class TestTombstoneTruncationSweep:
    """A tombstone authorizes destruction: a torn one must condemn
    nothing (damage is explicit), never resolve to a different job."""

    PAYLOAD = {
        "job_id": "torn-test",
        "tenant": "acme",
        "state": jobstore.STATE_SUCCEEDED,
        "reason": "retention policy",
        "condemned_at": "2026-08-08T00:00:00",
    }

    def test_every_truncation_is_damaged_or_identical(self):
        text = jobstore.seal_tombstone(self.PAYLOAD)
        for cut in range(len(text)):
            try:
                got = jobstore.parse_tombstone_text(text[:cut])
            except jobstore.TombstoneDamaged:
                continue  # explicit damage: condemns nothing
            assert got == self.PAYLOAD, f"misparse at byte {cut}"

    def test_seeded_byte_flips_never_misparse(self):
        text = jobstore.seal_tombstone(self.PAYLOAD)
        positions = sorted(
            {zlib.crc32(f"flip:{i}".encode()) % len(text)
             for i in range(64)}
        )
        for pos in positions:
            mutated = text[:pos] + chr(ord(text[pos]) ^ 0x01) + text[pos + 1:]
            try:
                got = jobstore.parse_tombstone_text(mutated)
            except jobstore.TombstoneDamaged:
                continue
            assert got == self.PAYLOAD, f"misparse at byte {pos}"
