"""Sharded scale-out campaigns: partition, heal, merge, converge.

A campaign under ``--shards N`` must be *indistinguishable* from a
single-supervisor run once merged — bit-for-bit — and must survive
process-level failure at the shard layer: a shard killed mid-write is
healed in flight by the coordinator, a killed coordinator converges via
``fsck`` + ``run --resume``, and a shard that keeps dying is retired
with its residue reassigned to the survivors.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os

import pytest

from repro.caliper import calipack
from repro.chaos import invariants
from repro.chaos.points import CHAOS_KILL_EXITCODE, ChaosSchedule, arm
from repro.cli.main import main
from repro.suite.coordinator import ShardMap, shard_status
from repro.suite.errors import CampaignLockedError
from repro.suite.executor import SuiteExecutor
from repro.suite.fsck import fsck_directory
from repro.suite.manifest import LOCK_NAME, MANIFEST_NAME, CampaignLock
from repro.suite.run_params import RunParams
from repro.suite.shard import SHARD_DIR

_CTX = multiprocessing.get_context("fork")


def _params(outdir, shards=2, **overrides) -> RunParams:
    defaults = dict(
        problem_size=1024,
        machines=("SPR-DDR",),
        variants=("Base_Seq", "RAJA_Seq"),
        kernels=("Basic_DAXPY", "Stream_TRIAD"),
        trials=2,
        pack=True,
        output_dir=str(outdir),
        shards=shards,
        shard_lease_timeout=10.0,
        max_attempts=3,
        retry_base_delay=0.0,
        retry_max_delay=0.0,
        retry_jitter=0.0,
        heartbeat_timeout=10.0,
    )
    defaults.update(overrides)
    return RunParams(**defaults)


def _manifest_cells(outdir):
    return json.loads((outdir / MANIFEST_NAME).read_text())["cells"]


def _expected_keys(params) -> set[str]:
    return {cell.key for cell in SuiteExecutor(params).build_cells()}


def _archive_bytes(outdir) -> bytes:
    return (outdir / calipack.ARCHIVE_NAME).read_bytes()


def _thicket(outdir):
    from repro.thicket import Thicket

    archive = outdir / calipack.ARCHIVE_NAME
    names = sorted(e.name for e in calipack.load_entries(archive))
    return Thicket.from_caliperreader(
        [calipack.member_ref(archive, n) for n in names]
    )


def _armed_campaign(params, schedule):
    arm(schedule)
    SuiteExecutor(params).run(write_files=True)


def _run_armed(params, schedule) -> int:
    child = _CTX.Process(target=_armed_campaign, args=(params, schedule))
    child.start()
    child.join(120)
    assert not child.is_alive()
    return child.exitcode


def _schedule(point, token, hit=1) -> ChaosSchedule:
    return ChaosSchedule(
        point=point, hit=hit, mode="exit", torn=False, seed=0, token=str(token)
    )


# --------------------------------------------------------------- equivalence
def test_sharded_run_is_bit_identical_to_single_supervisor(tmp_path):
    single = SuiteExecutor(_params(tmp_path / "single", shards=0)).run(
        write_files=True
    )
    sharded = SuiteExecutor(_params(tmp_path / "sharded", shards=3)).run(
        write_files=True
    )
    assert single.report.clean and sharded.report.clean
    assert _archive_bytes(tmp_path / "single") == _archive_bytes(
        tmp_path / "sharded"
    )
    assert invariants.thickets_match(
        _thicket(tmp_path / "single"), _thicket(tmp_path / "sharded")
    ) == []
    # cell records reference the *merged* campaign archive, not a shard
    for path in sharded.cali_paths:
        ref = calipack.split_member_ref(str(path))
        assert ref is not None
        assert ref[0] == str(tmp_path / "sharded" / calipack.ARCHIVE_NAME)
    assert not (tmp_path / "sharded" / LOCK_NAME).exists()


def test_more_shards_than_cells_completes(tmp_path):
    params = _params(tmp_path, shards=8, trials=1, kernels=("Basic_DAXPY",))
    result = SuiteExecutor(params).run(write_files=True)
    assert result.report.clean
    assert set(_manifest_cells(tmp_path)) == _expected_keys(params)


# ------------------------------------------------------------------- healing
def test_shard_killed_mid_write_is_healed_in_flight(tmp_path):
    """A shard dying mid-archive-append costs one respawn, never the
    campaign: the coordinator fscks the shard dir and re-runs it with
    resume, and the merged result still matches an unsharded run."""
    golden_dir = tmp_path / "golden"
    assert SuiteExecutor(_params(golden_dir, shards=0)).run(
        write_files=True
    ).report.clean

    outdir = tmp_path / "campaign"
    params = _params(outdir)
    token = tmp_path / "strike.token"
    code = _run_armed(
        params, _schedule("calipack.mid-entry-append", token)
    )
    assert code == 0  # the coordinator survived and completed
    assert token.exists()  # ...and a shard really did die mid-write
    cells = _manifest_cells(outdir)
    assert set(cells) == _expected_keys(params)
    assert all(entry["status"] == "ok" for entry in cells.values())
    assert _archive_bytes(outdir) == _archive_bytes(golden_dir)
    assert invariants.check_shard_campaign(_expected_keys(params), outdir) == []


def test_coordinator_killed_mid_campaign_converges_via_fsck_resume(tmp_path):
    golden_dir = tmp_path / "golden"
    assert SuiteExecutor(_params(golden_dir, shards=0)).run(
        write_files=True
    ).report.clean

    outdir = tmp_path / "campaign"
    params = _params(outdir)
    token = tmp_path / "strike.token"
    code = _run_armed(params, _schedule("shard.post-shard-exit", token))
    assert code == CHAOS_KILL_EXITCODE
    assert token.exists()

    fsck_directory(outdir)
    resumed = SuiteExecutor(
        dataclasses.replace(params, resume=True)
    ).run(write_files=True)
    assert resumed.report.clean
    cells = _manifest_cells(outdir)
    assert set(cells) == _expected_keys(params)
    assert all(entry["status"] == "ok" for entry in cells.values())
    assert _archive_bytes(outdir) == _archive_bytes(golden_dir)
    assert invariants.check_shard_campaign(_expected_keys(params), outdir) == []
    assert fsck_directory(outdir).clean


def test_repeatedly_dying_shard_is_retired_and_residue_reassigned(tmp_path):
    """With the respawn budget exhausted the coordinator retires the
    shard and deals its unfinished cells to the survivors instead of
    failing the campaign."""
    golden_dir = tmp_path / "golden"
    assert SuiteExecutor(
        _params(golden_dir, shards=0, max_attempts=1)
    ).run(write_files=True).report.clean

    outdir = tmp_path / "campaign"
    params = _params(outdir, max_attempts=1)  # first death retires
    token = tmp_path / "strike.token"
    code = _run_armed(
        params, _schedule("calipack.mid-entry-append", token)
    )
    assert code == 0
    assert token.exists()

    shard_map = ShardMap.load(outdir)
    assert shard_map is not None
    assert len(shard_map.retired) == 1
    cells = _manifest_cells(outdir)
    assert set(cells) == _expected_keys(params)
    assert all(entry["status"] == "ok" for entry in cells.values())
    assert _archive_bytes(outdir) == _archive_bytes(golden_dir)
    assert invariants.check_shard_campaign(_expected_keys(params), outdir) == []


# ------------------------------------------------- cost-model partitioning
def test_lpt_partition_merges_bit_identical_to_round_robin(tmp_path):
    """The partition strategy decides which shard runs a cell, never
    what the cell produces: LPT and round-robin sharded campaigns merge
    to byte-identical archives, and the map records how it was cut."""
    fifo_dir, lpt_dir = tmp_path / "fifo", tmp_path / "lpt"
    assert SuiteExecutor(
        _params(fifo_dir, shards=3, schedule="fifo")
    ).run(write_files=True).report.clean
    assert SuiteExecutor(
        _params(lpt_dir, shards=3, schedule="lpt")
    ).run(write_files=True).report.clean

    assert _archive_bytes(fifo_dir) == _archive_bytes(lpt_dir)
    assert ShardMap.load(fifo_dir).strategy == "round_robin"
    assert ShardMap.load(lpt_dir).strategy == "lpt"


def test_legacy_strategyless_map_adopts_as_round_robin(tmp_path):
    """Shard maps written before the cost-model scheduler carry no
    strategy key: they load as round_robin and a resume adopts the
    existing assignment verbatim even under ``--schedule lpt``."""
    params = _params(tmp_path, shards=2, schedule="fifo")
    assert SuiteExecutor(params).run(write_files=True).report.clean
    golden = _archive_bytes(tmp_path)

    map_path = tmp_path / "shard_map.json"
    payload = json.loads(map_path.read_text())
    assignment_before = payload.pop("strategy") and payload["assignment"]
    map_path.write_text(json.dumps(payload))

    legacy = ShardMap.load(tmp_path)
    assert legacy is not None
    assert legacy.strategy == "round_robin"

    resumed = SuiteExecutor(
        dataclasses.replace(params, resume=True, schedule="lpt")
    ).run(write_files=True)
    assert resumed.report.clean
    adopted = ShardMap.load(tmp_path)
    assert adopted.strategy == "round_robin"  # adoption never re-cuts
    assert adopted.assignment == assignment_before
    assert _archive_bytes(tmp_path) == golden


def test_shard_status_shows_estimated_cost_and_balance(tmp_path):
    """On a cost-skewed campaign the status report carries the per-shard
    estimated-cost column, the partition strategy, and the balance
    ratio of the cut."""
    params = _params(
        tmp_path,
        shards=2,
        machines=("SPR-DDR", "P9-V100"),
        variants=("Base_Seq", "RAJA_Seq", "RAJA_CUDA"),
        gpu_block_sizes=(8,),
    )
    assert SuiteExecutor(params).run(write_files=True).report.clean

    text = shard_status(tmp_path)
    assert "lpt partition" in text
    assert "cost~" in text
    ratio_lines = [
        line
        for line in text.splitlines()
        if "estimated cost balance (max/min):" in line
    ]
    assert len(ratio_lines) == 1
    assert float(ratio_lines[0].rsplit(":", 1)[1]) >= 1.0


# ------------------------------------------------------------ status + fsck
def test_shard_status_reports_per_shard_progress(tmp_path, capsys):
    params = _params(tmp_path)
    SuiteExecutor(params).run(write_files=True)
    text = shard_status(tmp_path)
    assert "2 shard(s)" in text
    assert "shard-0:" in text and "shard-1:" in text
    assert "campaign archive: campaign.calipack (present)" in text

    assert main(["shard-status", str(tmp_path)]) == 0
    capsys.readouterr()
    plain = tmp_path / "plain"
    plain.mkdir()
    assert main(["shard-status", str(plain)]) == 1


def test_fsck_recurses_into_shards_and_quarantines_orphan_dirs(tmp_path):
    params = _params(tmp_path)
    SuiteExecutor(params).run(write_files=True)

    orphan = tmp_path / SHARD_DIR / "shard-9"
    orphan.mkdir()
    (orphan / "junk.txt").write_text("leftover of a wider partition")

    report = fsck_directory(tmp_path)
    assert len(report.shard_reports) == 2  # the two live shard dirs
    assert all(sub.clean for sub in report.shard_reports)
    assert (tmp_path / "quarantine" / "shard-9" / "junk.txt").exists()
    assert not orphan.exists()
    assert any("orphan shard directory" in note for note in report.notes)
    assert invariants.check_shard_campaign(_expected_keys(params), tmp_path) == []


def test_fsck_backs_up_unreadable_shard_map(tmp_path):
    SuiteExecutor(_params(tmp_path)).run(write_files=True)
    (tmp_path / "shard_map.json").write_text("{ torn")
    with pytest.warns(UserWarning, match="unreadable shard map"):
        report = fsck_directory(tmp_path)
    assert (tmp_path / "shard_map.json.bak").exists()
    assert any("shard map" in note for note in report.notes)


# ----------------------------------------------------- lock takeover races
def _noop():
    pass


def _contend(outdir, barrier, queue):
    barrier.wait()
    try:
        lock = CampaignLock.acquire(outdir)
        queue.put(("won", os.getpid()))
        lock.release()
    except CampaignLockedError:
        queue.put(("locked", os.getpid()))


def test_stale_lease_takeover_race_has_exactly_one_winner(tmp_path):
    """Two contenders racing for one expired lease: exactly one wins,
    the other fails with the same clean CampaignLockedError a live
    lease produces — never a second concurrent holder."""
    dead = _CTX.Process(target=_noop)
    dead.start()
    dead.join()
    (tmp_path / LOCK_NAME).write_text(
        json.dumps({"pid": dead.pid, "acquired_at": "2026-01-01T00:00:00"})
    )

    barrier = _CTX.Barrier(2)
    queue = _CTX.Queue()
    contenders = [
        _CTX.Process(target=_contend, args=(tmp_path, barrier, queue))
        for _ in range(2)
    ]
    for p in contenders:
        p.start()
    for p in contenders:
        p.join(30)
        assert p.exitcode == 0
    outcomes = sorted(queue.get(timeout=5)[0] for _ in range(2))
    assert outcomes == ["locked", "won"]
    # no takeover token left behind to wedge the next contender
    assert not (tmp_path / (LOCK_NAME + ".takeover")).exists()
    assert CampaignLock.acquire(tmp_path).acquired


def test_orphaned_takeover_token_does_not_wedge(tmp_path):
    """A token left by a contender that crashed mid-takeover is cleared
    once its claimant is dead; the next acquire succeeds."""
    dead = _CTX.Process(target=_noop)
    dead.start()
    dead.join()
    (tmp_path / LOCK_NAME).write_text(json.dumps({"pid": dead.pid}))
    (tmp_path / (LOCK_NAME + ".takeover")).write_text(
        json.dumps({"pid": dead.pid})
    )

    with pytest.raises(CampaignLockedError):
        CampaignLock.acquire(tmp_path)  # first attempt clears the token
    assert not (tmp_path / (LOCK_NAME + ".takeover")).exists()
    lock = CampaignLock.acquire(tmp_path)
    assert lock.acquired
    lock.release()


# -------------------------------------------------------------------- scale
@pytest.mark.skipif(
    not os.environ.get("REPRO_STRESS"),
    reason="10k-cell sharded campaign; set REPRO_STRESS=1 to run",
)
def test_ten_thousand_cell_campaign_across_four_shards(tmp_path):
    def big(outdir, shards):
        return _params(
            outdir,
            shards=shards,
            machines=("SPR-DDR", "SPR-HBM"),
            variants=("Base_Seq", "RAJA_Seq"),
            kernels=("Basic_DAXPY",),
            trials=2500,
        )

    single = big(tmp_path / "single", 0)
    sharded = big(tmp_path / "sharded", 4)
    assert len(_expected_keys(sharded)) == 10_000
    assert SuiteExecutor(single).run(write_files=True).report.clean
    assert SuiteExecutor(sharded).run(write_files=True).report.clean
    assert _archive_bytes(tmp_path / "single") == _archive_bytes(
        tmp_path / "sharded"
    )
    assert invariants.thickets_match(
        _thicket(tmp_path / "single"), _thicket(tmp_path / "sharded")
    ) == []
    assert invariants.check_shard_campaign(
        _expected_keys(sharded), tmp_path / "sharded"
    ) == []
