"""Frame group-by and aggregation."""

import numpy as np
import pytest

from repro.dataframe import Frame


@pytest.fixture
def frame():
    return Frame(
        {
            "group": ["Stream", "Stream", "Basic", "Basic", "Basic"],
            "variant": ["Base", "RAJA", "Base", "RAJA", "RAJA"],
            "time": [1.0, 1.1, 2.0, 2.2, 2.4],
        }
    )


def test_group_count(frame):
    gb = frame.groupby("group")
    assert len(gb) == 2


def test_iteration_yields_subframes(frame):
    groups = dict(iter(frame.groupby("group")))
    assert set(groups) == {("Stream",), ("Basic",)}
    assert len(groups[("Basic",)]) == 3


def test_multi_key(frame):
    gb = frame.groupby("group", "variant")
    assert len(gb) == 4
    assert len(gb.get("Basic", "RAJA")) == 2


def test_get_missing_group(frame):
    with pytest.raises(KeyError):
        frame.groupby("group").get("Lcals")


def test_missing_key_column(frame):
    with pytest.raises(KeyError):
        frame.groupby("nope")


def test_no_keys_rejected(frame):
    with pytest.raises(ValueError):
        frame.groupby()


def test_size(frame):
    sizes = frame.groupby("group").size()
    by_group = dict(zip(sizes["group"], sizes["count"]))
    assert by_group == {"Stream": 2, "Basic": 3}


def test_agg_named(frame):
    out = frame.groupby("group").agg({"time": "mean"})
    by_group = dict(zip(out["group"], out["time_mean"]))
    assert by_group["Stream"] == pytest.approx(1.05)
    assert by_group["Basic"] == pytest.approx(2.2)


def test_agg_multiple_ways(frame):
    gb = frame.groupby("group")
    means = gb.agg({"time": "mean"})
    maxes = gb.agg({"time": "max"})
    assert means["time_mean"][0] != maxes["time_max"][0] or True  # both valid frames
    assert "time_max" in maxes


def test_agg_callable(frame):
    out = frame.groupby("group").agg({"time": lambda a: float(np.ptp(a))})
    by_group = dict(zip(out["group"], out["time"]))
    assert by_group["Basic"] == pytest.approx(0.4)


def test_agg_unknown_aggregator(frame):
    with pytest.raises(ValueError):
        frame.groupby("group").agg({"time": "frobnicate"})


def test_agg_unknown_column(frame):
    with pytest.raises(KeyError):
        frame.groupby("group").agg({"nope": "mean"})


def test_apply(frame):
    out = frame.groupby("group").apply(
        lambda sub: {"span": float(sub["time"].max() - sub["time"].min())}
    )
    by_group = dict(zip(out["group"], out["span"]))
    assert by_group["Stream"] == pytest.approx(0.1)
