"""End-to-end integration: the paper's full data path.

run suite -> .cali files on disk -> Thicket -> TMA / roofline analysis,
asserting that what the analysis recovers from *profile counters* matches
what the model predicted — i.e., the toolchain is lossless.
"""

import numpy as np
import pytest

from repro.analysis.roofline import roofline_points
from repro.analysis.topdown import TMA_COMPONENTS, topdown_from_counters
from repro.machines.registry import get_machine
from repro.suite import Group, RunParams, SuiteExecutor
from repro.suite.registry import make_kernel
from repro.thicket import Thicket


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    out = tmp_path_factory.mktemp("cali")
    params = RunParams(
        problem_size="32M",
        variants=("RAJA_Seq", "RAJA_CUDA", "RAJA_HIP"),
        groups=(Group.STREAM, Group.BASIC),
        output_dir=str(out),
    )
    result = SuiteExecutor(params).run_paper_configuration(write_files=True)
    thicket = Thicket.from_caliperreader(result.cali_paths)
    return result, thicket


def test_files_round_trip_through_thicket(pipeline):
    result, thicket = pipeline
    assert len(thicket.profiles) == 4
    regions, _, matrix = thicket.metric_matrix(
        "Avg time/rank", region_filter=lambda s: "_" in s
    )
    assert len(regions) == 24  # 5 Stream + 19 Basic kernels
    assert np.isfinite(matrix).all()


def test_tma_from_profile_counters_matches_model(pipeline):
    _, thicket = pipeline
    ddr = thicket.filter_metadata(lambda md: md["machine"] == "SPR-DDR")
    profile = ddr.profiles[0]
    for kernel_name in ("Stream_TRIAD", "Basic_DAXPY", "Basic_TRAP_INT"):
        counters = {
            metric: ddr.metric_for_profile(profile, metric).get(kernel_name)
            for metric in ddr.metric_columns()
            if metric.startswith("perf::")
        }
        recovered = topdown_from_counters(counters)
        predicted = make_kernel(kernel_name, 32_000_000).predict(
            get_machine("SPR-DDR")
        ).tma
        for component in TMA_COMPONENTS:
            assert getattr(recovered, component) == pytest.approx(
                predicted[component], abs=1e-9
            ), (kernel_name, component)


def test_roofline_from_profile_counters(pipeline):
    _, thicket = pipeline
    gpu = thicket.filter_metadata(lambda md: md["machine"] == "P9-V100")
    profile = gpu.profiles[0]
    machine = get_machine("P9-V100")
    counters = {
        metric: gpu.metric_for_profile(profile, metric).get("Stream_TRIAD")
        for metric in gpu.metric_columns()
    }
    counters = {k: v for k, v in counters.items() if v is not None}
    points = roofline_points("Stream_TRIAD", counters, machine)
    assert len(points) == 3
    # TRIAD on the HBM level must classify as memory bound.
    hbm_point = next(p for p in points if p.level == "HBM")
    assert hbm_point.bound_by(machine) == "memory"
    # And its points must lie below the roofline ceiling.
    from repro.analysis.roofline import roofline_ceiling

    for point in points:
        assert point.warp_gips <= roofline_ceiling(
            machine, point.level, point.intensity
        ) * 1.05


def test_hbm_speedup_visible_in_thicket(pipeline):
    """The Thicket user view of Fig. 9: DDR/HBM time ratio for TRIAD."""
    _, thicket = pipeline
    by_machine = thicket.groupby("machine")
    t_ddr = by_machine["SPR-DDR"].metric_for_profile(
        by_machine["SPR-DDR"].profiles[0], "Avg time/rank"
    )["Stream_TRIAD"]
    t_hbm = by_machine["SPR-HBM"].metric_for_profile(
        by_machine["SPR-HBM"].profiles[0], "Avg time/rank"
    )["Stream_TRIAD"]
    assert t_ddr / t_hbm == pytest.approx(2.39, rel=0.15)


def test_stats_across_machines(pipeline):
    _, thicket = pipeline
    stats = thicket.aggregate_stats(["Avg time/rank"], aggs=("min", "max"))
    row = next(r for r in stats.iter_rows() if r["name"] == "Stream_TRIAD")
    # Fastest machine (MI250X) is >10x the slowest (SPR-DDR) for TRIAD.
    assert row["Avg time/rank_max"] / row["Avg time/rank_min"] > 10
