"""Thicket: composition, metadata grouping, filtering, stats."""

import numpy as np
import pytest

from repro.caliper import CaliperSession
from repro.caliper.cali import write_cali
from repro.thicket import Thicket


def make_profile(machine: str, variant: str, times: dict[str, float]):
    session = CaliperSession(collect_time=False)
    session.set_global("machine", machine)
    session.set_global("variant", variant)
    session.set_global("problem_size", 1000)
    with session.region("RAJAPerf"):
        for kernel, value in times.items():
            with session.region(kernel):
                session.set_metric("Avg time/rank", value)
    return session.close()


@pytest.fixture
def thicket():
    profiles = [
        make_profile("SPR-DDR", "RAJA_Seq", {"Stream_TRIAD": 1.0, "Basic_DAXPY": 2.0}),
        make_profile("SPR-HBM", "RAJA_Seq", {"Stream_TRIAD": 0.4, "Basic_DAXPY": 0.9}),
        make_profile("P9-V100", "RAJA_CUDA", {"Stream_TRIAD": 0.15, "Basic_DAXPY": 0.3}),
    ]
    return Thicket.from_caliperreader(profiles)


class TestConstruction:
    def test_profiles_and_metadata(self, thicket):
        assert len(thicket.profiles) == 3
        assert "machine" in thicket.metadata.columns

    def test_from_files(self, tmp_path):
        paths = [
            write_cali(make_profile("SPR-DDR", "RAJA_Seq", {"K": 1.0}), tmp_path / "a.cali"),
            write_cali(make_profile("SPR-HBM", "RAJA_Seq", {"K": 2.0}), tmp_path / "b.cali"),
        ]
        thicket = Thicket.from_caliperreader(paths)
        assert len(thicket.profiles) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Thicket.from_caliperreader([])

    def test_single_profile_accepted(self):
        thicket = Thicket.from_caliperreader(make_profile("m", "v", {"K": 1.0}))
        assert len(thicket.profiles) == 1


class TestQueries:
    def test_metric_matrix(self, thicket):
        regions, profiles, matrix = thicket.metric_matrix(
            "Avg time/rank", region_filter=lambda s: "_" in s
        )
        assert set(regions) == {"Stream_TRIAD", "Basic_DAXPY"}
        assert matrix.shape == (2, 3)
        assert not np.isnan(matrix).any()

    def test_metric_matrix_unknown_metric(self, thicket):
        with pytest.raises(KeyError):
            thicket.metric_matrix("nope")

    def test_metric_for_profile(self, thicket):
        values = thicket.metric_for_profile("SPR-DDR/RAJA_Seq", "Avg time/rank")
        assert values["Stream_TRIAD"] == 1.0

    def test_filter_metadata(self, thicket):
        cpu_only = thicket.filter_metadata(lambda md: str(md["machine"]).startswith("SPR"))
        assert len(cpu_only.profiles) == 2

    def test_filter_regions(self, thicket):
        streams = thicket.filter_regions(lambda name: name.startswith("Stream"))
        assert set(streams.dataframe["name"]) == {"Stream_TRIAD"}

    def test_groupby_metadata(self, thicket):
        by_variant = thicket.groupby("variant")
        assert set(by_variant) == {"RAJA_Seq", "RAJA_CUDA"}
        assert len(by_variant["RAJA_Seq"].profiles) == 2

    def test_groupby_unknown_key(self, thicket):
        with pytest.raises(KeyError):
            thicket.groupby("nope")

    def test_tree_rendering(self, thicket):
        text = thicket.tree(metric="Avg time/rank")
        assert "RAJAPerf" in text and "Stream_TRIAD" in text and "[Avg time/rank=" in text


class TestStatsAndConcat:
    def test_aggregate_stats(self, thicket):
        stats = thicket.aggregate_stats(["Avg time/rank"])
        row = next(r for r in stats.iter_rows() if r["name"] == "Stream_TRIAD")
        assert row["Avg time/rank_mean"] == pytest.approx((1.0 + 0.4 + 0.15) / 3)
        assert row["Avg time/rank_max"] == 1.0

    def test_concat_thickets(self, thicket):
        extra = Thicket.from_caliperreader(
            make_profile("EPYC-MI250X", "RAJA_HIP", {"Stream_TRIAD": 0.05})
        )
        combined = Thicket.concat_thickets([thicket, extra])
        assert len(combined.profiles) == 4
        # Outer column union: the missing kernel row is simply absent,
        # so the matrix has a NaN for it.
        _, _, matrix = combined.metric_matrix(
            "Avg time/rank", region_filter=lambda s: s == "Basic_DAXPY"
        )
        assert np.isnan(matrix).sum() == 1

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            Thicket.concat_thickets([])
