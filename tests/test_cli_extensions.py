"""CLI: the cluster / scaling / export / report subcommands."""

import pytest

from repro.cli.main import main


def test_cluster_command(capsys):
    assert main(["cluster"]) == 0
    out = capsys.readouterr().out
    assert "4 clusters" in out
    assert "Fig. 7" in out and "Fig. 8" in out


def test_cluster_with_dendrogram(capsys):
    assert main(["cluster", "--dendrogram"]) == 0
    assert "Ward" in capsys.readouterr().out


def test_cluster_other_linkage(capsys):
    assert main(["cluster", "--method", "complete", "--threshold", "0.8"]) == 0
    assert "complete @ 0.8" in capsys.readouterr().out


def test_scaling_strong(capsys):
    assert main(["scaling", "Stream_TRIAD"]) == 0
    out = capsys.readouterr().out
    assert "strong scaling of Stream_TRIAD" in out
    assert "112" in out


def test_scaling_weak(capsys):
    assert main(["scaling", "Basic_TRAP_INT", "--mode", "weak"]) == 0
    assert "weak scaling" in capsys.readouterr().out


def test_scaling_unknown_kernel():
    with pytest.raises(KeyError):
        main(["scaling", "Stream_NONSENSE"])


def test_export_command(tmp_path, capsys):
    assert main(["export", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.count("wrote") == 7
    assert (tmp_path / "fig9_fig10_speedups.csv").exists()


def test_report_command(tmp_path, capsys):
    main(["run", "--machines", "SPR-DDR", "--variants", "RAJA_Seq",
          "--kernels", "Stream_TRIAD", "Basic_DAXPY",
          "--output-dir", str(tmp_path)])
    capsys.readouterr()
    cali = next(tmp_path.glob("*.cali"))
    assert main(["report", str(cali), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "RAJAPerf" in out and "Top 3 regions" in out
