"""The ``.calipack`` archive: round trips, crash recovery, fsck healing."""

from __future__ import annotations

import json

import pytest

from repro.caliper import calipack
from repro.caliper.cali import read_cali, serialize_cali, write_cali
from repro.caliper.records import CaliProfile, RegionRecord
from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.suite.executor import SuiteExecutor
from repro.suite.fsck import fsck_directory
from repro.suite.run_params import RunParams


def make_profile(tag: str, value: float = 1.0) -> CaliProfile:
    profile = CaliProfile(globals={"machine": "m", "variant": tag})
    root = RegionRecord(name="RAJAPerf", path=("RAJAPerf",), metrics={})
    child = RegionRecord(
        name=f"K_{tag}", path=("RAJAPerf", f"K_{tag}"), metrics={"time": value}
    )
    root.children = [child]
    profile.roots = [root]
    return profile


def small_params(tmp_path, **overrides) -> RunParams:
    defaults = dict(
        problem_size=1000,
        kernels=("Basic_DAXPY",),
        variants=("Base_Seq", "RAJA_Seq"),
        machines=("SPR-DDR",),
        pack=True,
        output_dir=str(tmp_path),
    )
    defaults.update(overrides)
    return RunParams(**defaults)


# ----------------------------------------------------------- archive basics
def test_pack_unpack_round_trip_is_byte_identical(tmp_path):
    originals = {}
    for i in range(5):
        path = write_cali(make_profile(f"v{i}", float(i)), tmp_path / f"p{i}.cali")
        originals[path.name] = path.read_bytes()

    archive, entries = calipack.pack_directory(tmp_path)
    assert sorted(e.name for e in entries) == sorted(originals)
    assert not list(tmp_path.glob("*.cali"))

    for entry in entries:
        assert calipack.read_entry_bytes(archive, entry) == originals[entry.name]

    restored = calipack.unpack_archive(archive)
    assert not archive.exists()
    assert {p.name: p.read_bytes() for p in restored} == originals
    for path in restored:
        read_cali(path)  # seals survived the round trip


def test_entry_replacement_is_last_wins(tmp_path):
    archive = tmp_path / "a.calipack"
    with calipack.CalipackWriter(archive) as writer:
        writer.append_profile("x.cali", make_profile("old", 1.0))
        writer.append_profile("x.cali", make_profile("new", 2.0))
    entries = calipack.load_index(archive)
    assert len(entries) == 1
    data = calipack.read_entry_bytes(archive, entries[0])
    assert data == serialize_cali(make_profile("new", 2.0))


def test_member_ref_round_trip():
    ref = calipack.member_ref("/camp/campaign.calipack", "p.cali")
    assert calipack.split_member_ref(ref) == ("/camp/campaign.calipack", "p.cali")
    assert calipack.split_member_ref("/camp/plain.cali") is None
    assert calipack.split_member_ref("no-archive::p.cali") is None


def test_salvage_scan_recovers_unfinished_segment(tmp_path):
    """A crashed (footer-less) segment still yields its complete entries."""
    archive = tmp_path / "seg.calipack"
    writer = calipack.CalipackWriter(archive)
    writer.append_profile("a.cali", make_profile("a"))
    writer.append_profile("b.cali", make_profile("b"))
    writer.abort()  # no index, no footer: the crash case

    with pytest.raises(calipack.CalipackError):
        calipack.load_index(archive)
    names = sorted(e.name for e in calipack.load_entries(archive))
    assert names == ["a.cali", "b.cali"]


def test_interrupted_append_is_dropped_and_writer_recovers(tmp_path):
    archive = tmp_path / "seg.calipack"
    writer = calipack.CalipackWriter(archive)
    writer.append_profile("a.cali", make_profile("a"))
    with FaultInjector(
        [FaultSpec(kind=FaultKind.IO_WRITE_FAILURE, path="b.cali")]
    ):
        with pytest.raises(OSError):
            writer.append_profile("b.cali", make_profile("b"))
    writer.abort()

    # The partial tail is invisible to the scan...
    entries, _ = calipack.scan_entries(archive)
    assert [e.name for e in entries] == ["a.cali"]
    # ...and a reopened writer truncates it before appending.
    with calipack.CalipackWriter(archive) as writer2:
        writer2.append_profile("c.cali", make_profile("c"))
    names = sorted(e.name for e in calipack.load_index(archive))
    assert names == ["a.cali", "c.cali"]
    for entry in calipack.load_index(archive):
        assert calipack.verify_entry(archive, entry) == ("ok", "")


def test_merge_segments_combines_and_removes(tmp_path):
    seg_dir = tmp_path / calipack.SEGMENT_DIR
    for worker, tags in enumerate((("a", "b"), ("c",))):
        with calipack.CalipackWriter(
            seg_dir / f"worker-{worker}.calipack"
        ) as writer:
            for tag in tags:
                writer.append_profile(f"{tag}.cali", make_profile(tag))

    merged = calipack.merge_segments(tmp_path)
    assert merged == tmp_path / calipack.ARCHIVE_NAME
    assert sorted(e.name for e in calipack.load_index(merged)) == [
        "a.cali", "b.cali", "c.cali",
    ]
    assert not seg_dir.exists()
    assert calipack.merge_segments(tmp_path) is None  # nothing left


def test_merge_segments_orders_worker_segments_numerically(tmp_path):
    """``worker-10`` merges *after* ``worker-2``: last-wins must follow
    worker numbers, not lexicographic filename order."""
    seg_dir = tmp_path / calipack.SEGMENT_DIR
    for worker, value in ((10, 10.0), (2, 2.0)):
        with calipack.CalipackWriter(
            seg_dir / f"worker-{worker}.calipack"
        ) as writer:
            writer.append_profile("dup.cali", make_profile("dup", value))

    merged = calipack.merge_segments(tmp_path)
    (entry,) = calipack.load_index(merged)
    data = calipack.read_entry_bytes(merged, entry)
    assert data == serialize_cali(make_profile("dup", 10.0))


def test_merged_archive_is_byte_stable_across_creation_order(tmp_path):
    """The merged archive is a pure function of the entry set: shuffling
    the order segments were created (and hence their mtimes and the
    append order within the sweep) must not change a single byte."""
    orders = (("0", "1", "2"), ("2", "0", "1"))
    archives = []
    for sub, order in zip(("a", "b"), orders):
        outdir = tmp_path / sub
        seg_dir = outdir / calipack.SEGMENT_DIR
        for worker in order:
            with calipack.CalipackWriter(
                seg_dir / f"worker-{worker}.calipack"
            ) as writer:
                writer.append_profile(
                    f"p{worker}.cali", make_profile(worker, float(worker))
                )
        archives.append(calipack.merge_segments(outdir).read_bytes())
    assert archives[0] == archives[1]


def _merge_armed(directory, schedule):
    from repro.chaos.points import arm

    arm(schedule)
    calipack.merge_segments(directory)


def test_remerge_after_partial_segment_unlink_is_idempotent(tmp_path):
    """Crash between the two segment deletions (the
    ``calipack.post-merge-unlink`` boundary): the merged archive is
    already durable, one segment is gone, one remains. Re-running the
    merge must converge on byte-identical output."""
    import multiprocessing

    from repro.chaos.points import CHAOS_KILL_EXITCODE, ChaosSchedule

    def seed_segments(outdir):
        seg_dir = outdir / calipack.SEGMENT_DIR
        for worker, tags in enumerate((("a", "b"), ("c",))):
            with calipack.CalipackWriter(
                seg_dir / f"worker-{worker}.calipack"
            ) as writer:
                for tag in tags:
                    writer.append_profile(f"{tag}.cali", make_profile(tag))

    reference = tmp_path / "reference"
    seed_segments(reference)
    golden = calipack.merge_segments(reference).read_bytes()

    crashed = tmp_path / "crashed"
    seed_segments(crashed)
    schedule = ChaosSchedule(
        point="calipack.post-merge-unlink",
        hit=1,
        mode="exit",
        torn=False,
        seed=0,
        token=str(tmp_path / "strike.token"),
    )
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_merge_armed, args=(crashed, schedule))
    child.start()
    child.join()
    assert child.exitcode == CHAOS_KILL_EXITCODE

    archive = crashed / calipack.ARCHIVE_NAME
    assert archive.read_bytes() == golden  # merge was durable pre-crash
    remaining = list(
        (crashed / calipack.SEGMENT_DIR).glob("*" + calipack.ARCHIVE_SUFFIX)
    )
    assert len(remaining) == 1  # genuinely partial deletion

    assert calipack.merge_segments(crashed) == archive
    assert archive.read_bytes() == golden
    assert not (crashed / calipack.SEGMENT_DIR).exists()


# ------------------------------------------------------- campaign write path
def test_packed_campaign_records_member_refs(tmp_path):
    params = small_params(tmp_path)
    result = SuiteExecutor(params).run(write_files=True)
    archive = tmp_path / calipack.ARCHIVE_NAME
    assert archive.exists()
    assert not list(tmp_path.glob("*.cali"))
    assert result.report.clean
    for path in result.cali_paths:
        ref = calipack.split_member_ref(str(path))
        assert ref is not None and ref[1].endswith(".cali")
    manifest = json.loads((tmp_path / "campaign_manifest.json").read_text())
    files = [cell.get("file") for cell in manifest["cells"].values()]
    assert files and all(f and calipack.split_member_ref(f) for f in files)


def test_fsck_quarantines_damaged_archive_entry_and_resume_heals(tmp_path):
    params = small_params(tmp_path)
    SuiteExecutor(params).run(write_files=True)
    archive = tmp_path / calipack.ARCHIVE_NAME
    victim = calipack.load_index(archive)[0]

    raw = bytearray(archive.read_bytes())
    raw[victim.offset + victim.length // 2] ^= 0xFF
    archive.write_bytes(bytes(raw))

    report = fsck_directory(tmp_path)
    assert not report.clean
    assert report.rerun_cells
    assert (tmp_path / "quarantine" / victim.name).exists()
    survivors = [e.name for e in calipack.load_index(archive)]
    assert victim.name not in survivors

    healed = SuiteExecutor(small_params(tmp_path, resume=True)).run(
        write_files=True
    )
    assert healed.report.clean
    assert victim.name in [e.name for e in calipack.load_index(archive)]
    assert fsck_directory(tmp_path).clean


def test_fsck_flags_orphaned_archive_entry(tmp_path):
    params = small_params(tmp_path)
    SuiteExecutor(params).run(write_files=True)
    archive = tmp_path / calipack.ARCHIVE_NAME
    with calipack.CalipackWriter(archive) as writer:
        writer.append_profile("stray.cali", make_profile("stray"))

    report = fsck_directory(tmp_path)
    orphans = report.with_status("orphaned")
    assert [c.entry for c in orphans] == ["stray.cali"]
    assert (tmp_path / "quarantine" / "stray.cali").exists()
    assert "stray.cali" not in [e.name for e in calipack.load_index(archive)]


def test_supervised_packed_campaign_merges_segments(tmp_path):
    params = small_params(
        tmp_path, workers=2, heartbeat_timeout=10.0, trials=2
    )
    result = SuiteExecutor(params).run(write_files=True)
    assert result.report.clean
    archive = tmp_path / calipack.ARCHIVE_NAME
    assert archive.exists()
    assert not (tmp_path / calipack.SEGMENT_DIR).exists()
    assert len(calipack.load_index(archive)) == 4  # 2 variants x 2 trials
    assert fsck_directory(tmp_path).clean
