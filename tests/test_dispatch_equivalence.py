"""Cross-policy and cross-engine equivalence of the zero-copy dispatch.

The PR's contract: slice/fused dispatch, the partition-plan cache, and
the cached iota arrays are pure plumbing — every kernel's checksum must
be *bit-identical* to the seed engine (``legacy_dispatch``) under every
policy, including odd iteration counts (empty, single element, primes,
non-multiples of the GPU block size).
"""

import numpy as np
import pytest

from repro.rajasim import (
    cuda_exec,
    forall,
    omp_parallel_for_exec,
    seq_exec,
    slice_capable,
)
from repro.rajasim.forall import clear_dispatch_caches, legacy_dispatch
from repro.suite.registry import all_kernel_classes, load_all_kernels, make_kernel

POLICIES = {
    "Sequential": seq_exec,
    "OpenMP": omp_parallel_for_exec,
    "CUDA": cuda_exec,
}

#: Empty, single, prime, just-past-block, and non-multiple-of-block sizes.
ODD_SIZES = (0, 1, 2, 61, 97, 257, 1000, 1003)

RAJA_VARIANTS = ("RAJA_Seq", "RAJA_OpenMP", "RAJA_CUDA")


def _kernel_checksum(cls, variant, size: int) -> float:
    kernel = cls(problem_size=size)
    return kernel.run_variant(variant)


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_dispatch_caches()
    yield
    clear_dispatch_caches()


class TestForallEquivalence:
    """Engine equivalence at the ``forall`` level, per capability class."""

    @pytest.mark.parametrize("policy_name", list(POLICIES))
    @pytest.mark.parametrize("n", ODD_SIZES)
    def test_slice_vs_array_vs_legacy(self, policy_name, n):
        policy = POLICIES[policy_name]
        x = np.linspace(0.5, 2.5, max(n, 1))[:n]

        def compute(out):
            def plain(i):
                out[i] = 3.0 * x[i] - 1.0
            return plain

        out_array = np.zeros(n)
        launches_array = forall(policy, n, compute(out_array))

        out_slice = np.zeros(n)
        launches_slice = forall(policy, n, slice_capable(compute(out_slice)))

        out_fused = np.zeros(n)
        launches_fused = forall(
            policy, n, slice_capable(fuse=True)(compute(out_fused))
        )

        out_legacy = np.zeros(n)
        with legacy_dispatch():
            launches_legacy = forall(policy, n, compute(out_legacy))

        assert launches_array == launches_slice == launches_fused == launches_legacy
        np.testing.assert_array_equal(out_array, out_legacy)
        np.testing.assert_array_equal(out_slice, out_legacy)
        np.testing.assert_array_equal(out_fused, out_legacy)

    @pytest.mark.parametrize("policy_name", list(POLICIES))
    def test_partition_order_dependent_body(self, policy_name):
        """Non-fused slice bodies must see partitions in plan order."""
        policy = POLICIES[policy_name]
        n = 1003
        fast_parts, legacy_parts = [], []
        forall(policy, n, slice_capable(lambda s: fast_parts.append((s.start, s.stop))))
        with legacy_dispatch():
            forall(
                policy, n,
                lambda idx: legacy_parts.append((int(idx[0]), int(idx[-1]) + 1)),
            )
        assert fast_parts == legacy_parts


class TestKernelEquivalence:
    """Every kernel, every RAJA policy: fast engine == seed engine."""

    @pytest.mark.parametrize("size", (1, 61, 1003))
    @pytest.mark.parametrize("name", ("Stream_TRIAD", "Stream_DOT",
                                      "Algorithm_HISTOGRAM", "Basic_MULTI_REDUCE",
                                      "Lcals_EOS"))
    def test_representatives_at_odd_sizes(self, name, size):
        """One kernel per capability class (fused, reducer slice,
        atomic, chunked reducer, array-path) at odd sizes."""
        kernel = make_kernel(name, size)
        variants = [v for v in kernel.variants() if v.name in RAJA_VARIANTS]
        for variant in variants:
            clear_dispatch_caches()
            fast = _kernel_checksum(type(kernel), variant, size)
            with legacy_dispatch():
                legacy = _kernel_checksum(type(kernel), variant, size)
            assert repr(fast) == repr(legacy), (name, variant.name, size)

    def test_all_kernels_all_policies_bit_identical(self):
        """The full registry at a prime size: zero tolerance, exact repr."""
        load_all_kernels()
        size = 197
        mismatches = []
        for cls in all_kernel_classes():
            for variant in cls.class_variants():
                if variant.name not in RAJA_VARIANTS:
                    continue
                clear_dispatch_caches()
                fast = _kernel_checksum(cls, variant, size)
                with legacy_dispatch():
                    legacy = _kernel_checksum(cls, variant, size)
                if repr(fast) != repr(legacy):
                    mismatches.append((cls.__name__, variant.name, fast, legacy))
        assert not mismatches, mismatches
