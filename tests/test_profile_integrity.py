"""Integrity-sealed profile store: footers, fsck, locks, manifest safety.

Every ``.cali`` write is sealed with a CRC32+length footer; readers
verify it, ``fsck`` classifies and quarantines damage, and the campaign
manifest survives crashes (durable saves, corrupt-file backup) and
concurrent campaigns (advisory lock with stale-lease takeover).
"""

import json
import os
import warnings

import pytest

from repro.caliper.cali import (
    FOOTER_MARKER,
    STATUS_CORRUPT,
    STATUS_OK,
    STATUS_TRUNCATED,
    STATUS_UNSEALED,
    read_cali,
    verify_cali,
    write_cali,
)
from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.suite import MANIFEST_NAME, RunParams, SuiteExecutor
from repro.suite.errors import CampaignLockedError
from repro.suite.fsck import QUARANTINE_DIR, fsck_directory
from repro.suite.manifest import CampaignLock, CampaignManifest
from repro.suite.retry import RetryPolicy


def _small_profile(tmp_path, name="probe.cali"):
    """One real sealed profile from a minimal run."""
    params = RunParams(
        machines=("SPR-DDR",),
        variants=("Base_Seq",),
        kernels=("Basic_DAXPY",),
        output_dir=str(tmp_path),
    )
    result = SuiteExecutor(params).run()
    return write_cali(result.profiles[0], tmp_path / name)


# ----------------------------------------------------------- footer seal
def test_sealed_roundtrip_verifies_ok(tmp_path):
    path = _small_profile(tmp_path)
    assert FOOTER_MARKER in path.read_text()
    status, _ = verify_cali(path)
    assert status == STATUS_OK
    profile = read_cali(path)  # readers accept sealed files transparently
    assert profile.globals["machine"] == "SPR-DDR"


def test_truncated_file_detected_and_rejected(tmp_path):
    path = _small_profile(tmp_path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-10])  # lost its tail mid-footer
    status, detail = verify_cali(path)
    assert status == STATUS_TRUNCATED
    with pytest.raises(ValueError, match="truncated"):
        read_cali(path)
    assert detail


def test_payload_shorter_than_declared_is_truncated(tmp_path):
    path = _small_profile(tmp_path)
    raw = path.read_bytes()
    footer_at = raw.rindex(FOOTER_MARKER.encode())
    # drop payload bytes but keep the (now lying) footer intact
    damaged = raw[: footer_at - 100].rstrip(b"\n") + b"\n" + raw[footer_at:]
    path.write_bytes(damaged)
    status, _ = verify_cali(path)
    assert status == STATUS_TRUNCATED


def test_flipped_payload_byte_is_corrupt(tmp_path):
    path = _small_profile(tmp_path)
    raw = bytearray(path.read_bytes())
    # flip one byte inside the JSON payload (same length, wrong CRC)
    idx = raw.index(b"SPR-DDR")
    raw[idx] = ord(b"X")
    path.write_bytes(bytes(raw))
    status, _ = verify_cali(path)
    assert status == STATUS_CORRUPT
    with pytest.raises(ValueError, match="corrupt"):
        read_cali(path)


def test_unsealed_legacy_profile_still_loads(tmp_path):
    """Profiles written before sealing existed stay readable."""
    path = _small_profile(tmp_path)
    text = path.read_text()
    payload = text[: text.rindex(FOOTER_MARKER)].rstrip("\n") + "\n"
    legacy = tmp_path / "legacy.cali"
    legacy.write_text(payload)
    status, _ = verify_cali(legacy)
    assert status == STATUS_UNSEALED
    assert read_cali(legacy).globals["machine"] == "SPR-DDR"


def test_injected_footer_corruption_lands_complete_but_unverifiable(tmp_path):
    params = RunParams(
        machines=("SPR-DDR",),
        variants=("Base_Seq",),
        kernels=("Basic_DAXPY",),
        output_dir=str(tmp_path),
    )
    injector = FaultInjector(
        [FaultSpec(kind=FaultKind.FOOTER_CORRUPTION, path="*Base_Seq*")]
    )
    with injector:  # write_cali consults the process-wide injector
        result = SuiteExecutor(params).run(write_files=True)
    assert len(result.cali_paths) == 1  # the write itself succeeded
    status, detail = verify_cali(result.cali_paths[0])
    assert status == STATUS_CORRUPT
    assert "crc32" in detail.lower()


# ------------------------------------------------------------------ fsck
def _campaign(tmp_path, trials=2):
    params = RunParams(
        machines=("SPR-DDR",),
        variants=("Base_Seq", "RAJA_Seq"),
        kernels=("Basic_DAXPY",),
        trials=trials,
        output_dir=str(tmp_path),
    )
    return SuiteExecutor(params).run(write_files=True), params


def test_fsck_clean_directory(tmp_path):
    _campaign(tmp_path)
    report = fsck_directory(tmp_path)
    assert report.clean
    assert report.counts() == {"ok": 4}
    assert not report.quarantined


def test_fsck_quarantines_damage_and_resume_heals(tmp_path):
    """Acceptance: one truncated + one orphaned profile -> both
    quarantined, nonzero exit, and --resume re-produces exactly the
    quarantined cells."""
    _, params = _campaign(tmp_path)
    victim = sorted(tmp_path.glob("*.cali"))[0]
    victim.write_bytes(victim.read_bytes()[:-10])
    orphan = tmp_path / "rajaperf_leftover.cali"
    orphan.write_text(
        '{"format": "cali-json", "version": 1, "globals": {}, "records": []}\n'
    )

    audit = fsck_directory(tmp_path, quarantine=False, mark_rerun=False)
    assert not audit.clean
    assert audit.counts() == {"ok": 3, "truncated": 1, "orphaned": 1}

    # the CLI fsck quarantines, marks, and maps dirty -> nonzero exit
    from repro.cli.main import main as cli_main

    assert cli_main(["fsck", str(tmp_path)]) == 1
    assert not victim.exists() and not orphan.exists()
    assert (tmp_path / QUARANTINE_DIR / victim.name).exists()
    assert (tmp_path / QUARANTINE_DIR / orphan.name).exists()
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    demoted = manifest["cells"]["SPR-DDR|Base_Seq|default|trial0"]
    assert demoted["status"] == "failed"
    assert "fsck" in demoted["rerun_reason"]

    resumed = SuiteExecutor(
        RunParams(
            **{
                **params.__dict__,
                "resume": True,
                "metadata": dict(params.metadata),
            }
        )
    ).run(write_files=True)
    counts = resumed.report.cell_counts()
    assert counts == {"skipped": 3, "ok": 1}
    assert resumed.report.cells["SPR-DDR|Base_Seq|default|trial0"] == "ok"
    assert victim.exists()  # re-produced in place
    assert fsck_directory(tmp_path).clean


def test_fsck_dry_run_touches_nothing(tmp_path):
    _campaign(tmp_path)
    victim = sorted(tmp_path.glob("*.cali"))[0]
    victim.write_bytes(victim.read_bytes()[:-10])
    before = json.loads((tmp_path / MANIFEST_NAME).read_text())
    report = fsck_directory(tmp_path, quarantine=False, mark_rerun=False)
    assert not report.clean
    assert not report.quarantined and not report.rerun_cells
    assert victim.exists()
    assert json.loads((tmp_path / MANIFEST_NAME).read_text()) == before


def test_fsck_without_manifest_skips_orphan_detection(tmp_path):
    path = _small_profile(tmp_path)
    report = fsck_directory(tmp_path)
    assert not report.manifest_found
    assert report.counts() == {"ok": 1}
    assert report.clean
    assert path.exists()
    assert "no campaign manifest" in report.summary()


def test_thicket_degrades_on_truncated_profile(tmp_path):
    """Satellite: a truncated .cali is skipped with a warning in
    ``on_error="warn"`` mode; the survivors still compose."""
    from repro.thicket import ProfileLoadWarning, Thicket

    good = _small_profile(tmp_path, "good.cali")
    bad = _small_profile(tmp_path, "bad.cali")
    bad.write_bytes(bad.read_bytes()[:-10])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ProfileLoadWarning)
        thicket = Thicket.from_caliperreader(
            [str(good), str(bad)], on_error="warn"
        )
    assert len(thicket.profiles) == 1
    assert any("truncated" in str(w.message) for w in caught)
    with pytest.raises(ValueError, match="truncated"):
        Thicket.from_caliperreader([str(good), str(bad)], on_error="raise")


# --------------------------------------------------- manifest + locking
def test_corrupt_manifest_backed_up_before_fresh_start(tmp_path):
    path = tmp_path / MANIFEST_NAME
    path.write_text("{ not json")
    with pytest.warns(UserWarning, match="backed up"):
        manifest = CampaignManifest.load_or_create(tmp_path, {"v": 1})
    assert manifest.cells == {}
    backup = tmp_path / (MANIFEST_NAME + ".bak")
    assert backup.read_text() == "{ not json"
    assert not path.exists()


def test_manifest_save_is_atomic_no_tmp_left_behind(tmp_path):
    manifest = CampaignManifest.load_or_create(tmp_path, {"v": 1})
    manifest.record("cell", "ok", file="x.cali")
    manifest.save()
    assert json.loads((tmp_path / MANIFEST_NAME).read_text())["cells"]["cell"][
        "status"
    ] == "ok"
    assert not list(tmp_path.glob("*.tmp"))


def test_campaign_lock_blocks_second_campaign(tmp_path):
    """A lease held by a live foreign process refuses a second campaign
    with an actionable diagnostic (pid 1 is always alive)."""
    lock_path = tmp_path / "campaign_manifest.lock"
    lock_path.write_text(
        json.dumps({"pid": 1, "host": "peer", "acquired_at": "2026-08-06"})
    )
    with pytest.raises(CampaignLockedError) as excinfo:
        CampaignLock.acquire(tmp_path)
    message = str(excinfo.value)
    assert "pid 1" in message
    assert "--output-dir" in message  # tells the user what to do about it
    lock_path.unlink()
    CampaignLock.acquire(tmp_path).release()


def test_campaign_lock_reentrant_within_one_process(tmp_path):
    """Our own stale lease (same PID) is taken over, not fatal — a
    crashed-and-restarted campaign in the same shell heals itself."""
    first = CampaignLock.acquire(tmp_path)
    second = CampaignLock.acquire(tmp_path)  # same pid: takeover, no error
    assert json.loads((tmp_path / "campaign_manifest.lock").read_text())[
        "pid"
    ] == os.getpid()
    second.release()
    first.release()


def test_stale_lease_from_dead_pid_is_taken_over(tmp_path):
    lock_path = tmp_path / "campaign_manifest.lock"
    lock_path.write_text(
        json.dumps({"pid": 999_999_999, "host": "gone", "acquired_at": "x"})
    )
    lock = CampaignLock.acquire(tmp_path)  # must not raise
    assert json.loads(lock_path.read_text())["pid"] == os.getpid()
    lock.release()
    assert not lock_path.exists()


def test_lock_release_is_idempotent(tmp_path):
    lock = CampaignLock.acquire(tmp_path)
    lock.release()
    lock.release()  # second release is a no-op, not an error


# ------------------------------------------------------------ retry salt
def test_retry_jitter_decorrelated_across_call_sites():
    """Satellite: two call sites (different salts) draw different jitter;
    the same salt reproduces exactly (determinism preserved)."""
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, jitter=0.9, seed=7)
    a1 = list(policy.delays(salt="SPR-DDR|Basic_DAXPY|Base_Seq|0"))
    a2 = list(policy.delays(salt="SPR-DDR|Basic_DAXPY|Base_Seq|0"))
    b = list(policy.delays(salt="SPR-DDR|Stream_TRIAD|Base_Seq|0"))
    unsalted = list(policy.delays())
    assert a1 == a2  # deterministic per site
    assert a1 != b  # decorrelated between sites
    assert a1 != unsalted
    assert len(a1) == policy.max_attempts - 1


def test_zero_jitter_salt_is_inert():
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0, seed=7)
    assert list(policy.delays(salt="a")) == list(policy.delays(salt="b"))
