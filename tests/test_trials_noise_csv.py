"""Multi-trial noise model and RAJAPerf-style per-run CSV output."""

import numpy as np
import pytest

from repro.perfmodel.noise import DEFAULT_SIGMA, noise_factor, noisy_time
from repro.suite import RunParams, SuiteExecutor
from repro.thicket import Thicket


class TestNoiseModel:
    def test_deterministic_per_key(self):
        a = noise_factor("K", "SPR-DDR", 3)
        b = noise_factor("K", "SPR-DDR", 3)
        assert a == b

    def test_varies_across_trials_and_kernels(self):
        factors = {noise_factor("K", "SPR-DDR", t) for t in range(10)}
        assert len(factors) == 10
        assert noise_factor("K", "SPR-DDR", 0) != noise_factor("K2", "SPR-DDR", 0)

    def test_median_near_one(self):
        factors = [noise_factor("K", "m", t) for t in range(500)]
        assert np.median(factors) == pytest.approx(1.0, abs=0.01)
        assert np.std(np.log(factors)) == pytest.approx(DEFAULT_SIGMA, rel=0.2)

    def test_zero_sigma_is_exact(self):
        assert noise_factor("K", "m", 1, sigma=0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            noise_factor("K", "m", 0, sigma=-0.1)
        with pytest.raises(ValueError):
            noisy_time(0.0, "K", "m", 0)


class TestMultiTrialRuns:
    @pytest.fixture(scope="class")
    def thicket(self):
        params = RunParams(
            kernels=("Stream_TRIAD", "Basic_DAXPY"),
            variants=("RAJA_Seq",),
            machines=("SPR-DDR",),
            trials=8,
        )
        return Thicket.from_caliperreader(SuiteExecutor(params).run().profiles)

    def test_one_profile_per_trial(self, thicket):
        assert len(thicket.profiles) == 8

    def test_trial_metadata_recorded(self, thicket):
        assert sorted(thicket.metadata["trial"]) == list(range(8))

    def test_stats_show_realistic_spread(self, thicket):
        stats = thicket.aggregate_stats(["Avg time/rank"], aggs=("mean", "std"))
        for row in stats.iter_rows():
            if "_" not in str(row["name"]):
                continue
            cov = row["Avg time/rank_std"] / row["Avg time/rank_mean"]
            assert 0.001 < cov < 0.10  # ~2% nominal jitter

    def test_counters_remain_noise_free(self, thicket):
        """Only the timing jitters; analytic counters are exact."""
        stats = thicket.aggregate_stats(["perf::slots"], aggs=("std",))
        hmm = [r for r in stats.iter_rows() if "_" in str(r["name"])]
        # perf::slots derives from the noiseless breakdown.
        assert all(r["perf::slots_std"] == pytest.approx(0.0) for r in hmm)

    def test_single_trial_is_noise_free(self):
        params = RunParams(
            kernels=("Stream_TRIAD",), variants=("RAJA_Seq",),
            machines=("SPR-DDR",), trials=1,
        )
        a = SuiteExecutor(params).run().profiles[0]
        b = SuiteExecutor(params).run().profiles[0]
        ka = a.find(("RAJAPerf", "Stream", "Stream_TRIAD")).metrics["Avg time/rank"]
        kb = b.find(("RAJAPerf", "Stream", "Stream_TRIAD")).metrics["Avg time/rank"]
        assert ka == kb

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            RunParams(trials=0)
        with pytest.raises(ValueError):
            RunParams(noise_sigma=-1.0)


class TestCsvOutput:
    def test_csv_written_per_run(self, tmp_path):
        params = RunParams(
            kernels=("Stream_TRIAD", "Basic_DAXPY"),
            variants=("RAJA_Seq",),
            machines=("SPR-DDR", "SPR-HBM"),
            write_csv=True,
            output_dir=str(tmp_path),
        )
        SuiteExecutor(params).run()
        csvs = sorted(tmp_path.glob("*.csv"))
        assert len(csvs) == 2
        text = csvs[0].read_text()
        assert "kernel" in text and "Stream_TRIAD" in text
        assert "Avg time/rank" in text

    def test_csv_loads_as_frame(self, tmp_path):
        from repro.dataframe import frame_from_csv

        params = RunParams(
            kernels=("Stream_TRIAD",), variants=("RAJA_Seq",),
            machines=("SPR-DDR",), write_csv=True, output_dir=str(tmp_path),
        )
        SuiteExecutor(params).run()
        frame = frame_from_csv(next(tmp_path.glob("*.csv")))
        assert frame.nrows == 1
        assert "flops" in frame.columns
