"""Every documented CLI exit code, provoked for real.

``repro/cli/exitcodes.py`` is API: scripts and CI branch on these
statuses. Each code here is produced by an actual process exit — a
subprocess of the real CLI, a forked worker, a daemon-thread sentinel —
never by asserting on the constant itself, so the documented table
cannot drift from behavior. A drift test closes the loop: a constant
added to the module without a provoker here fails the suite.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import subprocess
import sys
import textwrap
import time

import pytest

from repro.cli import exitcodes
from repro.suite.manifest import CampaignLock

_CTX = multiprocessing.get_context("fork")

#: subprocesses run from tmp dirs: their import path must be absolute
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

_RUN_SMALL = [
    "run", "--size", "1024", "--machines", "SPR-DDR",
    "--variants", "Base_Seq", "--kernels", "Basic_DAXPY",
]


def _cli(args, cwd, env=None, timeout=300.0) -> int:
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, full_env.get("PYTHONPATH")) if p
    )
    full_env.update(env or {})
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli.main", *args],
        cwd=cwd, env=full_env, capture_output=True, text=True,
        timeout=timeout,
    )
    return proc.returncode


def _script(body, cwd, timeout=300.0) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(body)],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=timeout,
    )
    return proc.returncode


# ------------------------------------------------------------- provokers
def _provoke_ok(tmp):
    return _cli(["list", "kernels"], tmp)


def _provoke_unclean_run(tmp):
    # shard-status of a directory that is not a sharded campaign
    return _cli(["shard-status", str(tmp)], tmp)


def _provoke_usage(tmp):
    return _cli(["run", "--no-such-flag"], tmp)


def _provoke_campaign_locked(tmp):
    lock = CampaignLock.acquire(tmp)  # this test process is the live holder
    try:
        return _cli([*_RUN_SMALL, "--output-dir", str(tmp)], tmp)
    finally:
        lock.release()


def _provoke_degraded(tmp):
    # A sharded campaign with pending cells and nobody live to run them.
    (tmp / "shard_map.json").write_text(json.dumps({
        "format": "rajaperf-shard-map", "version": 1, "shards": 1,
        "assignment": {"shard-0": ["cell-a", "cell-b"]}, "retired": [],
    }))
    (tmp / "shards" / "shard-0").mkdir(parents=True)
    return _cli(["shard-status", str(tmp)], tmp)


def _provoke_invariant_violation(tmp):
    # Neuter the corruption check: the self-test must notice that its
    # seeded damage went undetected and fail loudly.
    return _script(
        f"""
        import sys
        from repro.chaos import invariants
        invariants.check_sealed_preserved = lambda *a, **k: []
        from repro.cli.main import main
        sys.exit(main([
            "chaos", "--self-test", "--seed", "0",
            "--workdir", {str(tmp)!r},
        ]))
        """,
        tmp,
    )


def _provoke_job_rejected(tmp):
    return _cli(
        ["submit", "--root", str(tmp), "--max-queue-depth", "0",
         "--size", "1024", "--machines", "SPR-DDR",
         "--variants", "Base_Seq", "--kernels", "Basic_DAXPY"],
        tmp,
    )


def _provoke_job_not_found(tmp):
    (tmp / "jobs").mkdir()
    return _cli(["jobs", "--root", str(tmp), "--job", "no-such-job"], tmp)


def _provoke_worker_crash(tmp):
    from repro.faults import FaultKind, FaultSpec
    from repro.suite.run_params import RunParams
    from repro.suite.worker import CellTask, worker_main

    params = RunParams(
        problem_size=1024, machines=("SPR-DDR",), variants=("Base_Seq",),
        kernels=("Basic_DAXPY",), output_dir=str(tmp),
    )
    task_q, result_q, heartbeat_q = _CTX.Queue(), _CTX.Queue(), _CTX.Queue()
    task_q.put(CellTask(
        machine="SPR-DDR", variant="Base_Seq", block=0, trial=0,
        fname="x.cali",
    ))
    child = _CTX.Process(
        target=worker_main,
        args=(0, params, task_q, result_q, heartbeat_q,
              [FaultSpec(kind=FaultKind.WORKER_CRASH)], False),
    )
    child.start()
    child.join(60.0)
    assert not child.is_alive()
    return child.exitcode


def _provoke_shard_orphaned(tmp):
    # A shard whose coordinator is gone self-terminates via its lease
    # thread (coordinator_pid=1 can never be this child's parent).
    return _script(
        """
        import pathlib, time
        from repro.suite.shard import ShardLease
        ShardLease(pathlib.Path("."), 0, 0.05, coordinator_pid=1).start()
        time.sleep(30)
        """,
        tmp,
        timeout=60.0,
    )


def _provoke_job_orphaned(tmp):
    return _script(
        """
        import time
        from repro.service.scheduler import _OrphanWatch
        _OrphanWatch(scheduler_pid=1, poll=0.05).start()
        time.sleep(30)
        """,
        tmp,
        timeout=60.0,
    )


def _provoke_chaos_kill(tmp):
    from repro.chaos.points import ENV_VAR, ChaosSchedule

    schedule = ChaosSchedule(point="manifest.pre-save", hit=1, mode="exit")
    return _cli(
        [*_RUN_SMALL, "--output-dir", str(tmp)],
        tmp, env={ENV_VAR: schedule.to_json()},
    )


def _provoke_interrupted(tmp):
    # SIGINT raised (for real) after the first supervised cell lands;
    # the supervisor drains and the CLI maps report.interrupted to 130.
    return _script(
        f"""
        import signal, sys
        from repro.suite import supervisor as sup

        class Interrupting(sup.CampaignSupervisor):
            def __init__(self, params, **kwargs):
                kwargs.setdefault(
                    "on_cell_complete",
                    lambda key: signal.raise_signal(signal.SIGINT),
                )
                super().__init__(params, **kwargs)

        sup.CampaignSupervisor = Interrupting
        from repro.cli.main import main
        sys.exit(main([
            "run", "--size", "1024", "--machines", "SPR-DDR",
            "--variants", "Base_Seq", "RAJA_Seq",
            "--kernels", "Basic_DAXPY", "Stream_TRIAD",
            "--workers", "2", "--output-dir", {str(tmp)!r},
        ]))
        """,
        tmp,
    )


_PROVOKERS = {
    exitcodes.OK: _provoke_ok,
    exitcodes.UNCLEAN_RUN: _provoke_unclean_run,
    exitcodes.USAGE: _provoke_usage,
    exitcodes.CAMPAIGN_LOCKED: _provoke_campaign_locked,
    exitcodes.DEGRADED_ANALYSIS: _provoke_degraded,
    exitcodes.INVARIANT_VIOLATION: _provoke_invariant_violation,
    exitcodes.JOB_REJECTED: _provoke_job_rejected,
    exitcodes.JOB_NOT_FOUND: _provoke_job_not_found,
    exitcodes.WORKER_CRASH: _provoke_worker_crash,
    exitcodes.SHARD_ORPHANED: _provoke_shard_orphaned,
    exitcodes.JOB_ORPHANED: _provoke_job_orphaned,
    exitcodes.CHAOS_KILL: _provoke_chaos_kill,
    exitcodes.INTERRUPTED: _provoke_interrupted,
}


@pytest.mark.parametrize(
    "code",
    sorted(_PROVOKERS),
    ids=lambda c: f"{c}-{[n for n, v in vars(exitcodes).items() if v == c and n.isupper()][0]}",
)
def test_exit_code_is_provoked_by_real_behavior(code, tmp_path):
    assert _PROVOKERS[code](tmp_path) == code


def test_every_documented_exit_code_has_a_provoker():
    documented = {
        value
        for name, value in vars(exitcodes).items()
        if name.isupper() and isinstance(value, int)
    }
    assert documented == set(_PROVOKERS)
