"""Chaos points, invariant checks, the chaos runner, and CLI exit codes."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import points as chaos_points
from repro.chaos.invariants import (
    check_completed_cells_remembered,
    check_full_cell_set,
    check_sealed_preserved,
    snapshot_store,
)
from repro.chaos.points import (
    CHAOS_KILL_EXITCODE,
    REGISTERED_POINTS,
    ChaosCrash,
    ChaosSchedule,
    arm,
    armed_schedule,
    crash_point,
    disarm,
    point_names,
)
from repro.cli import exitcodes
from repro.cli.main import main
from repro.util.fsio import TMP_GLOB, tmp_sibling, write_durable_text


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no armed schedule (and no env leak)."""
    disarm()
    yield
    disarm()


# ---------------------------------------------------------------- points
class TestChaosSchedule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            ChaosSchedule(point="no.such-point")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ChaosSchedule(point="manifest.pre-save", mode="explode")

    def test_bad_hit_rejected(self):
        with pytest.raises(ValueError, match="hit"):
            ChaosSchedule(point="manifest.pre-save", hit=0)

    def test_json_roundtrip(self):
        sched = ChaosSchedule(
            point="fsio.before-replace", hit=3, mode="exit",
            torn=True, seed=42, token="/tmp/tok",
        )
        back = ChaosSchedule.from_json(sched.to_json())
        assert (back.point, back.hit, back.mode, back.torn, back.seed,
                back.token) == (sched.point, sched.hit, sched.mode,
                                sched.torn, sched.seed, sched.token)

    def test_registry_covers_both_phases_and_modes(self):
        specs = REGISTERED_POINTS.values()
        assert any(s.phase == "analyze" for s in specs)
        assert any(s.modes == ("serial",) for s in specs)
        assert any(s.modes == ("supervised",) for s in specs)
        assert any(s.torn for s in specs)
        assert point_names() == list(REGISTERED_POINTS)


class TestCrashPointMechanics:
    def test_noop_when_disarmed(self, tmp_path):
        crash_point("manifest.pre-save", path=tmp_path / "x")  # no raise

    def test_armed_fires_chaoscrash(self):
        arm(ChaosSchedule(point="manifest.pre-save"))
        with pytest.raises(ChaosCrash):
            crash_point("manifest.pre-save")

    def test_other_points_pass_through(self):
        arm(ChaosSchedule(point="manifest.pre-save"))
        crash_point("fsio.before-tmp-write")  # different point: no strike

    def test_occurrence_counting(self):
        arm(ChaosSchedule(point="manifest.pre-save", hit=3))
        crash_point("manifest.pre-save")
        crash_point("manifest.pre-save")
        with pytest.raises(ChaosCrash):
            crash_point("manifest.pre-save")

    def test_unregistered_name_guard_when_armed(self):
        arm(ChaosSchedule(point="manifest.pre-save"))
        with pytest.raises(ValueError, match="unregistered"):
            crash_point("totally.bogus")

    def test_token_fires_exactly_once(self, tmp_path):
        token = tmp_path / "strike.token"
        arm(ChaosSchedule(point="manifest.pre-save", token=str(token)))
        with pytest.raises(ChaosCrash):
            crash_point("manifest.pre-save")
        assert token.exists()
        # Re-arm (fresh count) with the same token: already claimed.
        arm(ChaosSchedule(point="manifest.pre-save", token=str(token)))
        crash_point("manifest.pre-save")  # passes through

    def test_env_propagation_roundtrip(self):
        arm(ChaosSchedule(point="calipack.pre-index", hit=2))
        raw = os.environ[chaos_points.ENV_VAR]
        assert ChaosSchedule.from_json(raw).point == "calipack.pre-index"
        disarm()
        assert chaos_points.ENV_VAR not in os.environ
        assert armed_schedule() is None

    def test_torn_prefix_deterministic(self):
        a = chaos_points._torn_prefix(7, "f.cali.tmp", 100)
        b = chaos_points._torn_prefix(7, "f.cali.tmp", 100)
        c = chaos_points._torn_prefix(8, "f.cali.tmp", 100)
        assert a == b and 0 <= a <= 100
        assert (7, a) != (8, c) or a == c  # different seed may differ

    def test_tear_respects_base(self, tmp_path):
        f = tmp_path / "x.bin"
        f.write_bytes(b"A" * 64 + b"B" * 64)
        chaos_points._tear(str(f), torn_base=64, seed=0)
        data = f.read_bytes()
        assert 64 <= len(data) <= 128
        assert data[:64] == b"A" * 64  # durable prefix intact


class TestDurableWriteAtomicity:
    """In-process crashes at every fsio point never corrupt the target."""

    @pytest.mark.parametrize("point", [
        "fsio.before-tmp-write",
        "fsio.after-tmp-fsync",
        "fsio.before-replace",
    ])
    def test_pre_replace_crash_leaves_old_content(self, tmp_path, point):
        target = tmp_path / "ledger.json"
        write_durable_text(target, "old")
        arm(ChaosSchedule(point=point))
        with pytest.raises(ChaosCrash):
            write_durable_text(target, "new")
        assert target.read_text() == "old"

    @pytest.mark.parametrize("point", [
        "fsio.after-replace",
        "fsio.before-dir-fsync",
    ])
    def test_post_replace_crash_leaves_new_content(self, tmp_path, point):
        target = tmp_path / "ledger.json"
        write_durable_text(target, "old")
        arm(ChaosSchedule(point=point))
        with pytest.raises(ChaosCrash):
            write_durable_text(target, "new")
        assert target.read_text() == "new"

    def test_torn_tmp_never_reaches_target(self, tmp_path):
        target = tmp_path / "ledger.json"
        write_durable_text(target, "old")
        arm(ChaosSchedule(point="fsio.after-tmp-fsync", torn=True, seed=3))
        with pytest.raises(ChaosCrash):
            write_durable_text(target, "x" * 4096)
        assert target.read_text() == "old"
        # the torn tmp is an orphan fsck will sweep, never the target
        assert list(tmp_path.glob(TMP_GLOB))

    def test_tmp_siblings_unique(self, tmp_path):
        target = tmp_path / "t.json"
        names = {tmp_sibling(target).name for _ in range(10)}
        assert len(names) == 10
        assert all(str(os.getpid()) in n for n in names)


# ------------------------------------------------------------- invariants
def _tiny_campaign(tmp_path, **kw):
    from repro.suite.executor import SuiteExecutor
    from repro.suite.run_params import RunParams

    params = RunParams(
        problem_size=1024,
        machines=("SPR-DDR",),
        variants=("Base_Seq",),
        kernels=("Basic_DAXPY",),
        output_dir=str(tmp_path),
        retry_base_delay=0.0,
        retry_max_delay=0.0,
        retry_jitter=0.0,
        **kw,
    )
    SuiteExecutor(params).run(write_files=True)
    return params


class TestInvariantChecks:
    def test_snapshot_sees_sealed_and_ok(self, tmp_path):
        _tiny_campaign(tmp_path)
        snap = snapshot_store(tmp_path)
        assert snap.profiles and snap.ok_cells
        assert not check_sealed_preserved(snap, tmp_path)
        assert not check_completed_cells_remembered(snap, tmp_path)
        assert not check_full_cell_set(snap.ok_cells, tmp_path)

    def test_silent_corruption_detected(self, tmp_path):
        _tiny_campaign(tmp_path)
        snap = snapshot_store(tmp_path)
        victim = sorted(tmp_path.glob("*.cali"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 4] ^= 0xFF
        victim.write_bytes(bytes(data))
        violations = check_sealed_preserved(snap, tmp_path)
        assert violations and "lost" in violations[0]

    def test_quarantined_profile_is_preserved(self, tmp_path):
        from repro.suite.fsck import fsck_directory

        _tiny_campaign(tmp_path)
        snap = snapshot_store(tmp_path)
        victim = sorted(tmp_path.glob("*.cali"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 4] ^= 0xFF
        victim.write_bytes(bytes(data))
        fsck_directory(tmp_path)
        # quarantine satisfies I1 even though the profile is unreadable
        assert not check_sealed_preserved(snap, tmp_path)
        # ...but the cell set is no longer complete until resume
        assert check_full_cell_set(snap.ok_cells, tmp_path)

    def test_lost_manifest_detected(self, tmp_path):
        from repro.suite.manifest import MANIFEST_NAME

        _tiny_campaign(tmp_path)
        snap = snapshot_store(tmp_path)
        (tmp_path / MANIFEST_NAME).unlink()
        assert check_completed_cells_remembered(snap, tmp_path)
        assert check_full_cell_set(snap.ok_cells, tmp_path)


# ------------------------------------------------------------- the runner
class TestChaosRunner:
    def test_serial_trial_converges(self, tmp_path):
        from repro.chaos.runner import ChaosRunner

        runner = ChaosRunner(
            seed=0, trials_per_point=1,
            points=["fsio.after-tmp-fsync"], modes=["serial"],
            workdir=tmp_path,
        )
        report = runner.run()
        assert report.ok, report.to_json()
        assert report.to_dict()["counts"].get("ok") == 1
        assert not report.uncovered_points()

    def test_packed_point_with_torn_writes(self, tmp_path):
        from repro.chaos.runner import ChaosRunner

        runner = ChaosRunner(
            seed=1, trials_per_point=2,
            points=["calipack.pre-footer"], modes=["serial"],
            workdir=tmp_path,
        )
        report = runner.run()
        assert report.ok, report.to_json()
        assert any(t.torn for t in report.verdicts if t.fired)

    def test_supervised_trial_converges(self, tmp_path):
        from repro.chaos.runner import ChaosRunner

        runner = ChaosRunner(
            seed=0, trials_per_point=1,
            points=["supervisor.post-record"], modes=["supervised"],
            workdir=tmp_path,
        )
        report = runner.run()
        assert report.ok, report.to_json()

    def test_unknown_point_rejected(self, tmp_path):
        from repro.chaos.runner import ChaosRunner

        with pytest.raises(ValueError):
            ChaosRunner(seed=0, points=["nope"], workdir=tmp_path)

    def test_self_test_catches_suppressed_repairs(self, tmp_path):
        from repro.chaos.runner import ChaosRunner

        runner = ChaosRunner(seed=0, workdir=tmp_path)
        result = runner.self_test()
        assert result["ok"], result
        assert all(s["detected"] for s in result["scenarios"])


# ------------------------------------------------------------- exit codes
class TestExitCodes:
    def test_constants_are_distinct(self):
        codes = [exitcodes.OK, exitcodes.UNCLEAN_RUN, exitcodes.USAGE,
                 exitcodes.CAMPAIGN_LOCKED, exitcodes.DEGRADED_ANALYSIS,
                 exitcodes.INVARIANT_VIOLATION, exitcodes.WORKER_CRASH,
                 exitcodes.CHAOS_KILL, exitcodes.INTERRUPTED]
        assert len(set(codes)) == len(codes)
        assert exitcodes.OK == 0
        assert CHAOS_KILL_EXITCODE == exitcodes.CHAOS_KILL == 77

    def test_run_ok(self, tmp_path, capsys):
        rc = main(["run", "--output-dir", str(tmp_path), "--size", "1024",
                   "--machines", "SPR-DDR", "--variants", "Base_Seq",
                   "--kernels", "Basic_DAXPY"])
        assert rc == exitcodes.OK

    def test_run_locked(self, tmp_path, capsys):
        from repro.suite.manifest import LOCK_NAME

        holder = subprocess.Popen([sys.executable, "-c",
                                   "import time; time.sleep(30)"])
        try:
            (tmp_path / LOCK_NAME).write_text(
                json.dumps({"pid": holder.pid, "host": "x",
                            "acquired_at": "now"})
            )
            rc = main(["run", "--output-dir", str(tmp_path),
                       "--size", "1024", "--machines", "SPR-DDR",
                       "--variants", "Base_Seq",
                       "--kernels", "Basic_DAXPY"])
            assert rc == exitcodes.CAMPAIGN_LOCKED
            assert "lock" in capsys.readouterr().err.lower()
        finally:
            holder.kill()
            holder.wait()

    def test_analyze_degraded(self, tmp_path, capsys):
        main(["run", "--output-dir", str(tmp_path), "--size", "1024",
              "--machines", "SPR-DDR", "--variants", "Base_Seq", "RAJA_Seq",
              "--kernels", "Basic_DAXPY"])
        capsys.readouterr()
        profiles = sorted(tmp_path.glob("*.cali"))
        data = bytearray(profiles[0].read_bytes())
        data[10] ^= 0xFF
        profiles[0].write_bytes(bytes(data))
        rc = main(["analyze", "--json", "--no-cache"]
                  + [str(p) for p in profiles])
        assert rc == exitcodes.DEGRADED_ANALYSIS
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is True
        assert payload["load_errors"]["count"] == 1
        assert payload["load_errors"]["sources"][0]["source"] == str(profiles[0])

    def test_analyze_clean_json(self, tmp_path, capsys):
        main(["run", "--output-dir", str(tmp_path), "--size", "1024",
              "--machines", "SPR-DDR", "--variants", "Base_Seq",
              "--kernels", "Basic_DAXPY"])
        capsys.readouterr()
        profile = sorted(tmp_path.glob("*.cali"))[0]
        rc = main(["analyze", "--json", "--no-cache", str(profile)])
        assert rc == exitcodes.OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is False
        assert payload["load_errors"] == {"count": 0, "sources": []}
        assert payload["matrix"]  # the metric matrix made it to JSON

    def test_chaos_usage_error(self, tmp_path, capsys):
        rc = main(["chaos", "--points", "no.such-point",
                   "--workdir", str(tmp_path)])
        assert rc == exitcodes.USAGE

    def test_chaos_cli_single_point(self, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        rc = main(["chaos", "--seed", "0", "--trials-per-point", "1",
                   "--points", "manifest.pre-save", "--modes", "serial",
                   "--workdir", str(tmp_path / "work"),
                   "--report", str(report_file)])
        assert rc == exitcodes.OK
        payload = json.loads(report_file.read_text())
        assert payload["ok"] is True
        assert payload["trials"][0]["point"] == "manifest.pre-save"
        assert "replay" in payload["trials"][0]

    def test_fsck_clean(self, tmp_path, capsys):
        main(["run", "--output-dir", str(tmp_path), "--size", "1024",
              "--machines", "SPR-DDR", "--variants", "Base_Seq",
              "--kernels", "Basic_DAXPY"])
        rc = main(["fsck", str(tmp_path)])
        assert rc == exitcodes.OK


class TestFsckTmpSweep:
    def test_orphaned_tmps_removed(self, tmp_path, capsys):
        _tiny_campaign(tmp_path)
        orphan = tmp_sibling(tmp_path / "rajaperf_x.cali")
        orphan.write_bytes(b"half-written garbage")
        rc = main(["fsck", str(tmp_path)])
        assert rc == exitcodes.OK
        assert not orphan.exists()
        assert "tmp file(s) removed" in capsys.readouterr().out

    def test_live_campaign_tmps_kept(self, tmp_path):
        from repro.suite.fsck import fsck_directory
        from repro.suite.manifest import LOCK_NAME

        _tiny_campaign(tmp_path)
        orphan = tmp_sibling(tmp_path / "rajaperf_x.cali")
        orphan.write_bytes(b"in-flight bytes of a live campaign")
        holder = subprocess.Popen([sys.executable, "-c",
                                   "import time; time.sleep(30)"])
        try:
            (tmp_path / LOCK_NAME).write_text(
                json.dumps({"pid": holder.pid, "host": "x",
                            "acquired_at": "now"})
            )
            report = fsck_directory(tmp_path)
            assert orphan.exists()
            assert not report.removed_tmp
        finally:
            holder.kill()
            holder.wait()
            (tmp_path / LOCK_NAME).unlink()

    def test_dry_run_keeps_tmps(self, tmp_path):
        from repro.suite.fsck import fsck_directory

        _tiny_campaign(tmp_path)
        orphan = tmp_sibling(tmp_path / "rajaperf_x.cali")
        orphan.write_bytes(b"garbage")
        fsck_directory(tmp_path, quarantine=False, mark_rerun=False)
        assert orphan.exists()
