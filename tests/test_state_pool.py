"""The kernel-state pool: snapshot, write-set certification, restore.

The pool's contract: an acquired instance behaves exactly like a fresh
``cls(problem_size); ensure_setup()`` — every checksum bit-identical —
while skipping re-allocation and re-initialization. Anything it cannot
prove restorable must fall back to fresh instantiation.
"""

import numpy as np
import pytest

from repro.cli.main import build_parser
from repro.suite.executor import SuiteExecutor
from repro.suite.registry import make_kernel
from repro.suite.run_params import RunParams
from repro.suite.state_pool import (
    KernelStatePool,
    UnpoolableState,
    _restore_value,
    _snapshot_value,
    _value_matches,
)
from repro.suite.variants import get_variant

RAJA_SEQ = get_variant("RAJA_Seq")
RAJA_CUDA = get_variant("RAJA_CUDA")
BASE_SEQ = get_variant("Base_Seq")


def _fresh_checksum(cls, size, variant):
    kernel = cls(problem_size=size)
    return kernel.run_variant(variant)


class TestPooledEqualsFresh:
    @pytest.mark.parametrize(
        "name",
        ["Stream_TRIAD", "Basic_DAXPY", "Lcals_DIFF_PREDICT",
         "Stream_DOT", "Algorithm_HISTOGRAM"],
    )
    def test_repeated_acquires_bit_identical(self, name):
        size = 1003
        cls = type(make_kernel(name, size))
        pool = KernelStatePool()
        variants = [v for v in cls(problem_size=size).variants()
                    if v.name in ("Base_Seq", "RAJA_Seq", "RAJA_CUDA")]
        for _round in range(3):
            for variant in variants:
                kernel = pool.acquire(cls, size)
                pooled = kernel.run_variant_prepared(variant)
                fresh = _fresh_checksum(cls, size, variant)
                assert repr(pooled) == repr(fresh), (name, variant.name)

    def test_hit_returns_live_instance(self):
        cls = type(make_kernel("Stream_TRIAD", 500))
        pool = KernelStatePool()
        first = pool.acquire(cls, 500)
        first.run_variant_prepared(RAJA_SEQ)
        second = pool.acquire(cls, 500)
        assert second is first
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1

    def test_accumulating_kernel_restored_between_runs(self):
        # DAXPY's y += a*x feeds prior output back in: without restore a
        # second pooled run would double-accumulate.
        cls = type(make_kernel("Basic_DAXPY", 777))
        pool = KernelStatePool()
        sums = []
        for _ in range(3):
            kernel = pool.acquire(cls, 777)
            sums.append(kernel.run_variant_prepared(RAJA_SEQ))
        assert len(set(map(repr, sums))) == 1

    def test_volatile_mutation_healed_on_acquire(self):
        # DAXPY's accumulator y is certified volatile; a run (or any
        # destructive mutation) of it must be undone by the next acquire.
        cls = type(make_kernel("Basic_DAXPY", 400))
        pool = KernelStatePool()
        kernel = pool.acquire(cls, 400)
        baseline = kernel.run_variant_prepared(RAJA_SEQ)
        kernel.y.fill(123.456)
        healed = pool.acquire(cls, 400)
        assert repr(healed.run_variant_prepared(RAJA_SEQ)) == repr(baseline)


class TestCertification:
    def test_overwrite_only_outputs_certified_stable(self):
        # TRIAD's a[:] = b + q*c reaches a fixed point after one run;
        # certification must drop it from the per-acquire restore set.
        cls = type(make_kernel("Stream_TRIAD", 600))
        pool = KernelStatePool()
        pool.acquire(cls, 600)
        (entry,) = pool._entries.values()
        volatile_arrays = {
            n for n, t in entry.volatile.items() if t[0] == "nd"
        }
        assert "a" not in volatile_arrays  # the overwritten output
        assert {"b", "c"} & set(cls(problem_size=600).__dict__) or True

    def test_accumulator_certified_volatile(self):
        cls = type(make_kernel("Basic_DAXPY", 600))
        pool = KernelStatePool()
        pool.acquire(cls, 600)
        (entry,) = pool._entries.values()
        assert "y" in entry.volatile  # y += a*x never reaches a fixed point

    def test_certification_failure_restores_everything(self):
        # A kernel with no Base_Seq/RAJA_Seq variants cannot be certified:
        # every snapshotted attribute stays volatile.
        class Uncertifiable:
            def __init__(self, problem_size=None):
                self.data = np.arange(float(problem_size or 8))

            def ensure_setup(self):
                pass

            def variants(self):
                return ()

        pool = KernelStatePool()
        pool.acquire(Uncertifiable, 8)
        (entry,) = pool._entries.values()
        assert "data" in entry.volatile


class TestSnapshotRestore:
    def test_rng_state_round_trips(self):
        rng = np.random.default_rng(42)
        token = _snapshot_value(rng, 0, set())
        expected = rng.normal(size=5)
        rng.normal(size=100)  # advance the stream
        restored = _restore_value(rng, token)
        assert restored is rng
        np.testing.assert_array_equal(rng.normal(size=5), expected)

    def test_ndarray_restored_in_place(self):
        arr = np.arange(10.0)
        token = _snapshot_value(arr, 0, set())
        view = arr[2:5]
        arr += 100.0
        restored = _restore_value(arr, token)
        assert restored is arr  # aliases (Views) stay valid
        np.testing.assert_array_equal(view, [2.0, 3.0, 4.0])

    def test_nested_containers_round_trip(self):
        state = {"xs": [np.zeros(4), np.ones(4)], "n": 7}
        token = _snapshot_value(state, 0, set())
        state["xs"][0][:] = 9.0
        state["n"] = -1
        state["junk"] = "added"
        _restore_value(state, token)
        np.testing.assert_array_equal(state["xs"][0], np.zeros(4))
        assert state["n"] == 7
        assert "junk" not in state

    def test_unsnapshotable_value_raises(self):
        with pytest.raises(UnpoolableState):
            _snapshot_value(lambda: None, 0, set())

    def test_value_matches_is_bit_exact(self):
        arr = np.arange(5.0)
        token = _snapshot_value(arr, 0, set())
        assert _value_matches(arr, token)
        arr[3] = np.nextafter(arr[3], np.inf)  # one ulp
        assert not _value_matches(arr, token)


class TestFallbacksAndBudget:
    def test_unpoolable_class_falls_back_to_fresh(self):
        class Unpoolable:
            def __init__(self, problem_size=None):
                self.fn = lambda: None  # not snapshotable

            def ensure_setup(self):
                pass

            def variants(self):
                return ()

        pool = KernelStatePool()
        first = pool.acquire(Unpoolable, 4)
        second = pool.acquire(Unpoolable, 4)
        assert first is not second
        assert pool.stats()["fallbacks"] >= 1
        assert pool.stats()["entries"] == 0

    @staticmethod
    def _volatile_class(name):
        # No variants => certification yields nothing and the whole 8 KiB
        # array stays volatile, giving the entry a real byte cost.
        def __init__(self, problem_size=None):
            self.data = np.zeros(1024)

        return type(name, (), {
            "__init__": __init__,
            "ensure_setup": lambda self: None,
            "variants": lambda self: (),
        })

    def test_byte_budget_evicts_lru(self):
        cls_a = self._volatile_class("VolatileA")
        cls_b = self._volatile_class("VolatileB")
        small = KernelStatePool(max_bytes=10 * 1024)
        small.acquire(cls_a, 1024)
        small.acquire(cls_b, 1024)  # 16 KiB volatile total: evicts A
        stats = small.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] <= small.max_bytes
        assert (cls_b, 1024, None) in small._entries

    def test_oversized_snapshot_still_returns_working_kernel(self):
        cls = type(make_kernel("Basic_DAXPY", 3000))
        small = KernelStatePool(max_bytes=1)
        kernel = small.acquire(cls, 3000)
        fresh = _fresh_checksum(cls, 3000, RAJA_SEQ)
        assert repr(kernel.run_variant_prepared(RAJA_SEQ)) == repr(fresh)


class TestExecutorIntegration:
    def _params(self, state_pool):
        return RunParams(
            problem_size=1500,
            execution_size_cap=1500,
            execute=True,
            trials=2,
            machines=("SPR-DDR",),
            variants=("Base_Seq", "RAJA_Seq"),
            kernels=("Basic_DAXPY", "Stream_TRIAD"),
            state_pool=state_pool,
            output_dir="/tmp/state-pool-test",
        )

    @staticmethod
    def _checksums(result):
        out = {}
        for prof in result.profiles:
            g = prof.globals
            for node in prof.walk():
                value = getattr(node, "metrics", {}).get("checksum")
                if value is not None:
                    out[(g["variant"], g["trial"], node.path)] = value
        return out

    def test_pool_on_off_profiles_identical(self):
        on = SuiteExecutor(self._params(True)).run(write_files=False)
        off = SuiteExecutor(self._params(False)).run(write_files=False)
        sums_on, sums_off = self._checksums(on), self._checksums(off)
        assert sums_on and sums_on == sums_off

    def test_setup_time_metric_present(self):
        result = SuiteExecutor(self._params(True)).run(write_files=False)
        found = False
        for prof in result.profiles:
            for node in prof.walk():
                metrics = getattr(node, "metrics", {})
                if "wall time (executed)" in metrics:
                    assert "setup time (executed)" in metrics
                    assert metrics["setup time (executed)"] >= 0.0
                    found = True
        assert found

    def test_cli_no_state_pool_flag(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--no-state-pool"])
        assert args.no_state_pool is True
        args = parser.parse_args(["run"])
        assert args.no_state_pool is False
