"""Predicate pushdown into the calipack index and the ingest cache.

Pushdown is an optimization with a correctness contract: it may only
skip work, never change an answer. Every test here pins a composed
result against the eager full-compose-then-filter path — at 0%, some,
and 100% index-level rejection — while counting payload parses to prove
the skipping actually happened. The incremental path gets the same
treatment: prefix reuse must be bit-for-bit identical (dtypes included)
to a from-scratch recompose.
"""

import json
import zlib

import numpy as np
import pytest

from repro.caliper import calipack
from repro.caliper.records import CaliProfile, RegionRecord
from repro.cli import exitcodes
from repro.cli.main import main
from repro.dataframe import Frame, col, scan_cache
from repro.thicket import Thicket, ingest_cache

N_PROFILES = 8


def make_profile(i, extra=None, metric_extra=None):
    g = {"machine": f"m{i % 2}", "variant": f"v{i % 3}", "trial": 0}
    if extra:
        g.update(extra)
    profile = CaliProfile(globals=g)
    root = RegionRecord(name="RAJAPerf", path=("RAJAPerf",), metrics={})
    kids = []
    for k in range(3):
        metrics = {"time": float(i * 10 + k), "reps": float(k)}
        if metric_extra and k == 0:
            metrics.update(metric_extra)
        kids.append(
            RegionRecord(name=f"K_{k}", path=("RAJAPerf", f"K_{k}"), metrics=metrics)
        )
    root.children = kids
    profile.roots = [root]
    return profile


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """Eight profiles; the last one carries extra metadata and an extra
    metric, so excluding it exercises schema padding."""
    path = tmp_path_factory.mktemp("campaign") / "campaign.calipack"
    with calipack.CalipackWriter(path) as writer:
        for i in range(N_PROFILES):
            extra = {"only_late": "yes"} if i == 7 else None
            metric_extra = {"special": 1.0} if i == 7 else None
            writer.append_profile(f"p{i}.cali", make_profile(i, extra, metric_extra))
    return path


@pytest.fixture
def parse_counter(monkeypatch):
    import repro.thicket.ingest as ingest_mod

    calls = {"n": 0}
    orig = ingest_mod.parse_cali_payload

    def counting(data, label):
        calls["n"] += 1
        return orig(data, label)

    monkeypatch.setattr(ingest_mod, "parse_cali_payload", counting)
    return calls


class TestIndexPushdown:
    def test_rejecting_some_entries_skips_their_parses(self, archive, parse_counter):
        full = Thicket.from_caliperreader(str(archive))
        eager = full.filter_metadata(col("variant") == "v1")

        parse_counter["n"] = 0
        pushed = Thicket.from_caliperreader(str(archive), where=col("variant") == "v1")
        assert parse_counter["n"] == 3  # i in {1, 4, 7}
        assert pushed.metadata.equals(eager.metadata)
        assert pushed.dataframe.equals(eager.dataframe)

    def test_rejecting_nothing_matches_full_compose(self, archive, parse_counter):
        full = Thicket.from_caliperreader(str(archive))
        parse_counter["n"] = 0
        pushed = Thicket.from_caliperreader(str(archive), where=col("trial") == 0)
        assert parse_counter["n"] == N_PROFILES
        assert pushed.metadata.equals(full.metadata)
        assert pushed.dataframe.equals(full.dataframe)

    def test_rejecting_everything_falls_back_to_full_compose(
        self, archive, parse_counter
    ):
        """An all-rejected pushdown can't reconstruct result dtypes from
        the index alone, so it composes fully and filters exactly."""
        full = Thicket.from_caliperreader(str(archive))
        eager = full.filter_metadata(col("variant") == "nope")

        parse_counter["n"] = 0
        pushed = Thicket.from_caliperreader(
            str(archive), where=col("variant") == "nope"
        )
        assert parse_counter["n"] == N_PROFILES
        assert pushed.metadata.nrows == 0
        assert pushed.metadata.columns == eager.metadata.columns
        assert pushed.metadata.equals(eager.metadata)
        assert pushed.dataframe.equals(eager.dataframe)

    def test_schema_padding_when_schema_bearing_entry_is_rejected(self, archive):
        """Excluding the only profile that defines a column/metric must
        still reproduce the full-compose schema — order, Nones, NaNs."""
        full = Thicket.from_caliperreader(str(archive))
        expr = col("variant") == "v0"  # i in {0, 3, 6}; excludes p7
        eager = full.filter_metadata(expr)
        pushed = Thicket.from_caliperreader(str(archive), where=expr)
        assert pushed.metadata.columns == eager.metadata.columns
        assert pushed.dataframe.columns == eager.dataframe.columns
        assert pushed.metadata.equals(eager.metadata)
        assert pushed.dataframe.equals(eager.dataframe)
        for name in eager.dataframe.columns:
            assert pushed.dataframe[name].dtype == eager.dataframe[name].dtype

    def test_where_accepts_expression_strings(self, archive):
        full = Thicket.from_caliperreader(str(archive))
        pushed = Thicket.from_caliperreader(
            str(archive), where="variant == 'v1' and machine == 'm1'"
        )
        eager = full.filter_metadata((col("variant") == "v1") & (col("machine") == "m1"))
        assert pushed.metadata.equals(eager.metadata)
        assert pushed.dataframe.equals(eager.dataframe)

    def test_where_rejects_non_expressions(self, archive):
        with pytest.raises(TypeError):
            Thicket.from_caliperreader(str(archive), where=42)


class TestIncremental:
    def test_prefix_reuse_is_bit_identical(self, archive, tmp_path, parse_counter):
        cache = tmp_path / "cache"
        prefix = [f"{archive}::p{i}.cali" for i in range(5)]
        Thicket.from_caliperreader(prefix, cache=cache)

        everything = [f"{archive}::p{i}.cali" for i in range(N_PROFILES)]
        parse_counter["n"] = 0
        incremental = Thicket.from_caliperreader(
            everything, cache=cache, incremental=True
        )
        assert parse_counter["n"] == 3  # only the appended suffix
        full = Thicket.from_caliperreader(everything)
        assert incremental.metadata.columns == full.metadata.columns
        assert incremental.metadata.equals(full.metadata)
        assert incremental.dataframe.equals(full.dataframe)
        for name in full.dataframe.columns:
            assert incremental.dataframe[name].dtype == full.dataframe[name].dtype
        for name in full.metadata.columns:
            assert incremental.metadata[name].dtype == full.metadata[name].dtype

    def test_incremental_result_is_stored_for_exact_hits(
        self, archive, tmp_path, parse_counter
    ):
        cache = tmp_path / "cache"
        prefix = [f"{archive}::p{i}.cali" for i in range(5)]
        everything = [f"{archive}::p{i}.cali" for i in range(N_PROFILES)]
        Thicket.from_caliperreader(prefix, cache=cache)
        Thicket.from_caliperreader(everything, cache=cache, incremental=True)

        parse_counter["n"] = 0
        again = Thicket.from_caliperreader(everything, cache=cache)
        assert parse_counter["n"] == 0
        full = Thicket.from_caliperreader(everything)
        assert again.metadata.equals(full.metadata)
        assert again.dataframe.equals(full.dataframe)

    def test_incremental_composes_with_where(self, archive, tmp_path):
        cache = tmp_path / "cache"
        everything = [f"{archive}::p{i}.cali" for i in range(N_PROFILES)]
        Thicket.from_caliperreader(everything, cache=cache)
        filtered = Thicket.from_caliperreader(
            everything, cache=cache, incremental=True, where=col("variant") == "v1"
        )
        full = Thicket.from_caliperreader(everything)
        eager = full.filter_metadata(col("variant") == "v1")
        assert filtered.metadata.equals(eager.metadata)
        assert filtered.dataframe.equals(eager.dataframe)


# --------------------------------------------------------- column store
@pytest.fixture
def stored_tables(tmp_path):
    metadata = Frame({
        "profile": np.array([f"p{i}" for i in range(10)], dtype=object),
        "variant": np.array([f"v{i % 3}" for i in range(10)], dtype=object),
        "trial": np.arange(10, dtype=np.int64),
    })
    dataframe = Frame({
        "profile": np.array([f"p{i}" for i in range(10)], dtype=object),
        "time": np.linspace(0.0, 1.0, 10),
    })
    sources = [(f"p{i}.cali", f"{i:08x}") for i in range(10)]
    path = ingest_cache.store(tmp_path, sources, dataframe, metadata)
    return path, sources, dataframe, metadata


class TestColumnStore:
    def test_selective_load_returns_only_requested(self, stored_tables):
        path, _, _, metadata = stored_tables
        store = ingest_cache.ColumnStore(path, "metadata")
        cols, nrows = store.load_columns({"variant"})
        assert list(cols) == ["variant"]
        assert nrows == metadata.nrows
        from repro.dataframe.expr import DictColumn
        assert isinstance(cols["variant"], DictColumn)
        assert cols["variant"].decode().tolist() == metadata["variant"].tolist()

    def test_unknown_column_raises_keyerror(self, stored_tables):
        path, _, _, _ = stored_tables
        with pytest.raises(KeyError):
            ingest_cache.ColumnStore(path, "metadata").load_columns({"nope"})

    def test_unknown_table_raises(self, stored_tables):
        path, _, _, _ = stored_tables
        with pytest.raises(ValueError):
            ingest_cache.ColumnStore(path, "bogus")

    def test_scan_reads_only_referenced_buffers(self, stored_tables, monkeypatch):
        """A pruned+pushed plan touches exactly the buffers it needs:
        the predicate column and the projected columns, nothing else."""
        path, _, _, _ = stored_tables
        read = []
        orig = ingest_cache.ColumnStore._read_buffer

        def counting(self, handle, colspec):
            read.append(colspec["name"])
            return orig(self, handle, colspec)

        monkeypatch.setattr(ingest_cache.ColumnStore, "_read_buffer", counting)
        result = (
            scan_cache(str(path), table="metadata")
            .filter(col("variant") == "v1")
            .select(["profile"])
            .collect()
        )
        assert sorted(read) == ["profile", "variant"]
        assert result.columns == ["profile"]
        assert result["profile"].tolist() == ["p1", "p4", "p7"]

    def test_collect_matches_eager_load(self, stored_tables):
        path, sources, _, metadata = stored_tables
        eager = metadata.filter(col("trial") >= 5).select(["profile", "trial"])
        lazy = (
            scan_cache(str(path), table="metadata")
            .filter(col("trial") >= 5)
            .select(["profile", "trial"])
            .collect()
        )
        assert lazy.equals(eager)
        assert lazy["trial"].dtype == eager["trial"].dtype


class TestCacheLayout:
    def test_sources_live_in_the_blob_not_the_header(self, stored_tables):
        """The header must stay O(columns): a 100k-profile source list in
        the header JSON would tax every column-selective scan."""
        path, sources, dataframe, metadata = stored_tables
        raw = path.read_bytes()
        nl = raw.index(b"\n")
        fields = dict(
            part.split("=", 1)
            for part in raw[:nl].decode("ascii")[len("#thicket-ingest-cache v1"):].split()
        )
        header = json.loads(raw[nl + 1 : nl + 1 + int(fields["header"])])
        assert "sources" not in header
        assert "sources_ref" in header
        hit = ingest_cache.load(path.parent, sources)
        assert hit is not None
        assert hit[0].equals(dataframe) and hit[1].equals(metadata)

    def test_inline_sources_layout_still_loads(self, tmp_path):
        """Files written before sources moved into the blob keep working."""
        metadata = Frame({"profile": np.array(["p0", "p1"], dtype=object)})
        dataframe = Frame({"profile": np.array(["p0", "p1"], dtype=object)})
        sources = [("p0.cali", "00000001"), ("p1.cali", "00000002")]

        blob = bytearray()
        header = {
            "sources": sources,
            "dataframe": ingest_cache._encode_frame(dataframe, blob),
            "metadata": ingest_cache._encode_frame(metadata, blob),
        }
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        body = header_bytes + bytes(blob)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        hcrc = zlib.crc32(header_bytes) & 0xFFFFFFFF
        head = (
            f"{ingest_cache._MAGIC} header={len(header_bytes)} "
            f"blob={len(blob)} crc32={crc:08x} hcrc={hcrc:08x}\n"
        ).encode("ascii")
        target = ingest_cache.cache_path(tmp_path, ingest_cache.cache_key(sources))
        target.write_bytes(head + body)

        hit = ingest_cache.load(tmp_path, sources)
        assert hit is not None
        assert hit[1].equals(metadata)
        grown = sources + [("p2.cali", "00000003")]
        found = ingest_cache.find_prefix(tmp_path, grown)
        assert found is not None and found[0] == 2

    def test_find_prefix_spans_the_new_layout(self, stored_tables):
        path, sources, dataframe, metadata = stored_tables
        grown = sources + [("p10.cali", "0000000a")]
        found = ingest_cache.find_prefix(path.parent, grown)
        assert found is not None
        n, df, md = found
        assert n == len(sources)
        assert df.equals(dataframe) and md.equals(metadata)


class TestAnalyzeCli:
    def test_where_filters_profiles(self, archive, capsys):
        rc = main([
            "analyze", "--json", "--no-cache", "--metric", "time",
            "--where", "machine == 'm1'", str(archive),
        ])
        assert rc == exitcodes.OK
        payload = json.loads(capsys.readouterr().out)
        # Odd i only: the three distinct m1/<variant> profile ids.
        assert sorted(payload["profiles"]) == ["m1/v0", "m1/v1", "m1/v2"]
        assert payload["load_errors"]["count"] == 0

    def test_invalid_where_is_a_usage_error(self, archive, capsys):
        rc = main([
            "analyze", "--json", "--no-cache",
            "--where", "variant ==", str(archive),
        ])
        assert rc == exitcodes.USAGE
        assert "invalid --where" in capsys.readouterr().err

    def test_incremental_requires_the_cache(self, archive, capsys):
        rc = main(["analyze", "--json", "--no-cache", "--incremental", str(archive)])
        assert rc == exitcodes.USAGE
        assert "--incremental requires" in capsys.readouterr().err

    def test_incremental_analyze_covers_appended_segment(self, archive, capsys):
        prefix = [f"{archive}::p{i}.cali" for i in range(5)]
        assert main(["analyze", "--json", "--metric", "time", *prefix]) == exitcodes.OK
        capsys.readouterr()
        everything = [f"{archive}::p{i}.cali" for i in range(N_PROFILES)]
        rc = main([
            "analyze", "--json", "--metric", "time", "--incremental", *everything,
        ])
        assert rc == exitcodes.OK
        payload = json.loads(capsys.readouterr().out)
        # All six distinct machine/variant profile ids across the 8 entries.
        assert len(payload["profiles"]) == 6
