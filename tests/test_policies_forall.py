"""Execution policies and the forall dispatch primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rajasim import (
    Backend,
    cuda_exec,
    forall,
    forall_chunks,
    hip_exec,
    omp_parallel_for_exec,
    seq_exec,
    simd_exec,
    sycl_exec,
)
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy

ALL_POLICIES = [seq_exec, simd_exec, omp_parallel_for_exec, cuda_exec, hip_exec, sycl_exec]


class TestPolicies:
    def test_gpu_flag(self):
        assert cuda_exec.is_gpu and hip_exec.is_gpu and sycl_exec.is_gpu
        assert not seq_exec.is_gpu and not omp_parallel_for_exec.is_gpu

    def test_tuning_name(self):
        assert cuda_exec.tuning_name() == "block_256"
        assert cuda_exec.with_block_size(128).tuning_name() == "block_128"
        assert seq_exec.tuning_name() == "default"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExecPolicy(Backend.CUDA, block_size=0)
        with pytest.raises(ValueError):
            ExecPolicy(Backend.OPENMP, num_threads=0)
        with pytest.raises(ValueError):
            ExecPolicy(Backend.OPENMP, chunk_size=-1)


class TestSegments:
    def test_int_segment(self):
        np.testing.assert_array_equal(_normalize_segment(4), [0, 1, 2, 3])

    def test_tuple_segment(self):
        np.testing.assert_array_equal(_normalize_segment((2, 5)), [2, 3, 4])

    def test_range_segment(self):
        np.testing.assert_array_equal(_normalize_segment(range(1, 7, 2)), [1, 3, 5])

    def test_array_segment(self):
        np.testing.assert_array_equal(_normalize_segment([5, 3, 1]), [5, 3, 1])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            _normalize_segment(-1)

    def test_reversed_tuple_rejected(self):
        with pytest.raises(ValueError):
            _normalize_segment((5, 2))


class TestPartitioning:
    def test_seq_is_one_partition(self):
        parts = list(iter_partitions(seq_exec, np.arange(1000)))
        assert len(parts) == 1

    def test_gpu_partitions_are_block_sized(self):
        parts = list(iter_partitions(cuda_exec, np.arange(1000)))
        assert all(len(p) == 256 for p in parts[:-1])
        assert len(parts[-1]) == 1000 - 256 * 3

    def test_openmp_partitions_cover_once(self):
        parts = list(iter_partitions(omp_parallel_for_exec, np.arange(500)))
        joined = np.concatenate(parts)
        np.testing.assert_array_equal(np.sort(joined), np.arange(500))

    def test_empty_segment_no_partitions(self):
        assert list(iter_partitions(cuda_exec, np.arange(0))) == []


class TestForall:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.backend.value)
    def test_all_policies_produce_same_result(self, policy):
        n = 1003
        x = np.linspace(0.0, 1.0, n)
        out = np.zeros(n)

        def body(i):
            out[i] = 2.0 * x[i] + 1.0

        forall(policy, n, body)
        np.testing.assert_array_equal(out, 2.0 * x + 1.0)

    def test_returns_launch_count(self):
        assert forall(cuda_exec, 1000, lambda i: None) == 4
        assert forall(seq_exec, 1000, lambda i: None) == 1

    def test_forall_chunks_ordinals(self):
        seen = []
        forall_chunks(cuda_exec, 600, lambda part, k: seen.append(k))
        assert seen == [0, 1, 2]

    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_partition_cover_property(self, n, policy_index):
        """Every policy's partitions cover the iteration space exactly once."""
        policy = ALL_POLICIES[policy_index]
        parts = list(iter_partitions(policy, np.arange(n)))
        joined = np.concatenate(parts) if parts else np.array([], dtype=int)
        np.testing.assert_array_equal(np.sort(joined), np.arange(n))
