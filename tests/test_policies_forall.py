"""Execution policies and the forall dispatch primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rajasim import (
    Backend,
    cuda_exec,
    forall,
    forall_chunks,
    hip_exec,
    omp_parallel_for_exec,
    seq_exec,
    simd_exec,
    sycl_exec,
)
import importlib

# The package re-exports the forall *function*, shadowing the module name.
forall_mod = importlib.import_module("repro.rajasim.forall")

from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy

ALL_POLICIES = [seq_exec, simd_exec, omp_parallel_for_exec, cuda_exec, hip_exec, sycl_exec]


class TestPolicies:
    def test_gpu_flag(self):
        assert cuda_exec.is_gpu and hip_exec.is_gpu and sycl_exec.is_gpu
        assert not seq_exec.is_gpu and not omp_parallel_for_exec.is_gpu

    def test_tuning_name(self):
        assert cuda_exec.tuning_name() == "block_256"
        assert cuda_exec.with_block_size(128).tuning_name() == "block_128"
        assert seq_exec.tuning_name() == "default"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExecPolicy(Backend.CUDA, block_size=0)
        with pytest.raises(ValueError):
            ExecPolicy(Backend.OPENMP, num_threads=0)
        with pytest.raises(ValueError):
            ExecPolicy(Backend.OPENMP, chunk_size=-1)


class TestSegments:
    def test_int_segment(self):
        np.testing.assert_array_equal(_normalize_segment(4), [0, 1, 2, 3])

    def test_tuple_segment(self):
        np.testing.assert_array_equal(_normalize_segment((2, 5)), [2, 3, 4])

    def test_range_segment(self):
        np.testing.assert_array_equal(_normalize_segment(range(1, 7, 2)), [1, 3, 5])

    def test_array_segment(self):
        np.testing.assert_array_equal(_normalize_segment([5, 3, 1]), [5, 3, 1])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            _normalize_segment(-1)

    def test_reversed_tuple_rejected(self):
        with pytest.raises(ValueError):
            _normalize_segment((5, 2))


class TestPartitioning:
    def test_seq_is_one_partition(self):
        parts = list(iter_partitions(seq_exec, np.arange(1000)))
        assert len(parts) == 1

    def test_gpu_partitions_are_block_sized(self):
        parts = list(iter_partitions(cuda_exec, np.arange(1000)))
        assert all(len(p) == 256 for p in parts[:-1])
        assert len(parts[-1]) == 1000 - 256 * 3

    def test_openmp_partitions_cover_once(self):
        parts = list(iter_partitions(omp_parallel_for_exec, np.arange(500)))
        joined = np.concatenate(parts)
        np.testing.assert_array_equal(np.sort(joined), np.arange(500))

    def test_empty_segment_no_partitions(self):
        assert list(iter_partitions(cuda_exec, np.arange(0))) == []


class TestForall:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.backend.value)
    def test_all_policies_produce_same_result(self, policy):
        n = 1003
        x = np.linspace(0.0, 1.0, n)
        out = np.zeros(n)

        def body(i):
            out[i] = 2.0 * x[i] + 1.0

        forall(policy, n, body)
        np.testing.assert_array_equal(out, 2.0 * x + 1.0)

    def test_returns_launch_count(self):
        assert forall(cuda_exec, 1000, lambda i: None) == 4
        assert forall(seq_exec, 1000, lambda i: None) == 1

    def test_forall_chunks_ordinals(self):
        seen = []
        forall_chunks(cuda_exec, 600, lambda part, k: seen.append(k))
        assert seen == [0, 1, 2]

    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_partition_cover_property(self, n, policy_index):
        """Every policy's partitions cover the iteration space exactly once."""
        policy = ALL_POLICIES[policy_index]
        parts = list(iter_partitions(policy, np.arange(n)))
        joined = np.concatenate(parts) if parts else np.array([], dtype=int)
        np.testing.assert_array_equal(np.sort(joined), np.arange(n))


class TestSegmentValidation:
    def test_float_tuple_bounds_rejected(self):
        with pytest.raises(TypeError, match="segment bounds must be integers"):
            _normalize_segment((0.0, 5))
        with pytest.raises(TypeError, match="segment bounds must be integers"):
            _normalize_segment((0, 5.5))

    def test_bool_bounds_rejected(self):
        # bool is an int subclass; silently iterating (False, True) would
        # hide a caller bug.
        with pytest.raises(TypeError):
            _normalize_segment((False, True))

    def test_bool_segment_rejected(self):
        with pytest.raises(TypeError):
            _normalize_segment(True)

    def test_numpy_integer_bounds_accepted(self):
        np.testing.assert_array_equal(
            _normalize_segment((np.int64(2), np.int32(5))), [2, 3, 4]
        )

    def test_forall_rejects_float_tuple(self):
        with pytest.raises(TypeError):
            forall(seq_exec, (0, 4.2), lambda i: None)


class TestDispatchEngine:
    """The zero-copy engine: capability protocol, plan cache, legacy mode."""

    def setup_method(self):
        forall_mod.clear_dispatch_caches()

    def test_default_mode_is_fast(self):
        assert forall_mod.dispatch_mode() == "fast"

    def test_legacy_dispatch_flips_mode_and_env(self):
        import os

        with forall_mod.legacy_dispatch():
            assert forall_mod.dispatch_mode() == "legacy"
            assert os.environ.get("REPRO_LEGACY_DISPATCH") == "1"
        assert forall_mod.dispatch_mode() == "fast"
        assert os.environ.get("REPRO_LEGACY_DISPATCH") is None

    def test_slice_capable_body_receives_slices(self):
        seen = []
        body = forall_mod.slice_capable(lambda i: seen.append(i))
        launches = forall(cuda_exec, 600, body)
        assert launches == 3
        assert all(isinstance(s, slice) for s in seen)
        assert [(s.start, s.stop) for s in seen] == [(0, 256), (256, 512), (512, 600)]

    def test_fused_body_runs_once_with_plan_launch_count(self):
        seen = []
        body = forall_mod.slice_capable(fuse=True)(lambda i: seen.append(i))
        launches = forall(cuda_exec, 600, body)
        assert launches == 3  # plan's launch count, not the call count
        assert seen == [slice(0, 600)]

    def test_fused_body_empty_segment_not_called(self):
        seen = []
        body = forall_mod.slice_capable(fuse=True)(lambda i: seen.append(i))
        assert forall(cuda_exec, 0, body) == 0
        assert seen == []

    def test_fused_body_in_forall_chunks_gets_per_partition_slices(self):
        seen = []
        body = forall_mod.slice_capable(fuse=True)(
            lambda part, k: seen.append((part, k))
        )
        assert forall_chunks(cuda_exec, 600, body) == 3
        assert [k for _, k in seen] == [0, 1, 2]
        assert all(isinstance(part, slice) for part, _ in seen)

    def test_plain_body_receives_arrays(self):
        seen = []
        forall(cuda_exec, 600, lambda i: seen.append(i))
        assert all(isinstance(p, np.ndarray) for p in seen)

    def test_slice_capable_over_index_array_falls_back(self):
        seen = []
        body = forall_mod.slice_capable(lambda i: seen.append(i))
        forall(seq_exec, np.array([5, 3, 1]), body)
        assert all(isinstance(p, np.ndarray) for p in seen)

    def test_legacy_mode_ignores_capabilities(self):
        seen = []
        body = forall_mod.slice_capable(fuse=True)(lambda i: seen.append(i))
        with forall_mod.legacy_dispatch():
            launches = forall(cuda_exec, 600, body)
        assert launches == 3
        assert all(isinstance(p, np.ndarray) for p in seen)

    def test_partition_plan_is_cached(self):
        plan_a = forall_mod.partition_plan(cuda_exec, 1000)
        plan_b = forall_mod.partition_plan(cuda_exec, 1000)
        assert plan_a is plan_b
        forall_mod.clear_dispatch_caches()
        assert forall_mod.partition_plan(cuda_exec, 1000) is not plan_a

    def test_plan_matches_legacy_partitioner(self):
        for policy in ALL_POLICIES:
            for n in (1, 2, 7, 97, 256, 257, 1000, 1003):
                indices = np.arange(n)
                legacy = [
                    p.tolist()
                    for p in forall_mod._iter_partitions_uncached(policy, indices)
                ]
                planned = [
                    indices[a:b].tolist()
                    for a, b in forall_mod.partition_plan(policy, n)
                ]
                assert planned == legacy, (policy.backend, n)

    def test_cached_arange_is_readonly_and_shared(self):
        a = forall_mod._cached_arange(0, 100)
        b = forall_mod._cached_arange(0, 100)
        assert a is b
        assert not a.flags.writeable

    def test_plan_cache_lru_bound(self):
        for n in range(1, 300):
            forall_mod.partition_plan(cuda_exec, n)
        assert len(forall_mod._PLAN_CACHE) <= forall_mod._PLAN_CACHE_MAX
