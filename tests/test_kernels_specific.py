"""Targeted numerical correctness for representative kernels.

Each test checks the kernel's *computation* against an independent
reference (closed form or NumPy/SciPy), not just cross-variant agreement.
"""

import numpy as np
import pytest

from repro.suite.registry import make_kernel
from repro.suite.variants import get_variant

SEQ = get_variant("Base_Seq")
RAJA_SEQ = get_variant("RAJA_Seq")
CUDA = get_variant("RAJA_CUDA")


def run(kernel, variant=RAJA_SEQ):
    kernel.run_variant(variant)
    return kernel


class TestStream:
    def test_triad_formula(self):
        k = run(make_kernel("Stream_TRIAD", 500))
        np.testing.assert_allclose(k.a, k.b + k.Q * k.c)

    def test_dot_matches_numpy(self):
        k = run(make_kernel("Stream_DOT", 500))
        assert k.dot == pytest.approx(float(np.dot(k.a, k.b)))


class TestBasic:
    def test_daxpy_formula(self):
        k = make_kernel("Basic_DAXPY", 300)
        k.ensure_setup()
        y0 = k.y.copy()
        k.run_raja(RAJA_SEQ.policy())
        np.testing.assert_allclose(k.y, y0 + k.A * k.x)

    def test_if_quad_roots_solve_equation(self):
        k = run(make_kernel("Basic_IF_QUAD", 400))
        disc = k.b * k.b - 4.0 * k.a * k.c
        sel = disc >= 0
        residual = k.a[sel] * k.x1[sel] ** 2 + k.b[sel] * k.x1[sel] + k.c[sel]
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)
        assert np.all(k.x1[~sel] == 0.0)

    def test_indexlist_finds_negatives(self):
        k = run(make_kernel("Basic_INDEXLIST", 500))
        expected = np.flatnonzero(k.x < 0.0)
        np.testing.assert_array_equal(k.indices[: k.count], expected)

    def test_indexlist_3loop_matches_indexlist(self):
        k1 = run(make_kernel("Basic_INDEXLIST", 500))
        k3 = run(make_kernel("Basic_INDEXLIST_3LOOP", 500))
        assert k1.count == k3.count

    def test_pi_atomic_approximates_pi(self):
        k = run(make_kernel("Basic_PI_ATOMIC", 100_000))
        assert float(k.pi[0]) == pytest.approx(np.pi, abs=1e-8)

    def test_pi_reduce_approximates_pi(self):
        k = run(make_kernel("Basic_PI_REDUCE", 100_000))
        assert k.pi == pytest.approx(np.pi, abs=1e-8)

    def test_trap_int_matches_quadrature(self):
        from scipy.integrate import quad

        k = run(make_kernel("Basic_TRAP_INT", 50_000))
        expected, _ = quad(
            lambda x: 1.0 / np.sqrt((x - k.Y) ** 2 + (x - k.YP) ** 2), k.X0, k.XP
        )
        assert k.sumx == pytest.approx(expected, rel=1e-6)

    def test_reduce3_int_matches_numpy(self):
        k = run(make_kernel("Basic_REDUCE3_INT", 800))
        assert k.vsum == int(np.sum(k.vec))
        assert k.vmin == int(np.min(k.vec))
        assert k.vmax == int(np.max(k.vec))

    def test_mat_mat_shared_matches_numpy(self):
        k = make_kernel("Basic_MAT_MAT_SHARED", 10_000)  # 100x100
        k.ensure_setup()
        a, b = k.a.copy(), k.b.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.c, a @ b, rtol=1e-12)

    def test_multi_reduce_matches_bincount(self):
        k = run(make_kernel("Basic_MULTI_REDUCE", 1000))
        expected = np.bincount(k.bins, weights=k.data, minlength=10)
        np.testing.assert_allclose(k.values, expected)


class TestAlgorithm:
    def test_scan_matches_cumsum(self):
        k = run(make_kernel("Algorithm_SCAN", 700), CUDA)
        expected = np.concatenate(([0.0], np.cumsum(k.x)[:-1]))
        np.testing.assert_allclose(k.y, expected, rtol=1e-12)

    def test_sort_produces_sorted_permutation(self):
        k = make_kernel("Algorithm_SORT", 600)
        k.ensure_setup()
        original = np.sort(k.x.copy())
        k.run_raja(RAJA_SEQ.policy())
        np.testing.assert_array_equal(k.x, original)

    def test_sortpairs_values_follow_keys(self):
        k = make_kernel("Algorithm_SORTPAIRS", 400)
        k.ensure_setup()
        mapping = dict(zip(k.keys.copy(), k.values.copy()))
        k.run_raja(RAJA_SEQ.policy())
        assert np.all(np.diff(k.keys) >= 0)
        for key, value in zip(k.keys[:20], k.values[:20]):
            assert mapping[key] == value

    def test_histogram_counts(self):
        k = run(make_kernel("Algorithm_HISTOGRAM", 2000))
        np.testing.assert_array_equal(
            k.counts, np.bincount(k.data, minlength=100).astype(float)
        )

    def test_memcpy_copies(self):
        k = run(make_kernel("Algorithm_MEMCPY", 500))
        np.testing.assert_array_equal(k.dst, k.src)


class TestLcals:
    def test_first_min_location(self):
        k = run(make_kernel("Lcals_FIRST_MIN", 1000))
        assert k.min_loc == 500  # planted minimum
        assert k.min_val == -1.0

    def test_first_diff(self):
        k = run(make_kernel("Lcals_FIRST_DIFF", 600))
        np.testing.assert_allclose(k.x, np.diff(k.y[: 601]))

    def test_planckian_formula(self):
        k = run(make_kernel("Lcals_PLANCKIAN", 300))
        np.testing.assert_allclose(k.w, k.x / np.expm1(k.u / k.v))


class TestApps:
    def test_fir_matches_convolution(self):
        from repro.kernels.apps.fir import COEFFS, TAPS

        k = run(make_kernel("Apps_FIR", 500))
        expected = np.convolve(k.signal, COEFFS[::-1], mode="valid")[: k.problem_size]
        np.testing.assert_allclose(k.out, expected, rtol=1e-10)

    def test_vol3d_unit_cubes(self):
        # On an unjittered lattice every hex volume is exactly 1.
        k = make_kernel("Apps_VOL3D", 1000)
        k.ensure_setup()
        k.x, k.y, k.z = k.mesh.node_coordinates(jitter=0.0)
        k.run_base(SEQ.policy())
        np.testing.assert_allclose(k.vol, 1.0, rtol=1e-12)

    def test_matvec_3d_matches_dense(self):
        k = run(make_kernel("Apps_MATVEC_3D_STENCIL", 343), CUDA)  # 7^3
        # Independent re-computation, zone by zone.
        for row in (0, len(k.interior) // 2, len(k.interior) - 1):
            zone = k.interior[row]
            expected = sum(
                k.matrix[s, zone] * k.x[zone + off]
                for s, off in enumerate(k.offsets)
            )
            assert k.b[zone] == pytest.approx(expected)

    def test_zonal_accumulation_mean_property(self):
        k = run(make_kernel("Apps_ZONAL_ACCUMUL_3D", 512))
        # Each zone value is the mean of 8 node values in [0, 1).
        assert np.all(k.zone_vals >= 0.0) and np.all(k.zone_vals < 1.0)

    def test_nodal_accumulation_conserves_mass(self):
        k = run(make_kernel("Apps_NODAL_ACCUMUL_3D", 512))
        assert float(k.node_vals.sum()) == pytest.approx(float(k.vol.sum()))

    def test_ltimes_matches_einsum(self):
        from repro.kernels.apps.ltimes import NUM_D, NUM_G, NUM_M

        k = run(make_kernel("Apps_LTIMES", 1200), CUDA)
        ell = k.ell.reshape(NUM_M, NUM_D)
        psi = k.psi.reshape(NUM_D, NUM_G, k.num_z)
        expected = np.einsum("md,dgz->mgz", ell, psi).ravel()
        np.testing.assert_allclose(k.phi, expected, rtol=1e-10)

    def test_mass3dpa_symmetric_positive(self):
        # The mass operator with positive quadrature data keeps <x, Mx> > 0.
        k = make_kernel("Apps_MASS3DPA", 512)
        k.ensure_setup()
        x0 = k.x.copy()
        k.run_base(SEQ.policy())
        assert float(np.sum(x0 * k.y)) > 0.0


class TestPolybench:
    def test_gemm_matches_numpy(self):
        k = make_kernel("Polybench_GEMM", 2500)  # 50x50
        k.ensure_setup()
        a, b, c0 = k.a.copy(), k.b.copy(), k.c.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.c, k.ALPHA * (a @ b) + k.BETA * c0, rtol=1e-12)

    def test_atax_matches_numpy(self):
        k = make_kernel("Polybench_ATAX", 1600)
        k.ensure_setup()
        a, x = k.a.copy(), k.x.copy()
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.y, a.T @ (a @ x), rtol=1e-10)

    def test_floyd_warshall_matches_networkx(self):
        import networkx as nx

        k = make_kernel("Polybench_FLOYD_WARSHALL", 144)  # 12x12
        k.ensure_setup()
        graph = nx.from_numpy_array(k.paths.copy(), create_using=nx.DiGraph)
        expected = nx.floyd_warshall_numpy(graph)
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.paths, expected, rtol=1e-12)

    def test_jacobi_1d_reference(self):
        k = make_kernel("Polybench_JACOBI_1D", 50)
        k.ensure_setup()
        a0 = k.a.copy()
        b_ref, a_ref = k.b.copy(), a0.copy()
        b_ref[1:-1] = (a_ref[:-2] + a_ref[1:-1] + a_ref[2:]) / 3.0
        a_ref[1:-1] = (b_ref[:-2] + b_ref[1:-1] + b_ref[2:]) / 3.0
        k.run_raja(CUDA.policy())
        np.testing.assert_allclose(k.a, a_ref, rtol=1e-12)


class TestComm:
    def test_halo_exchange_moves_neighbor_data(self):
        k = make_kernel("Comm_HALO_EXCHANGE", 4096)
        k.ensure_setup()
        h = k.halo_elems
        # Rank 1's low boundary must land in its left neighbor's high ghost.
        boundary = k.vars[1][0][h : 2 * h].copy()
        k.run_raja(RAJA_SEQ.policy())
        np.testing.assert_array_equal(k.vars[0][0][-h:], boundary)

    def test_halo_packing_round_trips_locally(self):
        k = make_kernel("Comm_HALO_PACKING", 4096)
        k.ensure_setup()
        h = k.halo_elems
        boundary = k.vars[0][0][h : 2 * h].copy()
        k.run_raja(RAJA_SEQ.policy())
        # Without MPI the pack/unpack round trip writes the rank's own data.
        np.testing.assert_array_equal(k.vars[0][0][:h], boundary)

    def test_fused_and_unfused_agree(self):
        fused = make_kernel("Comm_HALO_EXCH_FUSED", 4096)
        plain = make_kernel("Comm_HALO_EXCHANGE", 4096)
        assert fused.run_variant(RAJA_SEQ) == plain.run_variant(RAJA_SEQ)

    def test_fused_launches_fewer_kernels(self):
        fused = make_kernel("Comm_HALO_PACKING_FUSED", 4096)
        plain = make_kernel("Comm_HALO_PACKING", 4096)
        assert fused.launches_per_rep() < plain.launches_per_rep()
