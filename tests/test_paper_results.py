"""The paper's headline results, recomputed through the full pipeline.

These tests assert the *shape* of the paper's findings (Sections IV and V):
who wins, by roughly what factor, and the named exception sets. Tolerances
are generous — the substrate is a calibrated model, not the authors'
testbed — but orderings and memberships must hold exactly.
"""

import numpy as np
import pytest

from repro.analysis import run_similarity_analysis, run_speedup_study
from repro.analysis.topdown import TMA_COMPONENTS


@pytest.fixture(scope="module")
def similarity():
    return run_similarity_analysis()


@pytest.fixture(scope="module")
def study():
    return run_speedup_study()


class TestSectionIV:
    """Clustering (Figs. 6-8)."""

    def test_61_kernels_admitted(self, similarity):
        assert len(similarity.kernel_names) == 61

    def test_four_clusters_at_paper_threshold(self, similarity):
        assert similarity.num_clusters == 4

    def test_cluster_sizes_match_fig7(self, similarity):
        sizes = sorted(s.size for s in similarity.summaries)
        assert sizes == [8, 13, 18, 22]

    def test_group_totals_match_fig7(self, similarity):
        totals = {g: sum(c.values()) for g, c in similarity.group_distribution.items()}
        assert totals == {
            "Algorithm": 5,
            "Apps": 14,
            "Basic": 17,
            "Lcals": 11,
            "Polybench": 9,
            "Stream": 5,
        }

    def test_memory_cluster_is_mostly_stream_and_lcals(self, similarity):
        mem = similarity.summaries[similarity.most_memory_bound_cluster()]
        members = set(mem.kernels)
        # "nearly all Stream and LCALS kernels" (Section IV).
        assert sum(1 for k in members if k.startswith("Stream")) >= 4
        assert sum(1 for k in members if k.startswith("Lcals")) >= 8

    def test_cluster_means_near_paper_centers(self, similarity):
        paper_centers = [
            {"frontend_bound": 0.0452, "bad_speculation": 0.0380, "retiring": 0.2402,
             "core_bound": 0.1488, "memory_bound": 0.5279},
            {"frontend_bound": 0.1460, "bad_speculation": 0.0050, "retiring": 0.7169,
             "core_bound": 0.1021, "memory_bound": 0.0300},
            {"frontend_bound": 0.0103, "bad_speculation": 0.0001, "retiring": 0.0562,
             "core_bound": 0.0522, "memory_bound": 0.8812},
            {"frontend_bound": 0.0118, "bad_speculation": 0.0037, "retiring": 0.4117,
             "core_bound": 0.5358, "memory_bound": 0.0370},
        ]
        for center in paper_centers:
            best = min(
                similarity.summaries,
                key=lambda s: sum(
                    (s.tma_means[c] - center[c]) ** 2 for c in TMA_COMPONENTS
                ),
            )
            distance = np.sqrt(
                sum((best.tma_means[c] - center[c]) ** 2 for c in TMA_COMPONENTS)
            )
            assert distance < 0.08, (center, best.tma_means)

    def test_memory_cluster_speedup_ordering(self, similarity):
        """Cluster 2's property: most memory bound AND highest speedup on
        every higher-bandwidth machine (the paper's core claim)."""
        mem = similarity.most_memory_bound_cluster()
        for machine in ("SPR-HBM", "P9-V100", "EPYC-MI250X"):
            speedups = {s.cluster_id: s.speedups[machine] for s in similarity.summaries}
            assert max(speedups, key=speedups.get) == mem

    def test_memory_cluster_speedup_magnitudes(self, similarity):
        mem = similarity.summaries[similarity.most_memory_bound_cluster()]
        # Paper: 2.60 / 7.36 / 22.65. Allow 25%.
        assert mem.speedups["SPR-HBM"] == pytest.approx(2.5972, rel=0.25)
        assert mem.speedups["P9-V100"] == pytest.approx(7.3578, rel=0.25)
        assert mem.speedups["EPYC-MI250X"] == pytest.approx(22.6483, rel=0.25)

    def test_non_memory_clusters_do_not_gain_on_hbm(self, similarity):
        for summary in similarity.summaries:
            if summary.tma_means["memory_bound"] < 0.1:
                assert summary.speedups["SPR-HBM"] < 1.1

    def test_speedup_monotone_in_memory_boundedness(self, similarity):
        """Fig. 8's visual: ordering clusters by memory-boundedness orders
        their MI250X speedups identically."""
        ordered = sorted(similarity.summaries, key=lambda s: s.tma_means["memory_bound"])
        speedups = [s.speedups["EPYC-MI250X"] for s in ordered]
        assert speedups == sorted(speedups)


class TestSectionV:
    """Memory/FLOPS trade-offs (Figs. 9-10)."""

    def test_triad_speedups_track_bandwidth_ratios(self, study):
        # TRIAD's speedup should be ~the achieved-bandwidth ratio.
        from repro.machines import EPYC_MI250X, P9_V100, SPR_DDR, SPR_HBM

        base_bw = SPR_DDR.achieved_bytes_per_sec
        for machine, model in (("SPR-HBM", SPR_HBM), ("P9-V100", P9_V100),
                               ("EPYC-MI250X", EPYC_MI250X)):
            expected = model.achieved_bytes_per_sec / base_bw
            assert study.triad_speedups[machine] == pytest.approx(expected, rel=0.15)

    def test_v100_no_speedup_set(self, study):
        missing = set(study.no_speedup_kernels("P9-V100"))
        # Section V-B's named kernels.
        for name in ("Basic_PI_ATOMIC", "Polybench_ADI", "Polybench_ATAX",
                     "Polybench_GEMVER", "Polybench_GESUMMV", "Polybench_MVT"):
            assert name in missing

    def test_mi250x_no_speedup_set(self, study):
        missing = set(study.no_speedup_kernels("EPYC-MI250X"))
        for name in ("Basic_PI_ATOMIC", "Polybench_ADI", "Polybench_ATAX",
                     "Polybench_GEMVER", "Polybench_GESUMMV", "Polybench_MVT"):
            assert name in missing

    def test_mi250x_almost_everything_speeds_up(self, study):
        # "almost all of the RAJAPerf kernels demonstrate speedup".
        slow = [
            k for k in study.no_speedup_kernels("EPYC-MI250X")
            if not k.startswith("Comm")
        ]
        assert len(slow) <= 8

    def test_retiring_bound_kernels_gain_on_v100_anyway(self, study):
        """Section V-B: INIT_VIEW1D(+OFFSET), NESTED_INIT, FIRST_MIN speed
        up on the V100 despite no CPU memory constraint."""
        for name in ("Basic_INIT_VIEW1D", "Basic_INIT_VIEW1D_OFFSET",
                     "Basic_NESTED_INIT", "Lcals_FIRST_MIN"):
            record = study.record(name)
            assert record.memory_bound_ddr < 0.15, name
            assert record.speedup("P9-V100") > 1.5, name

    def test_gpu_but_not_hbm_set(self, study):
        """Section V-B's 11 kernels: speedup on the V100, none on SPR-HBM."""
        for name in ("Apps_FIR", "Apps_LTIMES", "Apps_LTIMES_NOVIEW",
                     "Apps_VOL3D", "Basic_INIT_VIEW1D", "Basic_MAT_MAT_SHARED",
                     "Polybench_2MM", "Polybench_3MM", "Polybench_GEMM"):
            record = study.record(name)
            assert record.speedup("SPR-HBM") < 1.1, name
            assert record.speedup("P9-V100") > 1.0, name

    def test_edge3d_extreme_speedup(self, study):
        record = study.record("Apps_EDGE3D")
        assert record.speedup("EPYC-MI250X") == pytest.approx(118.6, rel=0.15)
        assert record.speedup("EPYC-MI250X") > 40.0  # the Fig. 9 annotation

    def test_flop_heavy_set_matches_fig10(self, study):
        flop_heavy = set(study.flop_heavy_kernels())
        paper_17 = {
            "Apps_CONVECTION3DPA", "Apps_DEL_DOT_VEC_2D", "Apps_DIFFUSION3DPA",
            "Apps_EDGE3D", "Apps_FIR", "Apps_LTIMES", "Apps_LTIMES_NOVIEW",
            "Apps_MASS3DPA", "Apps_VOL3D", "Basic_MAT_MAT_SHARED",
            "Basic_PI_ATOMIC", "Basic_PI_REDUCE", "Basic_TRAP_INT",
            "Polybench_2MM", "Polybench_3MM", "Polybench_FLOYD_WARSHALL",
            "Polybench_GEMM",
        }
        assert paper_17 <= flop_heavy
        # At most one extra beyond the paper's 17 (MASS3DEA; see EXPERIMENTS.md).
        assert len(flop_heavy - paper_17) <= 1

    def test_flop_heavy_gain_more_on_gpus_than_hbm(self, study):
        """Section V-D: 15 of the 17 FLOP-heavy kernels gain more on both
        GPUs than on SPR-HBM; PI_ATOMIC and FLOYD_WARSHALL are the
        exceptions."""
        violations = []
        for name in study.flop_heavy_kernels():
            record = study.record(name)
            hbm = record.speedup("SPR-HBM")
            if not (record.speedup("P9-V100") > hbm
                    and record.speedup("EPYC-MI250X") > hbm):
                violations.append(name)
        assert "Basic_PI_ATOMIC" in violations
        assert len(violations) <= 3

    def test_mi250x_over_10_tflops_kernels(self, study):
        """Fig. 10d's four annotated kernels exceed ~10 TFLOPS on MI250X."""
        for name in ("Basic_MAT_MAT_SHARED", "Apps_EDGE3D", "Apps_VOL3D",
                     "Apps_DIFFUSION3DPA"):
            gflops = study.record(name).achieved_gflops("EPYC-MI250X")
            assert gflops > 8_000, (name, gflops)

    def test_edge3d_is_the_top_mi250x_flops(self, study):
        rates = {
            r.kernel: r.achieved_gflops("EPYC-MI250X") for r in study.records
        }
        assert max(rates, key=rates.get) == "Apps_EDGE3D"

    def test_halo_kernels_mpi_dominated(self, study):
        """Comm HALO kernels barely move across machines (MPI dominated)."""
        for name in ("Comm_HALO_EXCHANGE", "Comm_HALO_SENDRECV"):
            record = study.record(name)
            for machine in ("SPR-HBM", "P9-V100", "EPYC-MI250X"):
                assert record.speedup(machine) < 2.0, (name, machine)

    def test_majority_of_memory_bound_kernels_gain_on_hbm(self, study):
        """Section V-A's 40-of-67 shape: a clear majority of the kernels
        with a real memory-bound component speed up on SPR-HBM."""
        memory_bound = study.memory_bound_kernels(cutoff=0.05)
        gained = [k for k in memory_bound if study.record(k).speedup("SPR-HBM") > 1.0]
        assert len(gained) / len(memory_bound) > 0.55
