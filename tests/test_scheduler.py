"""Cost-model-guided campaign scheduling: LPT, batching, shm transport.

The scheduler may change *when* cells run, never *what* they produce:
the supervised determinism tests assert identical manifests (modulo the
measured wall times) and byte-identical packed archives across every
combination of ``--schedule``, ``--batch-cells``, and ``--no-shm``. The
unit layers — cost model, ready heap, batch planner, shm ring — are
pure functions of their inputs and are tested as such.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import time

import pytest

from repro.suite import MANIFEST_NAME, RunParams, SuiteExecutor
from repro.suite.costmodel import (
    DEFAULT_CELL_COST_S,
    CellCostModel,
    load_measured_costs,
    parse_cell_key,
)
from repro.suite.schedule import (
    AUTO_BATCH_CAP,
    ReadyHeap,
    lpt_partition_keys,
    order_lpt,
    plan_batch,
    resolve_batch_cap,
)
from repro.suite.shm_transport import ShmRing, create_ring
from repro.suite.supervisor import CampaignSupervisor
from repro.suite.worker import CellTask

_CTX = multiprocessing.get_context("fork")


# ------------------------------------------------------------- cell keys
def test_parse_cell_key_roundtrips_canonical_forms():
    assert parse_cell_key("SPR-DDR|Base_Seq|default|trial0") == (
        "SPR-DDR", "Base_Seq", 0, 0
    )
    assert parse_cell_key("P9-V100|RAJA_CUDA|block_64|trial3") == (
        "P9-V100", "RAJA_CUDA", 64, 3
    )


@pytest.mark.parametrize(
    "junk",
    [
        "",
        "only|three|parts",
        "m|v|block_x|trial0",
        "m|v|weird|trial0",
        "m|v|default|run0",
        "m|v|default|trialx",
        "m|v|default|trial0|extra",
    ],
)
def test_parse_cell_key_rejects_junk(junk):
    assert parse_cell_key(junk) is None


# ------------------------------------------------------------ cost model
def _model_params(**overrides) -> RunParams:
    defaults = dict(
        problem_size=100_000,
        execute=True,
        machines=("SPR-DDR", "P9-V100"),
        variants=("Base_Seq", "RAJA_Seq", "RAJA_CUDA"),
        kernels=("Basic_DAXPY",),
        gpu_block_sizes=(64, 256),
        trials=1,
    )
    defaults.update(overrides)
    return RunParams(**defaults)


def test_cost_model_ranks_chunked_dispatch_above_vectorized():
    """The scheduling-critical property: a GPU cell at a small block
    size (one simulated dispatch per block) costs more than the same
    cell at a large block, which costs more than a seq cell."""
    model = CellCostModel.for_params(_model_params())
    cuda_64 = model.cost("P9-V100", "RAJA_CUDA", 64)
    cuda_256 = model.cost("P9-V100", "RAJA_CUDA", 256)
    seq = model.cost("SPR-DDR", "Base_Seq", 0)
    assert cuda_64 > cuda_256 > seq > 0.0


def test_cost_model_is_deterministic_and_trial_independent():
    a = CellCostModel.for_params(_model_params())
    b = CellCostModel.for_params(_model_params())
    key0 = "SPR-DDR|Base_Seq|default|trial0"
    key7 = "SPR-DDR|Base_Seq|default|trial7"
    assert a.cost_of_key(key0) == b.cost_of_key(key0) == a.cost_of_key(key7)


def test_cost_model_falls_back_to_default_on_unknowns():
    model = CellCostModel.for_params(_model_params())
    assert model.cost("NO-SUCH-MACHINE", "Base_Seq", 0) == DEFAULT_CELL_COST_S
    assert model.cost_of_key("not a cell key") == DEFAULT_CELL_COST_S


def test_measured_costs_override_analytics(tmp_path):
    manifest = tmp_path / MANIFEST_NAME
    manifest.write_text(
        json.dumps(
            {
                "cells": {
                    "SPR-DDR|Base_Seq|default|trial0": {
                        "status": "ok", "elapsed_s": 42.0,
                    },
                    "SPR-DDR|RAJA_Seq|default|trial0": {"status": "ok"},
                    "SPR-DDR|Base_Seq|default|trial1": {
                        "status": "failed", "elapsed_s": -1.0,
                    },
                }
            }
        )
    )
    measured = load_measured_costs(manifest)
    # only positive elapsed_s entries count
    assert measured == {"SPR-DDR|Base_Seq|default|trial0": 42.0}

    model = CellCostModel.for_params(
        _model_params(cost_from=str(manifest))
    )
    assert model.cost_of_key("SPR-DDR|Base_Seq|default|trial0") == 42.0
    # unmeasured cells still use the analytic estimate
    assert model.cost_of_key("SPR-DDR|Base_Seq|default|trial1") < 1.0

    task = CellTask(
        machine="SPR-DDR", variant="Base_Seq", block=0, trial=0, fname="x.cali"
    )
    assert model.cost_of_task(task) == 42.0


def test_load_measured_costs_tolerates_garbage(tmp_path):
    assert load_measured_costs(tmp_path / "missing.json") == {}
    bad = tmp_path / "torn.json"
    bad.write_text("{ torn")
    assert load_measured_costs(bad) == {}


# ------------------------------------------------------------- LPT order
def test_order_lpt_is_longest_first_and_stable():
    items = ["a", "b", "c", "d"]
    costs = {"a": 1.0, "b": 5.0, "c": 1.0, "d": 5.0}
    assert order_lpt(items, costs.__getitem__) == ["b", "d", "a", "c"]


def test_lpt_partition_balances_a_skewed_campaign():
    keys = [f"cell{i}" for i in range(12)]
    costs = {k: 1.0 for k in keys}
    costs["cell11"] = 9.0  # the straggler, last in sweep order
    bins = lpt_partition_keys(keys, 3, costs.__getitem__)

    loads = [sum(costs[k] for k in bucket) for bucket in bins]
    # round-robin by count would deal 4 keys per bin: the straggler's
    # bin would weigh 12.0. LPT isolates the straggler (the makespan
    # floor) and deals the rest evenly across the other bins.
    assert max(loads) == 9.0
    assert [k for bucket in bins for k in bucket if costs[k] == 9.0] == ["cell11"]
    light = sorted(load for load in loads if load < 9.0)
    assert light[-1] - light[0] <= 1.0
    # every key lands exactly once, and bins keep sweep order internally
    assert sorted(k for bucket in bins for k in bucket) == sorted(keys)
    rank = {k: i for i, k in enumerate(keys)}
    for bucket in bins:
        assert [rank[k] for k in bucket] == sorted(rank[k] for k in bucket)
    # deterministic
    assert bins == lpt_partition_keys(keys, 3, costs.__getitem__)


def test_lpt_partition_rejects_zero_shards():
    with pytest.raises(ValueError):
        lpt_partition_keys(["a"], 0, lambda _k: 1.0)


# ------------------------------------------------------------ ready heap
def _task(n: int, attempt: int = 1) -> CellTask:
    return CellTask(
        machine="SPR-DDR", variant="Base_Seq", block=0, trial=n,
        fname=f"t{n}.cali", attempt=attempt,
    )


def test_ready_heap_is_fifo_among_ready_tasks():
    heap = ReadyHeap()
    tasks = [_task(n) for n in range(5)]
    for task in tasks:
        heap.push(task)
    popped = []
    while heap.peek_ready(now=0.0) is not None:
        popped.append(heap.pop())
    assert popped == tasks  # exactly the seed deque's FIFO order


def test_ready_heap_backoff_ordering_is_preserved():
    """Satellite: a retried task surfaces only once its backoff elapses,
    and never jumps ahead of tasks that were already ready."""
    heap = ReadyHeap()
    retry = _task(99, attempt=2)
    heap.push(retry, ready_time=10.0)
    first, second = _task(0), _task(1)
    heap.push(first)
    heap.push(second)

    # before the backoff expires: FIFO over the ready tasks only
    assert heap.peek_ready(now=5.0) is first
    assert heap.pop() is first
    assert heap.pop() is second
    # the retry is pending but not ready; the heap reports when it will be
    assert heap.peek_ready(now=5.0) is None
    assert len(heap) == 1 and bool(heap)
    assert heap.next_ready_at() == 10.0
    # once its ready time passes it dispatches
    assert heap.peek_ready(now=10.0) is retry
    assert heap.pop() is retry
    assert not heap


def test_ready_heap_drain_empties_in_heap_order():
    heap = ReadyHeap()
    late, early = _task(0), _task(1)
    heap.push(late, ready_time=7.0)
    heap.push(early, ready_time=1.0)
    assert heap.drain() == [early, late]
    assert len(heap) == 0


# ---------------------------------------------------------- batch planner
def test_plan_batch_groups_small_cells_up_to_cap():
    heap = ReadyHeap()
    for n in range(40):
        heap.push(_task(n))
    batch = plan_batch(
        heap, now=0.0, cost_of=lambda _t: 0.001, remaining_cost=0.04,
        workers=1, cap=AUTO_BATCH_CAP,
    )
    assert len(batch) == AUTO_BATCH_CAP
    assert [t.trial for t in batch] == list(range(AUTO_BATCH_CAP))


def test_plan_batch_shrinks_toward_single_cells_at_the_tail():
    heap = ReadyHeap()
    for n in range(4):
        heap.push(_task(n))
    # remaining cost is small: the share per worker cannot fit a second
    # cell, so the tail load-balances cell by cell.
    batch = plan_batch(
        heap, now=0.0, cost_of=lambda _t: 1.0, remaining_cost=4.0,
        workers=4, cap=AUTO_BATCH_CAP,
    )
    assert len(batch) == 1


def test_plan_batch_dispatches_expensive_cells_solo():
    heap = ReadyHeap()
    heap.push(_task(0))  # the straggler
    for n in range(1, 9):
        heap.push(_task(n))
    costs = {0: 10.0}
    batch = plan_batch(
        heap, now=0.0, cost_of=lambda t: costs.get(t.trial, 0.001),
        remaining_cost=10.01, workers=2, cap=AUTO_BATCH_CAP,
    )
    assert [t.trial for t in batch] == [0]


def test_plan_batch_never_batches_retried_tasks():
    heap = ReadyHeap()
    heap.push(_task(0, attempt=2))
    heap.push(_task(1))
    heap.push(_task(2, attempt=2))
    cheap = lambda _t: 1e-6  # noqa: E731
    # a retried task rides solo ...
    assert [t.trial for t in plan_batch(heap, 0.0, cheap, 1.0, 1, 8)] == [0]
    # ... and a fresh batch never absorbs a queued retry behind it
    assert [t.trial for t in plan_batch(heap, 0.0, cheap, 1.0, 1, 8)] == [1]
    assert [t.trial for t in plan_batch(heap, 0.0, cheap, 1.0, 1, 8)] == [2]


def test_plan_batch_respects_backoff_and_progress_guarantee():
    heap = ReadyHeap()
    heap.push(_task(0), ready_time=5.0)
    assert plan_batch(heap, 0.0, lambda _t: 1.0, 1.0, 1, 8) == []
    # the first ready task always dispatches, whatever its cost share
    assert [t.trial for t in plan_batch(heap, 6.0, lambda _t: 1.0, 0.0, 1, 8)] == [0]


def test_resolve_batch_cap():
    assert resolve_batch_cap("auto") == AUTO_BATCH_CAP
    assert resolve_batch_cap(1) == 1
    assert resolve_batch_cap("3") == 3
    assert resolve_batch_cap(0) == 1  # floor, never zero


def test_run_params_validate_scheduling_knobs():
    with pytest.raises(ValueError, match="schedule"):
        RunParams(schedule="random")
    with pytest.raises(ValueError, match="batch_cells"):
        RunParams(batch_cells="many")
    with pytest.raises(ValueError, match="batch_cells"):
        RunParams(batch_cells=0)
    # scheduling knobs never change the campaign identity: resume and
    # shard-map adoption survive knob changes
    base = RunParams().fingerprint()
    assert RunParams(
        schedule="fifo", batch_cells=4, shm=False, cost_from="x.json"
    ).fingerprint() == base


# --------------------------------------------------------------- shm ring
def test_shm_ring_roundtrips_payloads():
    ring = create_ring(_CTX, slot_count=2, slot_size=64)
    assert ring is not None
    try:
        payload = b"x" * 40
        slot = ring.try_write(payload)
        assert slot is not None
        assert ring.read(slot) == payload
        # the slot was recycled: both slots are writable again
        slots = [ring.try_write(b"a"), ring.try_write(b"b")]
        assert None not in slots
    finally:
        ring.close()


def test_shm_ring_oversize_and_exhaustion_fall_back_to_none():
    ring = ShmRing(_CTX, slot_count=1, slot_size=64)
    try:
        assert ring.try_write(b"y" * 100) is None  # oversize
        slot = ring.try_write(b"y")
        assert slot is not None
        # the only slot is taken: exhaustion degrades, never deadlocks
        assert ring.try_write(b"z", timeout=0.01) is None
        ring.release(slot)
        assert ring.try_write(b"z", timeout=0.01) is not None
    finally:
        ring.close()


def test_shm_ring_detects_corruption():
    ring = ShmRing(_CTX, slot_count=1, slot_size=64)
    try:
        slot = ring.try_write(b"precious bytes")
        offset = slot * ring.slot_size + 8  # first payload byte
        ring._shm.buf[offset] ^= 0xFF
        assert ring.read(slot) is None  # CRC mismatch -> no payload
        # ... but the slot came back to the free list
        assert ring.try_write(b"again", timeout=0.01) is not None
    finally:
        ring.close()


# -------------------------------------------- supervised loop + determinism
def _campaign_params(tmp_path, **overrides) -> RunParams:
    defaults = dict(
        problem_size=1024,
        machines=("SPR-DDR",),
        variants=("Base_Seq", "RAJA_Seq"),
        kernels=("Basic_DAXPY", "Stream_TRIAD"),
        trials=2,
        pack=True,
        output_dir=str(tmp_path),
        workers=2,
        heartbeat_timeout=10.0,
        max_attempts=3,
        retry_base_delay=0.01,
        retry_jitter=0.0,
    )
    defaults.update(overrides)
    return RunParams(**defaults)


def _manifest_modulo_elapsed(outdir):
    """Manifest cells with the measured wall times masked out and the
    recorded file paths made directory-relative."""
    cells = json.loads((outdir / MANIFEST_NAME).read_text())["cells"]
    out = {}
    for key, entry in cells.items():
        entry = dict(entry)
        assert entry.pop("elapsed_s", 0.0) > 0.0  # recorded for --cost-from
        if entry.get("file"):
            entry["file"] = entry["file"].replace(str(outdir), "<outdir>")
        out[key] = entry
    return out


SCHEDULER_SETTINGS = [
    ("lpt_auto_shm", dict(schedule="lpt", batch_cells="auto", shm=True)),
    ("lpt_batch3_noshm", dict(schedule="lpt", batch_cells=3, shm=False)),
    ("fifo_solo_noshm", dict(schedule="fifo", batch_cells=1, shm=False)),
    ("fifo_auto_shm", dict(schedule="fifo", batch_cells="auto", shm=True)),
]


def test_scheduler_knobs_never_change_campaign_outputs(tmp_path):
    """Satellite: bit-identical merged archives and identical manifests
    (modulo measured wall times) across schedule/batching/shm settings."""
    archives = {}
    manifests = {}
    for label, knobs in SCHEDULER_SETTINGS:
        outdir = tmp_path / label
        result = SuiteExecutor(
            _campaign_params(outdir, **knobs)
        ).run(write_files=True)
        assert result.report.clean
        archives[label] = (outdir / "campaign.calipack").read_bytes()
        manifests[label] = _manifest_modulo_elapsed(outdir)
    baseline_archive = archives["fifo_solo_noshm"]  # the seed path
    baseline_manifest = manifests["fifo_solo_noshm"]
    for label, _ in SCHEDULER_SETTINGS:
        assert archives[label] == baseline_archive, label
        assert manifests[label] == baseline_manifest, label


def test_scheduler_knobs_survive_resume_fingerprint(tmp_path):
    """A campaign started under one scheduler setting resumes under
    another: the knobs are excluded from the campaign fingerprint."""
    first = SuiteExecutor(
        _campaign_params(tmp_path, schedule="fifo", batch_cells=1, shm=False)
    ).run(write_files=True)
    assert first.report.clean
    again = SuiteExecutor(
        _campaign_params(
            tmp_path, resume=True, schedule="lpt", batch_cells="auto", shm=True
        )
    ).run(write_files=True)
    assert again.report.cell_counts() == {"skipped": 4}


def _slow_run_cell(self, cell, write_files=False):
    time.sleep(1.0)
    return _ORIGINAL_RUN_CELL(self, cell, write_files)


_ORIGINAL_RUN_CELL = SuiteExecutor.run_cell


def test_supervisor_loop_wakes_per_event_not_per_poll(tmp_path, monkeypatch):
    """Satellite: with two 1s cells on two workers the supervisor loop
    iterates O(results) times. The seed loop woke every 50ms — >= 20
    iterations for the same campaign."""
    monkeypatch.setattr(SuiteExecutor, "run_cell", _slow_run_cell)
    params = _campaign_params(
        tmp_path, trials=1, kernels=("Basic_DAXPY",), pack=False
    )
    executor = SuiteExecutor(params)
    supervisor = CampaignSupervisor(params)
    start = time.monotonic()
    result = supervisor.run(executor.build_cells(), write_files=True)
    elapsed = time.monotonic() - start
    assert result.report.cell_counts() == {"ok": 2}
    assert elapsed >= 1.0  # the cells really did sleep
    assert supervisor.results_handled == 2
    assert supervisor.loop_iterations <= 10, (
        f"supervisor loop polled {supervisor.loop_iterations} times for "
        f"2 results over {elapsed:.2f}s — not event-driven"
    )


def test_supervised_campaign_records_elapsed_for_cost_from(tmp_path):
    """The measured wall times a campaign records feed the next one's
    --cost-from override."""
    first_dir = tmp_path / "first"
    result = SuiteExecutor(_campaign_params(first_dir)).run(write_files=True)
    assert result.report.clean
    measured = load_measured_costs(first_dir / MANIFEST_NAME)
    assert set(measured) == set(result.report.cells)
    assert all(v > 0.0 for v in measured.values())

    second_dir = tmp_path / "second"
    params = _campaign_params(
        second_dir, cost_from=str(first_dir / MANIFEST_NAME)
    )
    model = CellCostModel.for_params(params)
    for key, elapsed in measured.items():
        assert model.cost_of_key(key) == elapsed
    result = SuiteExecutor(params).run(write_files=True)
    assert result.report.clean
    assert (second_dir / "campaign.calipack").read_bytes() == (
        first_dir / "campaign.calipack"
    ).read_bytes()


def test_worker_crash_mid_batch_requeues_only_unstarted_cells(tmp_path):
    """Satellite (chaos spot-check): killing a worker mid-batch charges
    an attempt only to the in-progress cell; cells queued behind it in
    the batch requeue verbatim and the campaign completes clean."""
    from repro.faults import FaultInjector, FaultKind, FaultSpec

    params = _campaign_params(
        tmp_path,
        trials=4,
        kernels=("Basic_DAXPY",),
        pack=False,
        batch_cells=8,
        schedule="fifo",  # deterministic dispatch order
    )
    injector = FaultInjector(
        [
            FaultSpec(
                kind=FaultKind.WORKER_CRASH,
                variant="RAJA_Seq",
                trial=1,
                attempt=1,
            )
        ]
    )
    result = SuiteExecutor(params, injector=injector).run(write_files=True)
    assert result.report.cell_counts() == {"ok": 8}
    assert result.report.clean
    crash = [r for r in result.report.records if r.kernel == "<worker crash>"]
    # exactly one cell was charged the crash; its batchmates were not
    assert len(crash) == 1
    assert crash[0].status == "retried"
    assert crash[0].cell == "SPR-DDR|RAJA_Seq|default|trial1"
    retried = [
        r for r in result.report.records
        if r.attempts > 1 and r.kernel != "<worker crash>"
    ]
    assert {r.cell for r in retried} <= {"SPR-DDR|RAJA_Seq|default|trial1"}


def test_interrupted_batched_campaign_resumes_only_missing_cells(tmp_path):
    """Chaos spot-check, supervisor flavor: a campaign killed after its
    first recorded result resumes with only the unfinished cells rerun."""
    import signal

    params = _campaign_params(
        tmp_path, trials=4, kernels=("Basic_DAXPY",), pack=False
    )
    executor = SuiteExecutor(params)
    fired = []

    def interrupt_once(key):
        if not fired:
            fired.append(key)
            signal.raise_signal(signal.SIGINT)

    supervisor = CampaignSupervisor(params, on_cell_complete=interrupt_once)
    result = supervisor.run(executor.build_cells(), write_files=True)
    assert result.report.interrupted
    completed = set(result.report.cells)
    assert completed and len(completed) < 8

    resumed = SuiteExecutor(
        dataclasses.replace(params, resume=True)
    ).run(write_files=True)
    counts = resumed.report.cell_counts()
    assert counts["skipped"] == len(completed)
    assert counts["ok"] == 8 - len(completed)
    cells = json.loads((tmp_path / MANIFEST_NAME).read_text())["cells"]
    assert len(cells) == 8
    assert all(entry["status"] == "ok" for entry in cells.values())
