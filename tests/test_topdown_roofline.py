"""TMA analysis and instruction-roofline analysis layers."""

import numpy as np
import pytest

from repro.analysis.roofline import (
    LEVELS,
    level_bandwidth,
    roofline_ceiling,
    roofline_points,
    transactions,
)
from repro.analysis.topdown import (
    TMA_COMPONENTS,
    TopDown,
    render_hierarchy,
    topdown_from_counters,
)
from repro.cpusim.counters import PAPI_COUNTER_NAMES, slot_counters
from repro.gpusim.ncu import NCU_METRIC_TABLE, ncu_counters
from repro.machines.registry import P9_V100, SPR_DDR
from repro.perfmodel import CpuTimeModel, KernelTraits, WorkProfile


class TestTopDown:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            TopDown(0.5, 0.5, 0.5, 0.5, 0.5)

    def test_vector_order(self):
        td = TopDown(0.1, 0.0, 0.4, 0.2, 0.3)
        np.testing.assert_allclose(td.vector(), [0.1, 0.0, 0.4, 0.2, 0.3])
        assert td.dominant() == "retiring"
        assert td.backend_bound == pytest.approx(0.5)

    def test_hierarchy_render(self):
        text = render_hierarchy()
        for label in ("Frontend Bound", "Bad Speculation", "Retiring",
                      "Backend Bound", "Core Bound", "Memory Bound", "DRAM Bound"):
            assert label in text

    def test_counters_roundtrip_through_analysis(self):
        """Model -> raw counters -> analysis must reproduce the model's TMA."""
        work = WorkProfile(10_000, 160_000, 80_000, 20_000)
        traits = KernelTraits(cache_resident=0.4, frontend_factor=0.1)
        breakdown = CpuTimeModel(SPR_DDR).predict(work, traits)
        counters = slot_counters(breakdown, SPR_DDR, work.instructions)
        recovered = topdown_from_counters(counters)
        for component in TMA_COMPONENTS:
            assert getattr(recovered, component) == pytest.approx(
                breakdown.tma()[component], abs=1e-12
            )

    def test_counter_names_complete(self):
        work = WorkProfile(1000, 8000, 8000, 1000)
        breakdown = CpuTimeModel(SPR_DDR).predict(work, KernelTraits())
        counters = slot_counters(breakdown, SPR_DDR, work.instructions)
        assert set(counters) == set(PAPI_COUNTER_NAMES)

    def test_missing_slots_rejected(self):
        with pytest.raises(ValueError):
            topdown_from_counters({"perf::slots": 0.0})


class TestNcuCounters:
    def _counters(self, **trait_kwargs):
        work = WorkProfile(100_000, 1.6e6, 8e5, 2e5, atomics=100)
        traits = KernelTraits(**trait_kwargs)
        return work, ncu_counters(work, traits, P9_V100, gpu_time_seconds=1e-4)

    def test_table4_rows(self):
        names = {m.name for m in NCU_METRIC_TABLE}
        assert "sm__sass_thread_inst_executed.sum" in names
        assert "dram__sectors_read.sum" in names
        assert len(NCU_METRIC_TABLE) == 12

    def test_counters_cover_table4(self):
        _, counters = self._counters()
        assert {m.name for m in NCU_METRIC_TABLE} == set(counters)

    def test_sector_arithmetic(self):
        work, counters = self._counters(streaming_eff=1.0, gpu_cache_resident=0.0)
        assert counters["l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum"] == (
            pytest.approx(work.bytes_read / 32)
        )
        assert counters["dram__sectors_write.sum"] == pytest.approx(
            work.bytes_written / 32
        )

    def test_poor_coalescing_amplifies_l1(self):
        _, perfect = self._counters(streaming_eff=1.0)
        _, scattered = self._counters(streaming_eff=0.25)
        key = "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum"
        assert scattered[key] > perfect[key]

    def test_cache_residency_reduces_dram(self):
        _, cold = self._counters(gpu_cache_resident=0.0)
        _, hot = self._counters(gpu_cache_resident=0.8)
        assert hot["dram__sectors_read.sum"] < cold["dram__sectors_read.sum"]

    def test_atomics_counted(self):
        _, counters = self._counters()
        assert counters["lts__t_sectors_op_atom.sum"] == 100

    def test_invalid_time(self):
        work = WorkProfile(10, 80, 80, 10)
        with pytest.raises(ValueError):
            ncu_counters(work, KernelTraits(), P9_V100, gpu_time_seconds=0.0)

    def test_cpu_machine_rejected(self):
        work = WorkProfile(10, 80, 80, 10)
        with pytest.raises(ValueError):
            ncu_counters(work, KernelTraits(), SPR_DDR, gpu_time_seconds=1.0)


class TestRoofline:
    def _points(self):
        work = WorkProfile(1e6, 1.6e7, 8e6, 2e6, instructions=1e7)
        counters = ncu_counters(work, KernelTraits(), P9_V100, gpu_time_seconds=1e-4)
        return roofline_points("K", counters, P9_V100)

    def test_three_levels(self):
        points = self._points()
        assert [p.level for p in points] == list(LEVELS)

    def test_gips_consistent(self):
        points = self._points()
        expected = (1e7 / 32) / 1e-4 / 1e9
        assert points[0].warp_gips == pytest.approx(expected)

    def test_intensity_increases_down_the_hierarchy(self):
        # Fewer transactions at deeper levels -> higher intensity.
        points = {p.level: p.intensity for p in self._points()}
        assert points["L2"] > points["L1"]

    def test_ceiling_min_of_roofs(self):
        flat = roofline_ceiling(P9_V100, "HBM", intensity=1e9)
        assert flat == P9_V100.gpu.peak_warp_gips
        sloped = roofline_ceiling(P9_V100, "HBM", intensity=0.1)
        assert sloped == pytest.approx(0.1 * P9_V100.gpu.dram_gtxn_per_sec)

    def test_bound_classification(self):
        points = {p.level: p for p in self._points()}
        for level, point in points.items():
            ridge = P9_V100.gpu.peak_warp_gips / level_bandwidth(P9_V100, level)
            expected = "compute" if point.intensity >= ridge else "memory"
            assert point.bound_by(P9_V100) == expected

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            level_bandwidth(P9_V100, "L3")
        with pytest.raises(ValueError):
            transactions({}, "L9")
        with pytest.raises(ValueError):
            roofline_ceiling(P9_V100, "HBM", intensity=-1.0)
