"""Suite-wide kernel invariants, parametrized over all 76 kernels.

These are the RAJAPerf-style guarantees: every variant of every kernel
computes the same answer; every kernel declares positive, finite analytic
metrics; the model produces positive times and valid TMA vectors on every
machine.
"""

import math

import numpy as np
import pytest

from repro.machines.registry import list_machines
from repro.suite.registry import all_kernel_classes
from repro.suite.variants import get_variant

ALL = all_kernel_classes()
IDS = [cls.class_full_name() for cls in ALL]

SMALL = 2_000


@pytest.mark.parametrize("cls", ALL, ids=IDS)
class TestEveryKernel:
    def test_all_variants_agree(self, cls):
        kernel = cls(problem_size=SMALL)
        checksums = kernel.verify_variants()
        assert len(checksums) >= 2
        assert all(math.isfinite(v) for v in checksums.values())

    def test_analytic_metrics_finite(self, cls):
        kernel = cls(problem_size=SMALL)
        metrics = kernel.analytic_metrics()
        for name, value in metrics.items():
            assert math.isfinite(value), name
            assert value >= 0.0, name

    def test_work_profile_scales_with_reps(self, cls):
        kernel = cls(problem_size=SMALL)
        one = kernel.work_profile(reps=1)
        five = kernel.work_profile(reps=5)
        assert five.bytes_total == pytest.approx(5 * one.bytes_total)
        assert five.flops == pytest.approx(5 * one.flops)
        assert five.launches == pytest.approx(5 * one.launches)

    def test_predictions_positive_everywhere(self, cls):
        kernel = cls(problem_size=32_000_000)
        for machine in list_machines():
            breakdown = kernel.predict(machine)
            assert breakdown.total_seconds > 0
            if breakdown.tma is not None:
                assert sum(breakdown.tma.values()) == pytest.approx(1.0)
                assert all(v >= 0 for v in breakdown.tma.values())

    def test_effective_traits_valid(self, cls):
        kernel = cls(problem_size=SMALL)
        traits = kernel.effective_traits()
        assert 0 < traits.streaming_eff <= 1.0
        assert 0 <= traits.cache_resident <= 1.0
        assert traits.cpu_compute_eff > 0

    def test_determinism_across_instances(self, cls):
        a = cls(problem_size=SMALL)
        b = cls(problem_size=SMALL)
        variant = get_variant("RAJA_Seq")
        assert a.run_variant(variant) == b.run_variant(variant)

    def test_checksum_changes_with_size(self, cls):
        # A different problem size must not silently produce the identical
        # computation (guards against size being ignored).
        a = cls(problem_size=SMALL)
        b = cls(problem_size=SMALL + 512)
        variant = get_variant("Base_Seq")
        ca, cb = a.run_variant(variant), b.run_variant(variant)
        assert not (ca == cb and a.work_profile() == b.work_profile())

    def test_gpu_variant_respects_block_size(self, cls):
        kernel = cls(problem_size=SMALL)
        variant = get_variant("RAJA_CUDA")
        if not kernel.supports(variant):
            pytest.skip("no CUDA variant")
        small_block = kernel.run_variant(variant, variant.policy().with_block_size(64))
        big_block = kernel.run_variant(variant, variant.policy().with_block_size(1024))
        from repro.suite.checksum import checksums_match

        assert checksums_match(small_block, big_block)


def test_suite_has_76_kernels():
    assert len(ALL) == 76


def test_group_sizes_match_table1():
    from collections import Counter

    counts = Counter(cls.GROUP.value for cls in ALL)
    assert counts == {
        "Algorithm": 8,
        "Apps": 15,
        "Basic": 19,
        "Comm": 5,
        "Lcals": 11,
        "Polybench": 13,
        "Stream": 5,
    }


def test_nonlinear_complexity_kernels():
    nonlinear = {
        cls.class_full_name() for cls in ALL if not cls.COMPLEXITY.is_linear
    }
    assert nonlinear == {
        "Algorithm_SORT",
        "Algorithm_SORTPAIRS",
        "Basic_MAT_MAT_SHARED",
        "Polybench_2MM",
        "Polybench_3MM",
        "Polybench_FLOYD_WARSHALL",
        "Polybench_GEMM",
        "Comm_HALO_EXCHANGE",
        "Comm_HALO_EXCH_FUSED",
        "Comm_HALO_PACKING",
        "Comm_HALO_PACKING_FUSED",
        "Comm_HALO_SENDRECV",
    }
