"""Simulated MPI: decomposition, halo geometry, and the communicator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import (
    Decomposition3D,
    HaloGeometry,
    SimComm,
    decompose_linear,
    halo_surface_elements,
)
from repro.mpisim.decomposition import is_comparable, work_ratio
from repro.suite.features import Complexity


class TestLinearDecomposition:
    def test_even_split(self):
        assert decompose_linear(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        parts = decompose_linear(10, 3)
        assert sum(parts) == 10 and max(parts) - min(parts) <= 1

    @given(st.integers(0, 10**7), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_conservation_property(self, total, ranks):
        parts = decompose_linear(total, ranks)
        assert sum(parts) == total and len(parts) == ranks

    def test_invalid(self):
        with pytest.raises(ValueError):
            decompose_linear(10, 0)
        with pytest.raises(ValueError):
            decompose_linear(-1, 2)


class TestDecomposition3D:
    def test_per_rank_size(self):
        d = Decomposition3D(32_000_000, 8)
        assert d.elements_per_rank == 4_000_000

    def test_grid_dims_product(self):
        for ranks in (4, 8, 112):
            dims = Decomposition3D(32_000_000, ranks).grid_dims()
            assert dims[0] * dims[1] * dims[2] == ranks

    def test_surface_scaling(self):
        small = Decomposition3D(32_000_000, 112).surface_elements_per_rank
        large = Decomposition3D(32_000_000, 4).surface_elements_per_rank
        assert large > small  # bigger subdomain, bigger surface


class TestExclusionRule:
    """The Section IV admission criterion, quantitatively."""

    def test_linear_work_is_comparable(self):
        assert is_comparable(Complexity.N, 112, 8)

    def test_matmul_work_is_not(self):
        assert not is_comparable(Complexity.N_3_2, 112, 8)
        # 112 small matmuls do LESS total work than 8 big ones.
        assert work_ratio(Complexity.N_3_2, 32_000_000, 112, 8) < 1.0

    def test_halo_work_is_not(self):
        assert not is_comparable(Complexity.N_2_3, 112, 8)
        # More ranks = more total surface.
        assert work_ratio(Complexity.N_2_3, 32_000_000, 112, 8) > 1.0


class TestHaloGeometry:
    def test_component_counts(self):
        geom = HaloGeometry(local_elements=27_000, halo_width=1, num_vars=3)
        assert geom.edge == 30
        assert geom.neighbors == 26
        assert geom.exchange_elements == 6 * 900 + 12 * 30 + 8

    def test_bytes_scale_with_vars(self):
        one = HaloGeometry(27_000, num_vars=1).exchange_bytes
        three = HaloGeometry(27_000, num_vars=3).exchange_bytes
        assert three == 3 * one

    def test_surface_scaling_two_thirds(self):
        # Doubling n should scale node surface by ~2^(2/3) at fixed ranks.
        s1 = halo_surface_elements(32_000_000, 8)
        s2 = halo_surface_elements(64_000_000, 8)
        assert s2 / s1 == pytest.approx(2 ** (2 / 3), rel=1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            HaloGeometry(0)
        with pytest.raises(ValueError):
            halo_surface_elements(100, 0)


class TestSimComm:
    def test_send_recv_roundtrip(self):
        comm = SimComm(2)
        payload = np.arange(5.0)
        buf = np.zeros(5)
        comm.isend(0, 1, payload)
        req = comm.irecv(1, 0, buf)
        comm.wait(1, req)
        np.testing.assert_array_equal(buf, payload)

    def test_send_copies_eagerly(self):
        comm = SimComm(2)
        payload = np.ones(3)
        comm.isend(0, 1, payload)
        payload[:] = 99.0  # mutate after send
        buf = np.zeros(3)
        comm.wait(1, comm.irecv(1, 0, buf))
        np.testing.assert_array_equal(buf, np.ones(3))

    def test_tag_matching(self):
        comm = SimComm(2)
        comm.isend(0, 1, np.array([1.0]), tag=7)
        comm.isend(0, 1, np.array([2.0]), tag=9)
        buf9, buf7 = np.zeros(1), np.zeros(1)
        comm.wait(1, comm.irecv(1, 0, buf9, tag=9))
        comm.wait(1, comm.irecv(1, 0, buf7, tag=7))
        assert buf9[0] == 2.0 and buf7[0] == 1.0

    def test_deadlock_detected(self):
        comm = SimComm(2)
        req = comm.irecv(0, 1, np.zeros(1))
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.wait(0, req)

    def test_shape_mismatch_rejected(self):
        comm = SimComm(2)
        comm.isend(0, 1, np.zeros(3))
        with pytest.raises(ValueError):
            comm.wait(1, comm.irecv(1, 0, np.zeros(4)))

    def test_traffic_accounting(self):
        comm = SimComm(2)
        comm.isend(0, 1, np.zeros(10))
        assert comm.bytes_sent == 80 and comm.messages_sent == 1

    def test_allreduce(self):
        comm = SimComm(4)
        assert comm.allreduce_sum([1.0, 2.0, 3.0, 4.0]) == 10.0
        with pytest.raises(ValueError):
            comm.allreduce_sum([1.0])

    def test_rank_bounds(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.isend(0, 5, np.zeros(1))
        with pytest.raises(ValueError):
            SimComm(0)
