"""Machine models and the analytic performance model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import (
    EPYC_MI250X,
    P9_V100,
    SPR_DDR,
    SPR_HBM,
    MachineKind,
    get_machine,
    list_machines,
)
from repro.perfmodel import (
    CpuTimeModel,
    GpuTimeModel,
    KernelTraits,
    WorkProfile,
    calibration_errors,
    predict_time,
)
from repro.perfmodel.calibration import matmat_traits, triad_traits, triad_work


class TestMachineRegistry:
    def test_four_machines(self):
        assert len(list_machines()) == 4

    def test_lookup_case_insensitive(self):
        assert get_machine("spr-ddr") is SPR_DDR
        with pytest.raises(KeyError):
            get_machine("Cray-1")

    def test_table2_peaks(self):
        assert SPR_DDR.peak_tflops_node == pytest.approx(4.7)
        assert P9_V100.peak_tflops_node == pytest.approx(31.2)
        assert EPYC_MI250X.peak_tflops_node == pytest.approx(191.5)
        assert SPR_HBM.peak_membw_tb_node == pytest.approx(3.3)

    def test_achieved_rates_derive_from_percentages(self):
        # Table II: SPR-DDR TRIAD at 77.7% of 0.6 TB/s.
        assert SPR_DDR.achieved_membw_tb_node == pytest.approx(0.6 * 0.777)
        assert EPYC_MI250X.achieved_tflops_node == pytest.approx(191.5 * 0.07)

    def test_kinds_and_specs(self):
        assert SPR_DDR.kind is MachineKind.CPU and SPR_DDR.cpu is not None
        assert P9_V100.kind is MachineKind.GPU and P9_V100.gpu is not None

    def test_machine_balance(self):
        # The MI250X has the highest FLOPS-to-bandwidth ratio.
        balances = {m.shorthand: m.machine_balance_flops_per_byte for m in list_machines()}
        assert max(balances, key=balances.get) == "EPYC-MI250X"

    def test_table3_ranks(self):
        assert SPR_DDR.mpi.ranks_per_node == 112
        assert P9_V100.mpi.ranks_per_node == 4
        assert EPYC_MI250X.mpi.ranks_per_node == 8


class TestWorkProfile:
    def test_instruction_heuristic(self):
        work = WorkProfile(iterations=10, bytes_read=80, bytes_written=0, flops=20)
        # flops + 2/word + 2/iter = 20 + 20 + 20.
        assert work.instructions == pytest.approx(60.0)

    def test_explicit_instructions_kept(self):
        work = WorkProfile(1, 8, 8, 1, instructions=5)
        assert work.instructions == 5

    def test_flops_per_byte(self):
        work = WorkProfile(1, 8, 8, 4)
        assert work.flops_per_byte == pytest.approx(0.25)

    def test_scaled(self):
        work = WorkProfile(10, 80, 40, 20, launches=2)
        big = work.scaled(3)
        assert big.iterations == 30 and big.launches == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WorkProfile(-1, 0, 0, 0)


class TestTraits:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            KernelTraits(streaming_eff=1.5)
        with pytest.raises(ValueError):
            KernelTraits(cache_resident=-0.1)
        with pytest.raises(ValueError):
            KernelTraits(cpu_compute_eff=0.0)

    def test_per_machine_overrides(self):
        traits = KernelTraits(gpu_compute_eff=0.5, gpu_eff_overrides={"P9-V100": 0.9})
        assert traits.gpu_eff_for("P9-V100") == 0.9
        assert traits.gpu_eff_for("EPYC-MI250X") == 0.5


class TestCalibration:
    def test_anchor_residuals_small(self):
        for point in calibration_errors():
            assert point.relative_error < 0.05, (point.machine, point.metric)

    def test_triad_runs_at_achieved_bandwidth(self, machine):
        work, traits = triad_work(), triad_traits()
        breakdown = predict_time(work, traits, machine, is_raja=False)
        achieved = work.bytes_total / breakdown.total_seconds
        assert achieved == pytest.approx(machine.achieved_bytes_per_sec, rel=0.05)

    def test_matmat_traits_fraction_of_peak(self):
        traits = matmat_traits()
        assert traits.cpu_eff_for("SPR-DDR") == pytest.approx(0.18)


class TestCpuTimeModel:
    def test_rejects_gpu_machine(self):
        with pytest.raises(ValueError):
            CpuTimeModel(P9_V100)

    def test_tma_fractions_sum_to_one(self, cpu_machine):
        work = WorkProfile(1000, 16000, 8000, 2000)
        breakdown = CpuTimeModel(cpu_machine).predict(work, KernelTraits())
        assert sum(breakdown.tma().values()) == pytest.approx(1.0)

    def test_memory_monotonic_in_bytes(self, cpu_machine):
        model = CpuTimeModel(cpu_machine)
        traits = KernelTraits()
        t1 = model.predict(WorkProfile(1000, 8000, 0, 0), traits).total
        t2 = model.predict(WorkProfile(1000, 80000, 0, 0), traits).total
        assert t2 > t1

    def test_cache_residency_reduces_memory_time(self, cpu_machine):
        model = CpuTimeModel(cpu_machine)
        work = WorkProfile(10000, 1e6, 1e6, 0)
        hot = model.predict(work, KernelTraits(cache_resident=0.9)).memory_stall
        cold = model.predict(work, KernelTraits(cache_resident=0.0)).memory_stall
        assert hot < cold

    def test_mpi_time_charged(self, cpu_machine):
        work = WorkProfile(100, 800, 800, 0, mpi_messages=10, mpi_bytes=1e6)
        breakdown = CpuTimeModel(cpu_machine).predict(work, KernelTraits())
        assert breakdown.mpi > 0
        assert breakdown.tma()["memory_bound"] > 0

    @given(st.floats(0.1, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_total_time_positive(self, streaming, cache):
        traits = KernelTraits(streaming_eff=streaming, cache_resident=cache)
        work = WorkProfile(1000, 16000, 8000, 2000)
        assert CpuTimeModel(SPR_DDR).predict(work, traits).total > 0


class TestGpuTimeModel:
    def test_rejects_cpu_machine(self):
        with pytest.raises(ValueError):
            GpuTimeModel(SPR_DDR)

    def test_roofline_max_semantics(self, gpu_machine):
        model = GpuTimeModel(gpu_machine)
        work = WorkProfile(1000, 1.6e7, 8e6, 2e3)
        breakdown = model.predict(work, KernelTraits())
        assert breakdown.parallel == max(
            breakdown.memory, breakdown.compute, breakdown.instruction
        )
        assert breakdown.bound in ("memory", "compute", "instruction")

    def test_launch_overhead_additive(self, gpu_machine):
        model = GpuTimeModel(gpu_machine)
        traits = KernelTraits()
        one = model.predict(WorkProfile(10, 80, 80, 10, launches=1), traits)
        many = model.predict(WorkProfile(10, 80, 80, 10, launches=100), traits)
        assert many.total > one.total

    def test_serial_fraction_slows(self, gpu_machine):
        model = GpuTimeModel(gpu_machine)
        work = WorkProfile(1e6, 8e6, 8e6, 1e6, instructions=1e7)
        fast = model.predict(work, KernelTraits(gpu_serial_fraction=0.0)).total
        slow = model.predict(work, KernelTraits(gpu_serial_fraction=0.5)).total
        assert slow > fast

    def test_hbm_machine_faster_for_streaming(self):
        work = triad_work()
        traits = triad_traits()
        t_ddr = predict_time(work, traits, SPR_DDR).total_seconds
        t_hbm = predict_time(work, traits, SPR_HBM).total_seconds
        t_mi = predict_time(work, traits, EPYC_MI250X).total_seconds
        assert t_ddr > t_hbm > t_mi


class TestPredictTimeFacade:
    def test_cpu_has_tma_gpu_does_not(self):
        work = WorkProfile(1000, 16000, 8000, 2000)
        cpu = predict_time(work, KernelTraits(), SPR_DDR)
        gpu = predict_time(work, KernelTraits(), P9_V100)
        assert cpu.tma is not None and gpu.tma is None
        assert gpu.gpu_bound is not None

    def test_raja_overhead_applies(self, machine):
        work = WorkProfile(1000, 16000, 8000, 2000)
        base = predict_time(work, KernelTraits(), machine, is_raja=False)
        raja = predict_time(work, KernelTraits(), machine, is_raja=True)
        assert raja.total_seconds > base.total_seconds

    def test_components_sum_consistent_cpu(self):
        work = WorkProfile(1000, 16000, 8000, 2000)
        result = predict_time(work, KernelTraits(), SPR_DDR)
        assert sum(result.components.values()) == pytest.approx(result.total_seconds)
