"""RAJA-style Views and Layouts vs NumPy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rajasim import Layout, View, make_permuted_layout


class TestLayout:
    def test_c_order_default(self):
        layout = Layout((2, 3, 4))
        assert layout(1, 2, 3) == 1 * 12 + 2 * 4 + 3

    def test_matches_numpy_ravel(self):
        shape = (3, 4, 5)
        layout = Layout(shape)
        ref = np.arange(np.prod(shape)).reshape(shape)
        for idx in np.ndindex(shape):
            assert layout(*idx) == ref[idx]

    def test_permuted_layout(self):
        # perm (2,1,0): dim 0 is fastest-varying.
        layout = make_permuted_layout((2, 3, 4), (2, 1, 0))
        assert layout(1, 0, 0) == 1
        assert layout(0, 1, 0) == 2
        assert layout(0, 0, 1) == 6

    def test_vectorized_indexing(self):
        layout = Layout((4, 5))
        i = np.array([0, 1, 2])
        j = np.array([1, 1, 1])
        np.testing.assert_array_equal(layout(i, j), i * 5 + 1)

    def test_bad_perm_rejected(self):
        with pytest.raises(ValueError):
            Layout((2, 2), perm=(0, 0))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Layout((2, 2))(1)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Layout((2, -1))


class TestView:
    def test_read_write_roundtrip(self):
        data = np.zeros(12)
        view = View(data, Layout((3, 4)))
        view[1, 2] = 7.0
        assert data[1 * 4 + 2] == 7.0
        assert view[1, 2] == 7.0

    def test_view_requires_flat_data(self):
        with pytest.raises(ValueError):
            View(np.zeros((2, 2)), Layout((2, 2)))

    def test_too_small_data_rejected(self):
        with pytest.raises(ValueError):
            View(np.zeros(3), Layout((2, 2)))

    def test_vectorized_access(self):
        data = np.arange(20, dtype=float)
        view = View(data, Layout((4, 5)))
        rows = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(view[rows, 0], data[rows * 5])

    @given(
        st.tuples(
            st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)
        ),
        st.permutations([0, 1, 2]),
    )
    @settings(max_examples=40, deadline=None)
    def test_permuted_view_matches_transposed_numpy(self, shape, perm):
        """View through a permuted layout == writing into a transposed array."""
        size = int(np.prod(shape))
        data = np.zeros(size)
        view = View(data, make_permuted_layout(shape, perm))
        counter = 0.0
        for idx in np.ndindex(shape):
            counter += 1.0
            view[idx] = counter
        # Rebuild via numpy: the permuted layout stores dim perm[-1] fastest.
        ref = np.zeros(shape)
        counter = 0.0
        for idx in np.ndindex(shape):
            counter += 1.0
            ref[idx] = counter
        transposed = np.transpose(ref, axes=perm)
        np.testing.assert_array_equal(data, transposed.ravel())
