"""OpenMP-variant overhead, Thicket percentile stats, and random-session
properties for Caliper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caliper import CaliperSession
from repro.machines.registry import SPR_DDR
from repro.suite.registry import make_kernel
from repro.suite.variants import get_variant
from repro.thicket import Thicket


class TestOpenMPOverhead:
    def test_openmp_variant_slower_than_seq(self):
        kernel = make_kernel("Stream_TRIAD", 32_000_000)
        seq = kernel.predict(SPR_DDR, get_variant("RAJA_Seq")).total_seconds
        omp = kernel.predict(SPR_DDR, get_variant("RAJA_OpenMP")).total_seconds
        assert omp > seq

    def test_overhead_scales_with_parallel_regions(self):
        multi = make_kernel("Apps_ENERGY", 32_000_000)  # 6 regions/rep
        single = make_kernel("Stream_TRIAD", 32_000_000)
        seq_v, omp_v = get_variant("RAJA_Seq"), get_variant("RAJA_OpenMP")
        delta_multi = (
            multi.predict(SPR_DDR, omp_v).total_seconds
            - multi.predict(SPR_DDR, seq_v).total_seconds
        )
        delta_single = (
            single.predict(SPR_DDR, omp_v).total_seconds
            - single.predict(SPR_DDR, seq_v).total_seconds
        )
        assert delta_multi > delta_single

    def test_no_openmp_overhead_on_gpu_variants(self):
        from repro.machines.registry import P9_V100

        kernel = make_kernel("Stream_TRIAD", 32_000_000)
        a = kernel.predict(P9_V100, get_variant("RAJA_CUDA")).total_seconds
        b = kernel.predict(P9_V100).total_seconds
        assert a == pytest.approx(b)


class TestPercentileStats:
    def _thicket(self):
        profiles = []
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            session = CaliperSession(collect_time=False)
            session.set_global("machine", f"m{value}")
            session.set_global("variant", "v")
            with session.region("K"):
                session.set_metric("t", value)
            profiles.append(session.close())
        return Thicket.from_caliperreader(profiles)

    def test_median_and_p95(self):
        stats = self._thicket().aggregate_stats(["t"], aggs=("p50", "p95", "mean"))
        row = stats.row(0)
        assert row["t_p50"] == pytest.approx(3.0)
        assert row["t_p95"] > 50.0  # dominated by the outlier
        assert row["t_mean"] == pytest.approx(22.0)

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ValueError):
            self._thicket().aggregate_stats(["t"], aggs=("frobnicate",))

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            self._thicket().aggregate_stats(["t"], aggs=("p999",))


class TestSessionProperties:
    @given(st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_random_nesting_never_corrupts(self, ops):
        """Any sequence of pushes/pops either errors cleanly or yields a
        well-formed profile whose region count equals the pushes."""
        session = CaliperSession(collect_time=False)
        depth = 0
        pushes = 0
        for op in ops:
            if op == "push":
                session.begin_region(f"r{pushes}")
                depth += 1
                pushes += 1
            else:
                if depth == 0:
                    with pytest.raises(RuntimeError):
                        session.end_region()
                else:
                    session.end_region()
                    depth -= 1
        # Close out and validate.
        for _ in range(depth):
            session.end_region()
        profile = session.close()
        assert len(list(profile.walk())) == pushes

    @given(st.lists(st.floats(0.0, 1e3), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_metric_accumulation_is_a_sum(self, values):
        session = CaliperSession(collect_time=False)
        for value in values:
            with session.region("k"):
                session.set_metric("m", value)
        total = session.close().roots[0].metrics["m"]
        assert total == pytest.approx(sum(values))
