"""Lazy/eager equivalence: the golden contract of the query engine.

The eager :class:`Frame` methods are one-node plans over the same
executor the optimizer feeds, so any divergence between ``frame.lazy()
... collect()`` and the eager chain means an optimizer rewrite (mask
fusion, predicate pushdown, column pruning) changed semantics. The
sweep here drives randomized frames through randomized operator chains
and requires bit-identical results — values, column order, and dtypes.
"""

import numpy as np
import pytest

from repro.dataframe import Frame, col, lit, parse_expr
from repro.dataframe.expr import DictColumn

VARIANTS = ["RAJA_Seq", "RAJA_CUDA", "Base_Seq", "Lambda_HIP"]
MACHINES = ["lassen", "quartz", "corona"]


def random_frame(rng: np.random.Generator, nrows: int) -> Frame:
    """A metadata-shaped frame: strings, ints, floats-with-NaN, Nones."""
    tags = np.array(
        [None if rng.random() < 0.2 else f"t{rng.integers(3)}" for _ in range(nrows)],
        dtype=object,
    )
    time = rng.uniform(0.1, 5.0, nrows)
    time[rng.random(nrows) < 0.15] = np.nan
    return Frame({
        "variant": np.array(rng.choice(VARIANTS, nrows), dtype=object),
        "machine": np.array(rng.choice(MACHINES, nrows), dtype=object),
        "trial": rng.integers(0, 4, nrows).astype(np.int64),
        "time": time,
        "tag": tags,
    })


def assert_identical(lazy: Frame, eager: Frame) -> None:
    assert lazy.columns == eager.columns
    assert lazy.equals(eager)
    for name in eager.columns:
        assert lazy[name].dtype == eager[name].dtype, name


PREDICATES = [
    lambda: col("variant") == "RAJA_CUDA",
    lambda: col("machine") != "quartz",
    lambda: col("trial") >= 2,
    lambda: col("time") < 2.5,
    lambda: col("variant").is_in(["RAJA_Seq", "Base_Seq"]),
    lambda: col("tag").is_null(),
    lambda: ~(col("tag").is_null()),
    lambda: (col("variant") == "RAJA_CUDA") & (col("trial") > 0),
    lambda: (col("machine") == "lassen") | (col("trial") == 3),
    lambda: (col("time") * 2.0) > (col("trial") + 0.5),
]


@pytest.mark.parametrize("seed", range(12))
def test_equivalence_sweep(seed):
    """Randomized chains of filter/select/with_column/sort collect to the
    exact frames the eager methods produce."""
    rng = np.random.default_rng(seed)
    frame = random_frame(rng, int(rng.integers(1, 200)))

    eager = frame
    lazy = frame.lazy()
    for _ in range(int(rng.integers(1, 5))):
        op = rng.integers(4)
        if op == 0:
            pred = PREDICATES[rng.integers(len(PREDICATES))]()
            eager, lazy = eager.filter(pred), lazy.filter(pred)
        elif op == 1:
            keep = [c for c in eager.columns if rng.random() < 0.7] or ["variant"]
            eager, lazy = eager.select(keep), lazy.select(keep)
        elif op == 2:
            if "trial" in eager.columns:
                eager = eager.with_column("double", eager["trial"] * 2)
                lazy = lazy.with_column("double", col("trial") * 2)
        else:
            keys = [c for c in ("variant", "machine", "trial") if c in eager.columns]
            if keys:
                k = keys[int(rng.integers(len(keys)))]
                desc = bool(rng.random() < 0.5)
                eager = eager.sort_by(k, descending=desc)
                lazy = lazy.sort(k, descending=desc)
    assert_identical(lazy.collect(), eager)


@pytest.mark.parametrize("seed", range(6))
def test_groupby_equivalence(seed):
    rng = np.random.default_rng(100 + seed)
    frame = random_frame(rng, int(rng.integers(5, 150)))
    spec = {"time": "mean", "trial": "max"}

    eager = frame.groupby("variant", "machine").agg(spec)
    lazy = frame.lazy().groupby("variant", "machine").agg(spec).collect()
    assert_identical(lazy, eager)

    eager_size = frame.groupby("machine").size()
    lazy_size = frame.lazy().groupby("machine").size().collect()
    assert_identical(lazy_size, eager_size)


@pytest.mark.parametrize("seed", range(6))
def test_join_equivalence(seed):
    rng = np.random.default_rng(200 + seed)
    left = random_frame(rng, int(rng.integers(1, 80)))
    right = Frame({
        "machine": np.array(MACHINES[: 2 + seed % 2], dtype=object),
        "cores": np.arange(2 + seed % 2, dtype=np.int64) * 16 + 40,
    })
    for how in ("inner", "left"):
        eager = left.join(right, on="machine", how=how)
        lazy = left.lazy().join(right, on="machine", how=how).collect()
        assert_identical(lazy, eager)


def test_groupby_first_occurrence_order():
    """Group rows come out in first-occurrence order of the key values,
    deterministically — not sorted, not hash order."""
    frame = Frame({
        "k": np.array(["b", "a", "c", "a", "b", "d"], dtype=object),
        "v": np.arange(6, dtype=np.int64),
    })
    size = frame.groupby("k").size()
    assert list(size["k"]) == ["b", "a", "c", "d"]
    assert list(size["count"]) == [2, 2, 1, 1]
    agg = frame.groupby("k").agg({"v": "sum"})
    assert list(agg["k"]) == ["b", "a", "c", "d"]
    assert list(agg["v_sum"]) == [4 + 0, 1 + 3, 2, 5]
    lazy = frame.lazy().groupby("k").size().collect()
    assert_identical(lazy, size)


def test_filter_chain_fuses_and_matches():
    """Two stacked filters fuse into one mask; a precomputed boolean mask
    (positional) still composes correctly with expression filters."""
    rng = np.random.default_rng(7)
    frame = random_frame(rng, 60)
    mask = frame["trial"] >= 1

    eager = frame.filter(mask).filter(col("machine") == "lassen")
    lazy = frame.lazy().filter(mask).filter(col("machine") == "lassen").collect()
    assert_identical(lazy, eager)


def test_expr_has_no_truth_value():
    with pytest.raises(TypeError, match="no truth value"):
        bool(col("a") == 1)
    with pytest.raises(TypeError):
        # `and` forces truth-testing; the loud error is what stops a
        # silently-wrong scalar mask.
        (col("a") == 1) and (col("b") == 2)


def test_expr_references_and_conjuncts():
    expr = (col("a") == 1) & ((col("b") > col("c")) & ~col("d").is_null())
    assert expr.references() == {"a", "b", "c", "d"}
    assert len(expr.conjuncts()) == 3


def test_dict_column_code_space_equality():
    """Equality over a DictColumn compares u4 codes, never decodes."""
    values = np.array(["x", "y", "z"], dtype=object)
    codes = np.array([0, 1, 2, 1, 0], dtype="<u4")
    cols = {"c": DictColumn(codes, values)}
    mask = (col("c") == "y").evaluate(cols)
    assert mask.tolist() == [False, True, False, True, False]
    # A literal absent from the dictionary can't match any row.
    assert (col("c") == "missing").evaluate(cols).tolist() == [False] * 5
    assert (col("c") != "missing").evaluate(cols).tolist() == [True] * 5
    isin = col("c").is_in(["x", "z", "nope"]).evaluate(cols)
    assert isin.tolist() == [True, False, True, False, True]


def test_parse_expr_language():
    cols = {
        "variant": np.array(["a", "b", "a"], dtype=object),
        "trial": np.array([0, 1, 2], dtype=np.int64),
    }
    expr = parse_expr("variant == 'a' and trial < 2")
    assert expr.evaluate(cols).tolist() == [True, False, False]
    assert parse_expr("trial in (0, 2)").evaluate(cols).tolist() == [
        True, False, True,
    ]
    assert parse_expr("not (variant != 'a')").evaluate(cols).tolist() == [
        True, False, True,
    ]
    assert parse_expr("trial >= -1").evaluate(cols).tolist() == [True] * 3


@pytest.mark.parametrize("bad", [
    "open('x')",                # calls
    "col.attr == 1",            # attribute access
    "a[0] == 1",                # subscripts
    "a == b == c",              # chained comparison
    "a in b",                   # non-literal membership
    "a ==",                     # syntax error
    "{'a': 1}",                 # unsupported literal
])
def test_parse_expr_rejects_unsafe_syntax(bad):
    with pytest.raises(ValueError):
        parse_expr(bad)


def test_lit_broadcasts_in_with_column():
    frame = Frame({"a": np.arange(4, dtype=np.int64)})
    out = frame.lazy().with_column("b", lit(7)).collect()
    assert out["b"].tolist() == [7, 7, 7, 7]
