"""Runtime report, CSV export, and GPU block-size tuning model."""

import numpy as np
import pytest

from repro.caliper import CaliperSession, hot_regions, runtime_report
from repro.caliper.report import exclusive_times
from repro.machines.registry import P9_V100, SPR_DDR
from repro.perfmodel import GpuTimeModel, KernelTraits, WorkProfile
from repro.reporting import (
    clusters_frame,
    export_all,
    fig1_frame,
    parallel_coords_frame,
    roofline_frame,
    speedup_frame,
    topdown_frame,
)
from repro.suite.registry import make_kernel


def make_profile():
    session = CaliperSession(collect_time=False)
    with session.region("main"):
        with session.region("solve"):
            session.set_metric("t", 3.0)
        with session.region("io"):
            session.set_metric("t", 1.0)
    return session.close()


class TestRuntimeReport:
    def test_exclusive_subtraction(self):
        session = CaliperSession(collect_time=False)
        with session.region("outer"):
            session.set_metric("t", 10.0)
            with session.region("inner"):
                session.set_metric("t", 4.0)
        profile = session.close()
        excl = exclusive_times(profile, "t")
        assert excl[("outer",)] == pytest.approx(6.0)
        assert excl[("outer", "inner")] == pytest.approx(4.0)

    def test_report_shares(self):
        text = runtime_report(make_profile(), metric="t")
        assert "main" in text and "solve" in text
        # solve is 75% of the exclusive total.
        solve_line = next(line for line in text.splitlines() if "solve" in line)
        assert "75.00" in solve_line

    def test_min_fraction_filters(self):
        text = runtime_report(make_profile(), metric="t", min_fraction=0.5)
        assert "solve" in text and "io" not in text

    def test_min_fraction_validation(self):
        with pytest.raises(ValueError):
            runtime_report(make_profile(), metric="t", min_fraction=1.5)

    def test_hot_regions_ranked(self):
        ranked = hot_regions(make_profile(), metric="t", top=2)
        assert ranked[0][0].endswith("solve")
        assert ranked[0][1] == pytest.approx(3.0)
        with pytest.raises(ValueError):
            hot_regions(make_profile(), metric="t", top=0)


class TestExport:
    def test_fig1_frame_shape(self):
        frame = fig1_frame()
        assert frame.nrows == 76
        assert "flops_per_byte" in frame.columns

    def test_topdown_frame_fractions(self):
        frame = topdown_frame("SPR-DDR")
        matrix = frame.to_matrix(
            ["frontend_bound", "bad_speculation", "retiring", "core_bound", "memory_bound"]
        )
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)

    def test_roofline_frame_three_rows_per_kernel(self):
        frame = roofline_frame()
        assert frame.nrows == 76 * 3
        assert set(frame["level"]) == {"L1", "L2", "HBM"}

    def test_clusters_frame(self):
        frame = clusters_frame()
        assert frame.nrows == 61
        assert set(frame["cluster"]) == {0, 1, 2, 3}

    def test_parallel_coords_frame(self):
        frame = parallel_coords_frame()
        assert frame.nrows == 4

    def test_speedup_frame_columns(self):
        frame = speedup_frame()
        assert frame.nrows == 76
        for col in ("speedup_SPR-HBM", "gflops_EPYC-MI250X", "flop_heavy"):
            assert col in frame.columns

    def test_export_all_writes_csvs(self, tmp_path):
        paths = export_all(tmp_path)
        assert len(paths) == 7
        assert all(p.exists() and p.stat().st_size > 100 for p in paths)


class TestBlockSizeTuning:
    def test_occupancy_factor_shape(self):
        model = GpuTimeModel(P9_V100)
        assert model.occupancy_factor(None) == 1.0
        assert model.occupancy_factor(256) == 1.0
        assert model.occupancy_factor(64) < 1.0
        assert model.occupancy_factor(1024) < 1.0
        with pytest.raises(ValueError):
            model.occupancy_factor(0)

    def test_small_blocks_predicted_slower(self):
        kernel = make_kernel("Stream_TRIAD", 32_000_000)
        default = kernel.predict(P9_V100, block_size=256).total_seconds
        tiny = kernel.predict(P9_V100, block_size=32).total_seconds
        assert tiny > default

    def test_block_size_ignored_on_cpu(self):
        kernel = make_kernel("Stream_TRIAD", 32_000_000)
        a = kernel.predict(SPR_DDR, block_size=32).total_seconds
        b = kernel.predict(SPR_DDR).total_seconds
        assert a == b

    def test_executor_tunings_differ_in_time(self):
        from repro.suite import RunParams, SuiteExecutor

        params = RunParams(
            variants=("RAJA_CUDA",),
            machines=("P9-V100",),
            kernels=("Stream_TRIAD",),
            gpu_block_sizes=(64, 256),
        )
        result = SuiteExecutor(params).run()
        times = {
            p.globals["tuning"]: p.find(
                ("RAJAPerf", "Stream", "Stream_TRIAD")
            ).metrics["Avg time/rank"]
            for p in result.profiles
        }
        assert times["block_64"] > times["block_256"]
