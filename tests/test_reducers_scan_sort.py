"""Reducers, scans, sorts, and atomics vs NumPy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rajasim import (
    MultiReduceSum,
    ReduceMax,
    ReduceMaxLoc,
    ReduceMin,
    ReduceMinLoc,
    ReduceSum,
    atomic_add,
    atomic_max,
    atomic_min,
    exclusive_scan,
    exclusive_scan_inplace,
    inclusive_scan,
    raja_sort,
    sort_pairs,
)

float_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
).map(lambda xs: np.asarray(xs, dtype=float))


class TestReducers:
    @given(float_arrays, st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_sum_over_chunks_matches_numpy(self, values, nchunks):
        reducer = ReduceSum(0.0)
        for chunk in np.array_split(values, nchunks):
            reducer.combine(chunk)
        assert reducer.get() == pytest.approx(float(np.sum(values)), rel=1e-9, abs=1e-9)

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_min_max(self, values):
        rmin, rmax = ReduceMin(np.inf), ReduceMax(-np.inf)
        for chunk in np.array_split(values, 3):
            if len(chunk):
                rmin.combine(chunk)
                rmax.combine(chunk)
        assert rmin.get() == np.min(values)
        assert rmax.get() == np.max(values)

    def test_reset(self):
        reducer = ReduceSum(0.0)
        reducer.combine([1.0, 2.0])
        reducer.reset()
        assert reducer.get() == 0.0

    def test_iadd_sugar(self):
        reducer = ReduceSum(0.0)
        reducer += np.array([1.0, 2.0, 3.0])
        assert reducer.get() == 6.0

    def test_minloc_first_occurrence(self):
        values = np.array([3.0, 1.0, 1.0, 5.0])
        reducer = ReduceMinLoc(np.inf)
        reducer.combine(values, np.arange(4))
        assert reducer.get() == 1.0
        assert reducer.get_loc() == 1

    def test_maxloc_across_chunks(self):
        reducer = ReduceMaxLoc(-np.inf)
        reducer.combine(np.array([1.0, 9.0]), np.array([0, 1]))
        reducer.combine(np.array([5.0]), np.array([2]))
        assert reducer.get() == 9.0 and reducer.get_loc() == 1

    def test_loc_shape_mismatch(self):
        with pytest.raises(ValueError):
            ReduceMinLoc(np.inf).combine(np.zeros(3), np.zeros(2))

    def test_multi_reduce(self):
        mr = MultiReduceSum(3)
        mr.combine(np.array([0, 1, 1, 2]), np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(mr.get(), [1.0, 5.0, 4.0])
        assert mr.get(1) == 5.0

    def test_multi_reduce_bad_bin(self):
        with pytest.raises(IndexError):
            MultiReduceSum(2).combine(np.array([5]), np.array([1.0]))


class TestScans:
    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_inclusive_matches_cumsum(self, values):
        np.testing.assert_allclose(inclusive_scan(values), np.cumsum(values))

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_exclusive_shifts_inclusive(self, values):
        out = exclusive_scan(values)
        assert out[0] == 0.0
        np.testing.assert_allclose(out[1:], np.cumsum(values)[:-1])

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_exclusive_inplace_matches(self, values):
        expected = exclusive_scan(values)
        work = values.copy()
        exclusive_scan_inplace(work)
        np.testing.assert_allclose(work, expected)

    def test_identity_offset(self):
        out = exclusive_scan(np.array([1.0, 2.0]), identity=10.0)
        np.testing.assert_allclose(out, [10.0, 11.0])

    def test_scan_requires_1d(self):
        with pytest.raises(ValueError):
            inclusive_scan(np.zeros((2, 2)))


class TestSorts:
    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sort_matches_numpy(self, values):
        work = values.copy()
        raja_sort(work)
        np.testing.assert_array_equal(work, np.sort(values))

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sort_pairs_keeps_association(self, keys):
        values = np.arange(len(keys), dtype=float)
        karr, varr = keys.copy(), values.copy()
        sort_pairs(karr, varr)
        # Every (key, value) pair in the output existed in the input.
        pairs_in = {(float(k), float(v)) for k, v in zip(keys, values)}
        pairs_out = {(float(k), float(v)) for k, v in zip(karr, varr)}
        assert pairs_out == pairs_in
        assert np.all(np.diff(karr) >= 0)

    def test_sort_pairs_shape_mismatch(self):
        with pytest.raises(ValueError):
            sort_pairs(np.zeros(3), np.zeros(4))


class TestAtomics:
    def test_atomic_add_duplicates(self):
        target = np.zeros(3)
        atomic_add(target, np.array([0, 0, 1]), np.array([1.0, 2.0, 5.0]))
        np.testing.assert_allclose(target, [3.0, 5.0, 0.0])

    def test_atomic_min_max(self):
        target = np.array([10.0, -10.0])
        atomic_min(target, np.array([0, 0]), np.array([5.0, 7.0]))
        atomic_max(target, np.array([1, 1]), np.array([-3.0, -5.0]))
        np.testing.assert_allclose(target, [5.0, -3.0])

    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=100),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_atomic_add_equals_bincount(self, indices, seed):
        rng = np.random.default_rng(seed)
        idx = np.asarray(indices, dtype=np.intp)
        vals = rng.random(len(idx))
        target = np.zeros(10)
        atomic_add(target, idx, vals)
        np.testing.assert_allclose(
            target, np.bincount(idx, weights=vals, minlength=10)
        )
