"""Frame CSV/JSON serialization round trips."""

import numpy as np
import pytest

from repro.dataframe import Frame, frame_from_csv, frame_from_json, frame_to_csv, frame_to_json


@pytest.fixture
def frame():
    return Frame(
        {
            "name": ["a", "b,c", 'quote"d'],
            "count": [1, 2, 3],
            "value": [0.5, -1.25, 3.0],
        }
    )


def test_json_roundtrip(frame, tmp_path):
    path = tmp_path / "f.json"
    frame_to_json(frame, path)
    loaded = frame_from_json(path)
    assert loaded == frame


def test_json_text_roundtrip(frame):
    assert frame_from_json(frame_to_json(frame)) == frame


def test_json_numpy_scalars_serializable(tmp_path):
    f = Frame({"x": np.array([np.int64(1), np.int64(2)])})
    text = frame_to_json(f)
    assert '"x"' in text


def test_csv_roundtrip(frame, tmp_path):
    path = tmp_path / "f.csv"
    frame_to_csv(frame, path)
    loaded = frame_from_csv(path)
    assert loaded.columns == frame.columns
    assert list(loaded["name"]) == list(frame["name"])
    assert list(loaded["count"]) == [1, 2, 3]
    np.testing.assert_allclose(loaded["value"], frame["value"])


def test_csv_type_inference_int_vs_float(tmp_path):
    text = "a,b\n1,1.5\n2,2.5\n"
    loaded = frame_from_csv(text)
    assert loaded["a"].dtype.kind == "i"
    assert loaded["b"].dtype.kind == "f"


def test_csv_empty(tmp_path):
    assert len(frame_from_csv("")) == 0
