"""Suite core: registry, variants, run params, checksums, kernel base."""

import numpy as np
import pytest

from repro.suite import (
    CHECKSUM_RTOL,
    Complexity,
    Feature,
    Group,
    RunParams,
    TABLE3,
    checksum_array,
    checksums_match,
    get_variant,
    variants_for_backends,
)
from repro.suite.registry import (
    get_kernel_class,
    kernel_names,
    kernels_in_group,
    make_kernel,
    similarity_kernel_classes,
)
from repro.suite.variants import VARIANTS, VariantKind


class TestChecksums:
    def test_position_weighting_detects_permutation(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([3.0, 2.0, 1.0])
        assert checksum_array(a) != checksum_array(b)
        assert np.sum(a) == np.sum(b)  # a plain sum would miss it

    def test_match_tolerance(self):
        assert checksums_match(1.0, 1.0 + 0.5 * CHECKSUM_RTOL)
        assert not checksums_match(1.0, 1.001)
        assert checksums_match(0.0, 0.0)

    def test_empty_array(self):
        assert checksum_array(np.array([])) == 0.0


class TestVariants:
    def test_names(self):
        assert get_variant("RAJA_CUDA").name == "RAJA_CUDA"
        assert get_variant("Kokkos_Lambda").name == "Kokkos_Lambda"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_variant("RAJA_FORTRAN")

    def test_full_set_is_13(self):
        assert len(VARIANTS) == 13  # 6 backends x (Base, RAJA) + Kokkos

    def test_variants_for_backends_pairs(self):
        from repro.rajasim.policies import Backend

        variants = variants_for_backends((Backend.CUDA,), kokkos=True)
        names = [v.name for v in variants]
        assert names == ["Base_CUDA", "RAJA_CUDA", "Kokkos_Lambda"]

    def test_raja_flag(self):
        assert get_variant("RAJA_HIP").is_raja
        assert not get_variant("Base_HIP").is_raja
        assert get_variant("Base_SYCL").is_gpu


class TestRegistry:
    def test_full_name_lookup(self):
        assert get_kernel_class("Stream_TRIAD").NAME == "TRIAD"

    def test_bare_name_lookup(self):
        assert get_kernel_class("daxpy").NAME == "DAXPY"

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel_class("Stream_QUADRUPLE")

    def test_kernel_names_sorted_and_qualified(self):
        names = kernel_names()
        assert names == sorted(names)
        assert all("_" in n for n in names)

    def test_kernels_in_group(self):
        assert len(kernels_in_group(Group.STREAM)) == 5
        assert len(kernels_in_group(Group.COMM)) == 5

    def test_similarity_exclusions(self):
        names = {cls.class_full_name() for cls in similarity_kernel_classes()}
        assert len(names) == 61
        for excluded in ("Comm_HALO_EXCHANGE", "Algorithm_SORT",
                         "Basic_MAT_MAT_SHARED", "Polybench_GEMM",
                         "Algorithm_HISTOGRAM", "Apps_EDGE3D",
                         "Basic_INDEXLIST"):
            assert excluded not in names

    def test_make_kernel_size(self):
        kernel = make_kernel("TRIAD", problem_size=123)
        assert kernel.problem_size == 123


class TestComplexity:
    def test_operations(self):
        assert Complexity.N.operations(100) == 100
        assert Complexity.N_3_2.operations(100) == pytest.approx(1000.0)
        assert Complexity.N_LOG_N.operations(8) == pytest.approx(24.0)
        assert Complexity.N_2_3.operations(1000) == pytest.approx(100.0)

    def test_linearity_flag(self):
        assert Complexity.N.is_linear
        assert not Complexity.N_LOG_N.is_linear

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Complexity.N.operations(-1)


class TestRunParams:
    def test_size_parsing(self):
        params = RunParams(problem_size="32M")
        assert params.problem_size == 32_000_000

    def test_table3(self):
        assert TABLE3["SPR-DDR"].mpi_ranks == 112
        assert TABLE3["P9-V100"].variant == "RAJA_CUDA"
        assert TABLE3["EPYC-MI250X"].problem_size_per_rank == 4_000_000

    def test_selection_by_group(self):
        params = RunParams(groups=(Group.STREAM,))
        assert params.selects(get_kernel_class("Stream_TRIAD"))
        assert not params.selects(get_kernel_class("Basic_DAXPY"))

    def test_selection_by_kernel_name(self):
        params = RunParams(kernels=("TRIAD", "Basic_DAXPY"))
        assert params.selects(get_kernel_class("Stream_TRIAD"))
        assert params.selects(get_kernel_class("Basic_DAXPY"))
        assert not params.selects(get_kernel_class("Stream_ADD"))

    def test_selection_by_feature(self):
        params = RunParams(features=(Feature.SORT,))
        assert params.selects(get_kernel_class("Algorithm_SORT"))
        assert not params.selects(get_kernel_class("Stream_TRIAD"))

    def test_invalid_machine(self):
        with pytest.raises(ValueError):
            RunParams(machines=("Cray-1",))

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            RunParams(gpu_block_sizes=(100,))

    def test_execution_size_cap(self):
        params = RunParams(problem_size="32M", execution_size_cap=50_000)
        assert params.execution_size == 50_000


class TestKernelBaseBehaviour:
    def test_unsupported_variant_rejected(self):
        kernel = make_kernel("Apps_CONVECTION3DPA", 512)
        bad = get_variant("Kokkos_Lambda")
        if not kernel.supports(bad):
            with pytest.raises(ValueError):
                kernel.run_variant(bad)

    def test_reset_reinitializes(self):
        kernel = make_kernel("Basic_DAXPY", 100)
        variant = get_variant("Base_Seq")
        first = kernel.run_variant(variant)
        second = kernel.run_variant(variant)  # run_variant resets
        assert first == second

    def test_invalid_problem_size(self):
        with pytest.raises(ValueError):
            make_kernel("Stream_TRIAD", 0)

    def test_repr(self):
        assert "Stream_TRIAD" in repr(make_kernel("Stream_TRIAD", 10))
