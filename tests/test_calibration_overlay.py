"""Consistency of the fitted trait overlay (perfmodel.calibrated)."""

import pytest

from repro.perfmodel.calibrated import TRAIT_CALIBRATION
from repro.perfmodel.traits import KernelTraits
from repro.suite.registry import get_kernel_class, similarity_kernel_classes


def test_overlay_covers_exactly_the_clustered_set_plus_edge3d():
    expected = {cls.class_full_name() for cls in similarity_kernel_classes()}
    expected -= {"Stream_TRIAD"}  # the bandwidth anchor is never overlaid
    expected |= {"Apps_EDGE3D"}  # fitted for its Fig. 9/10 numbers
    assert set(TRAIT_CALIBRATION) == expected


def test_overlay_fields_are_valid_trait_fields():
    valid = set(KernelTraits.__dataclass_fields__)
    for kernel, overlay in TRAIT_CALIBRATION.items():
        assert set(overlay) <= valid, kernel


def test_overlaid_traits_construct_cleanly():
    """Every overlay must produce a valid KernelTraits when applied."""
    for name in TRAIT_CALIBRATION:
        kernel = get_kernel_class(name)(problem_size=1000)
        traits = kernel.effective_traits()
        assert 0 < traits.streaming_eff <= 1.0
        assert traits.cpu_compute_eff > 0


def test_anchor_kernels_not_overlaid():
    assert "Stream_TRIAD" not in TRAIT_CALIBRATION
    assert "Basic_MAT_MAT_SHARED" not in TRAIT_CALIBRATION


def test_overlay_preserves_hand_written_gpu_overrides():
    """The fit merges (not replaces) per-machine GPU overrides: EDGE3D's
    pinned MI250X efficiency must survive the overlay."""
    kernel = get_kernel_class("Apps_EDGE3D")(problem_size=1000)
    hand = kernel.traits().gpu_eff_overrides["EPYC-MI250X"]
    effective = kernel.effective_traits().gpu_eff_overrides["EPYC-MI250X"]
    assert effective == pytest.approx(hand)
