"""Unit parsing/formatting (repro.util.units)."""

import pytest

from repro.util.units import (
    format_bytes,
    format_count,
    format_rate,
    format_seconds,
    parse_size,
)


class TestParseSize:
    def test_plain_integer(self):
        assert parse_size("4096") == 4096

    def test_decimal_suffixes(self):
        assert parse_size("32M") == 32_000_000
        assert parse_size("1k") == 1_000
        assert parse_size("2G") == 2_000_000_000
        assert parse_size("1T") == 10**12

    def test_fractional_value(self):
        assert parse_size("1.5M") == 1_500_000

    def test_byte_suffix_tolerated(self):
        assert parse_size("4KB") == 4_000
        assert parse_size("4KiB") == 4_000  # decimal per RAJAPerf convention

    def test_int_passthrough(self):
        assert parse_size(1234) == 1234
        assert parse_size(12.7) == 12

    def test_whitespace(self):
        assert parse_size("  8M  ") == 8_000_000

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_size("lots")
        with pytest.raises(ValueError):
            parse_size("1Q")

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            parse_size(-5)


class TestFormatting:
    def test_format_count_magnitudes(self):
        assert format_count(0) == "0"
        assert format_count(1500) == "1.5K"
        assert format_count(2_000_000) == "2M"
        assert format_count(3.2e12).endswith("T")

    def test_format_count_negative(self):
        assert format_count(-1500) == "-1.5K"

    def test_format_bytes_binary(self):
        assert format_bytes(1024) == "1 KiB"
        assert format_bytes(1024**3) == "1 GiB"
        assert format_bytes(100) == "100 B"

    def test_format_rate(self):
        assert format_rate(2e9, "B/s") == "2GB/s"

    def test_format_seconds_scales(self):
        assert format_seconds(1.5) == "1.5 s"
        assert format_seconds(2e-3) == "2 ms"
        assert format_seconds(3e-6) == "3 us"
        assert format_seconds(4e-9) == "4 ns"
        assert format_seconds(0) == "0 s"

    def test_format_seconds_negative_raises(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)
