"""Traced arrays: observed traffic validates declared analytic metrics.

The paper's metrics are analytic formulas; this layer *measures* element
reads/writes/FLOPs during real execution and cross-checks the formulas
for representative kernels.
"""

import numpy as np
import pytest

from repro.suite.traced import TraceCounters, TracedArray, TracedValue


class TestTracedMechanics:
    def test_reads_counted(self):
        counters = TraceCounters()
        arr = TracedArray(np.arange(10.0), counters)
        _ = arr[np.array([0, 1, 2])]
        assert counters.elements_read == 3

    def test_writes_counted(self):
        counters = TraceCounters()
        arr = TracedArray(np.zeros(10), counters)
        arr[np.array([0, 1])] = 5.0
        assert counters.elements_written == 2

    def test_flops_counted_elementwise(self):
        counters = TraceCounters()
        a = TracedArray(np.ones(4), counters)
        b = TracedArray(np.ones(4), counters)
        result = a[np.arange(4)] + 2.0 * b[np.arange(4)]
        assert isinstance(result, TracedValue)
        assert counters.flops == 8  # 4 multiplies + 4 adds

    def test_bytes_are_8x_elements(self):
        counters = TraceCounters()
        arr = TracedArray(np.zeros(10), counters)
        _ = arr[np.arange(5)]
        assert counters.bytes_read == 40

    def test_reset(self):
        counters = TraceCounters()
        arr = TracedArray(np.zeros(3), counters)
        _ = arr[np.arange(3)]
        counters.reset()
        assert counters.elements_read == 0

    def test_sum_counts_reduction_flops(self):
        counters = TraceCounters()
        arr = TracedArray(np.ones(10), counters)
        total = arr[np.arange(10)].sum()
        assert float(total) == 10.0
        assert counters.flops == 9  # n-1 adds

    def test_scalar_access(self):
        counters = TraceCounters()
        arr = TracedArray(np.arange(4.0), counters)
        value = arr[2]
        assert float(value) == 2.0
        assert counters.elements_read == 1


class TestDeclaredVsObserved:
    """Run kernel bodies against traced arrays and compare with the
    kernel's declared analytic metrics."""

    def test_triad_declared_metrics_match_observed(self):
        from repro.suite.registry import make_kernel

        n = 512
        kernel = make_kernel("Stream_TRIAD", n)
        counters = TraceCounters()
        a = TracedArray(np.zeros(n), counters)
        b = TracedArray(np.random.default_rng(0).random(n), counters)
        c = TracedArray(np.random.default_rng(1).random(n), counters)
        idx = np.arange(n)
        a[idx] = b[idx] + kernel.Q * c[idx]

        assert counters.bytes_read == kernel.bytes_read()
        assert counters.bytes_written == kernel.bytes_written()
        assert counters.flops == kernel.flops()

    def test_daxpy_declared_metrics_match_observed(self):
        from repro.suite.registry import make_kernel

        n = 256
        kernel = make_kernel("Basic_DAXPY", n)
        counters = TraceCounters()
        x = TracedArray(np.random.default_rng(0).random(n), counters)
        y = TracedArray(np.random.default_rng(1).random(n), counters)
        idx = np.arange(n)
        y[idx] = y[idx] + kernel.A * x[idx]

        assert counters.bytes_read == kernel.bytes_read()
        assert counters.bytes_written == kernel.bytes_written()
        assert counters.flops == kernel.flops()

    def test_add_declared_metrics_match_observed(self):
        from repro.suite.registry import make_kernel

        n = 128
        kernel = make_kernel("Stream_ADD", n)
        counters = TraceCounters()
        a = TracedArray(np.ones(n), counters)
        b = TracedArray(np.ones(n), counters)
        c = TracedArray(np.zeros(n), counters)
        idx = np.arange(n)
        c[idx] = a[idx] + b[idx]

        assert counters.bytes_read == kernel.bytes_read()
        assert counters.bytes_written == kernel.bytes_written()
        assert counters.flops == kernel.flops()

    def test_dot_declared_metrics_match_observed(self):
        from repro.suite.registry import make_kernel

        n = 200
        kernel = make_kernel("Stream_DOT", n)
        counters = TraceCounters()
        a = TracedArray(np.ones(n), counters)
        b = TracedArray(np.ones(n), counters)
        idx = np.arange(n)
        _ = (a[idx] * b[idx]).sum()

        assert counters.bytes_read == kernel.bytes_read()
        assert counters.bytes_written == kernel.bytes_written()
        # Declared: 2 FLOPs/iter; observed: n multiplies + n-1 adds.
        assert abs(counters.flops - kernel.flops()) <= 1
