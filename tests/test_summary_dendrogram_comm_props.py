"""Suite summary frames, dendrogram rendering, and comm-ring properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import linkage
from repro.analysis.dendrogram import render_dendrogram
from repro.mpisim import SimComm
from repro.suite.summary import group_summary, suite_inventory


class TestSuiteInventory:
    def test_all_kernels_listed(self):
        frame = suite_inventory()
        assert frame.nrows == 76
        assert "Stream_TRIAD" in set(frame["kernel"])

    def test_variant_counts_positive(self):
        frame = suite_inventory()
        assert np.all(frame["num_variants"] >= 4)
        # Kokkos kernels get one extra variant.
        kokkos = frame.filter(frame["has_kokkos"] == 1)
        assert np.all(kokkos["num_variants"] % 2 == 1)

    def test_group_summary_counts(self):
        rollup = group_summary()
        counts = dict(zip(rollup["group"], rollup["kernel_count"]))
        assert counts == {
            "Algorithm": 8, "Apps": 15, "Basic": 19, "Comm": 5,
            "Lcals": 11, "Polybench": 13, "Stream": 5,
        }

    def test_stream_group_low_intensity(self):
        rollup = group_summary()
        by_group = dict(zip(rollup["group"], rollup["flops_per_byte_mean"]))
        assert by_group["Stream"] < by_group["Apps"]


class TestDendrogramRendering:
    def test_labels_and_distances_rendered(self):
        rng = np.random.default_rng(0)
        points = rng.random((6, 3))
        merges = linkage(points, "ward")
        text = render_dendrogram(merges, [f"k{i}" for i in range(6)])
        for i in range(6):
            assert f"k{i}" in text
        assert "d=" in text

    def test_threshold_marker(self):
        rng = np.random.default_rng(1)
        merges = linkage(rng.random((5, 2)) * 10, "ward")
        text = render_dendrogram(merges, list("abcde"), threshold=1e-6)
        assert "above threshold" in text

    def test_label_count_validated(self):
        merges = linkage(np.random.default_rng(2).random((4, 2)))
        with pytest.raises(ValueError):
            render_dendrogram(merges, ["only", "three", "labels"])


class TestCommRingProperties:
    @given(
        ranks=st.integers(2, 8),
        width=st.integers(1, 16),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_ring_exchange_preserves_payloads(self, ranks, width, seed):
        """Sending each rank's token left and right delivers exactly the
        neighbor's token — for any ring size and message width."""
        rng = np.random.default_rng(seed)
        comm = SimComm(ranks)
        tokens = [rng.random(width) for _ in range(ranks)]
        for rank in range(ranks):
            comm.isend(rank, (rank + 1) % ranks, tokens[rank], tag=0)
        for rank in range(ranks):
            buf = np.zeros(width)
            comm.wait(rank, comm.irecv(rank, (rank - 1) % ranks, buf, tag=0))
            np.testing.assert_array_equal(buf, tokens[(rank - 1) % ranks])

    @given(ranks=st.integers(2, 6), n_msgs=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_message_accounting(self, ranks, n_msgs):
        comm = SimComm(ranks)
        for i in range(n_msgs):
            comm.isend(0, 1, np.zeros(i + 1), tag=i)
        assert comm.messages_sent == n_msgs
        assert comm.bytes_sent == 8 * sum(range(1, n_msgs + 1))

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_fifo_per_tag(self, ranks):
        """Two same-tag messages arrive in send order."""
        comm = SimComm(ranks)
        comm.isend(0, 1, np.array([1.0]), tag=5)
        comm.isend(0, 1, np.array([2.0]), tag=5)
        first, second = np.zeros(1), np.zeros(1)
        comm.wait(1, comm.irecv(1, 0, first, tag=5))
        comm.wait(1, comm.irecv(1, 0, second, tag=5))
        assert first[0] == 1.0 and second[0] == 2.0
