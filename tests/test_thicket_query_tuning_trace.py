"""Thicket queries, the tuning analysis, and the event-trace service."""

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_BLOCK_SIZES,
    render_tuning_table,
    tune_from_thicket,
    tune_kernel,
)
from repro.caliper import EventTrace, TraceEvent, TracingSession
from repro.machines.registry import EPYC_MI250X, P9_V100, SPR_DDR
from repro.suite import Group, RunParams, SuiteExecutor
from repro.suite.registry import make_kernel
from repro.thicket import Thicket


@pytest.fixture(scope="module")
def stream_thicket():
    params = RunParams(groups=(Group.STREAM,), variants=("RAJA_Seq",),
                       machines=("SPR-DDR", "SPR-HBM"))
    return Thicket.from_caliperreader(SuiteExecutor(params).run().profiles)


class TestThicketQuery:
    def test_path_glob(self, stream_thicket):
        sub = stream_thicket.query("RAJAPerf/*/Stream_TRIAD")
        assert set(sub.dataframe["name"]) == {"Stream_TRIAD"}
        assert sub.dataframe.nrows == 2  # one row per machine

    def test_wildcard_group(self, stream_thicket):
        sub = stream_thicket.query("RAJAPerf/Stream/*")
        assert sub.dataframe.nrows == 10  # 5 kernels x 2 profiles

    def test_no_match_is_empty(self, stream_thicket):
        assert stream_thicket.query("Nothing/*").dataframe.nrows == 0

    def test_metadata_query(self, stream_thicket):
        sub = stream_thicket.metadata_query(machine="SPR-DDR", variant="RAJA_Seq")
        assert sub.profiles == ["SPR-DDR/RAJA_Seq"]

    def test_metadata_query_unknown_key(self, stream_thicket):
        with pytest.raises(KeyError):
            stream_thicket.metadata_query(color="red")


class TestTuning:
    def test_tune_kernel_picks_a_block(self):
        result = tune_kernel(make_kernel("Stream_TRIAD", "32M"), P9_V100)
        assert result.best_block in DEFAULT_BLOCK_SIZES
        assert result.worst_penalty >= 1.0
        assert set(result.times) == set(DEFAULT_BLOCK_SIZES)

    def test_small_blocks_never_best_on_v100(self):
        result = tune_kernel(make_kernel("Basic_DAXPY", "32M"), P9_V100)
        assert result.best_block >= 256

    def test_occupancy_differs_between_small_blocks(self):
        from repro.perfmodel import GpuTimeModel

        model = GpuTimeModel(P9_V100)
        assert model.occupancy_factor(64) < model.occupancy_factor(128) < 1.0

    def test_cpu_machine_rejected(self):
        with pytest.raises(ValueError):
            tune_kernel(make_kernel("Stream_TRIAD", 1000), SPR_DDR)

    def test_render_table(self):
        results = [tune_kernel(make_kernel("Stream_TRIAD", "32M"), EPYC_MI250X)]
        text = render_tuning_table(results)
        assert "Stream_TRIAD" in text and "Best" in text
        assert render_tuning_table([]) == "(no tuning results)"

    def test_tune_from_thicket(self):
        params = RunParams(
            variants=("RAJA_CUDA",), machines=("P9-V100",),
            kernels=("Stream_TRIAD", "Basic_DAXPY"),
            gpu_block_sizes=(64, 256),
        )
        thicket = Thicket.from_caliperreader(SuiteExecutor(params).run().profiles)
        best = tune_from_thicket(thicket)
        assert best["Stream_TRIAD"] == 256
        assert best["Basic_DAXPY"] == 256


class TestEventTrace:
    def test_events_recorded_in_order(self):
        session = TracingSession()
        with session.region("outer"):
            with session.region("inner"):
                pass
        kinds = [(e.kind, e.name) for e in session.trace.events]
        assert kinds == [
            ("begin", "outer"), ("begin", "inner"),
            ("end", "inner"), ("end", "outer"),
        ]

    def test_spans_matched_with_durations(self):
        session = TracingSession()
        with session.region("a"):
            sum(range(10_000))
        spans = session.trace.spans()
        assert spans[0][0] == ("a",)
        assert spans[0][1] > 0

    def test_unbalanced_trace_rejected(self):
        trace = EventTrace(events=[TraceEvent(0.0, "begin", ("a",))])
        with pytest.raises(ValueError, match="unclosed"):
            trace.spans()
        trace2 = EventTrace(events=[TraceEvent(0.0, "end", ("a",))])
        with pytest.raises(ValueError, match="unmatched"):
            trace2.spans()

    def test_render(self):
        session = TracingSession()
        with session.region("r"):
            pass
        text = session.trace.render()
        assert "begin r" in text and "end r" in text
        assert EventTrace().render() == "(empty trace)"

    def test_profile_still_collected(self):
        session = TracingSession()
        with session.region("k"):
            session.set_metric("m", 1.0)
        profile = session.close()
        assert profile.roots[0].metrics["m"] == 1.0
