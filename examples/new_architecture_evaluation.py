#!/usr/bin/env python3
"""Procurement what-if: evaluate a *hypothetical* next machine.

The paper's motivation: once kernels are clustered by bottleneck, you can
predict how a workload mix fares on an architecture that shifts the
FLOPS/bandwidth balance. Here we define a speculative GPU node ("NextGen")
with 4x the MI250X's bandwidth at the same compute rates, push the whole
suite through the calibrated model, and report which bottleneck classes
benefit — without the machine existing.
"""

from dataclasses import replace

from repro.analysis import run_similarity_analysis
from repro.machines import EPYC_MI250X, MachineModel
from repro.suite.registry import make_kernel
from repro.suite.run_params import PAPER_PROBLEM_SIZE


def build_hypothetical() -> MachineModel:
    """A bandwidth-rich follow-on to the MI250X node."""
    gpu = replace(
        EPYC_MI250X.gpu,
        dram_gtxn_per_sec=EPYC_MI250X.gpu.dram_gtxn_per_sec * 4,
    )
    # Keep the MI250X's shorthand so the per-kernel calibrated GPU
    # efficiencies (keyed by machine shorthand) carry over: the
    # hypothetical machine inherits the MI250X's compute behaviour and
    # changes only the memory system.
    return replace(
        EPYC_MI250X,
        system_name="Hypothetical NextGen",
        architecture="NextGen GPU",
        peak_tflops_unit=EPYC_MI250X.peak_tflops_unit,
        peak_tflops_node=EPYC_MI250X.peak_tflops_node,
        peak_membw_tb_unit=EPYC_MI250X.peak_membw_tb_unit * 4,
        peak_membw_tb_node=EPYC_MI250X.peak_membw_tb_node * 4,
        gpu=gpu,
    )


def main() -> None:
    nextgen = build_hypothetical()
    print(f"Hypothetical machine: {nextgen}")
    assert nextgen.shorthand == EPYC_MI250X.shorthand  # efficiency carry-over
    print(f"  (MI250X baseline:   {EPYC_MI250X})\n")

    result = run_similarity_analysis()
    print(f"{'Cluster':>7s} {'n':>3s} {'mem-bound':>10s} "
          f"{'vs MI250X (mean)':>17s}  interpretation")
    for summary in result.summaries:
        ratios = []
        for name in summary.kernels:
            kernel = make_kernel(name, problem_size=PAPER_PROBLEM_SIZE)
            t_old = kernel.predict(EPYC_MI250X).total_seconds
            t_new = kernel.predict(nextgen).total_seconds
            ratios.append(t_old / t_new)
        mean_gain = sum(ratios) / len(ratios)
        mem = summary.tma_means["memory_bound"]
        story = (
            "bandwidth-hungry: big win" if mean_gain > 2.5
            else "partly bandwidth-limited on GPUs" if mean_gain > 1.3
            else "compute/issue bound: little change"
        )
        print(f"{summary.cluster_id:>7d} {summary.size:>3d} {mem:>10.2f} "
              f"{mean_gain:>16.2f}x  {story}")

    print("\nPer-kernel extremes on NextGen vs MI250X:")
    gains = []
    for name in result.kernel_names:
        kernel = make_kernel(name, problem_size=PAPER_PROBLEM_SIZE)
        gain = (
            kernel.predict(EPYC_MI250X).total_seconds
            / kernel.predict(nextgen).total_seconds
        )
        gains.append((gain, name))
    gains.sort(reverse=True)
    for gain, name in gains[:5]:
        print(f"  {name:30s} {gain:5.2f}x  (top gainer)")
    for gain, name in gains[-3:]:
        print(f"  {name:30s} {gain:5.2f}x  (unmoved)")

    print(
        "\nConclusion: exactly as the paper argues, the memory-bound "
        "cluster absorbs the new bandwidth; the core/retiring clusters "
        "need the FLOP/issue-rate improvements instead."
    )


if __name__ == "__main__":
    main()
