#!/usr/bin/env python3
"""Kernel scalability study (the paper's Section II-C analysis axis).

RAJAPerf is used to evaluate "kernel scalability with the increase in
computational resources". This example predicts strong- and weak-scaling
curves for one kernel per bottleneck class on the SPR-DDR node and shows
the expected split: compute-bound kernels scale to the full node,
bandwidth-bound kernels saturate once the socket's DRAM is full.
"""

from repro.analysis import render_curve, strong_scaling, weak_scaling
from repro.machines import SPR_DDR
from repro.suite.registry import get_kernel_class, make_kernel

CASES = {
    "memory bound": "Stream_TRIAD",
    "balanced": "Algorithm_SCAN",
    "retiring bound": "Basic_INIT_VIEW1D",
    "core bound": "Basic_TRAP_INT",
}


def main() -> None:
    print("=== Strong scaling at the paper's 32M node size ===\n")
    full_node_eff = {}
    for label, name in CASES.items():
        curve = strong_scaling(make_kernel(name, "32M"), SPR_DDR)
        full_node_eff[label] = curve.points[-1].efficiency
        print(render_curve(curve))
        print()

    print("Parallel efficiency at the full 112-core node:")
    for label, eff in full_node_eff.items():
        note = "bandwidth wall" if eff < 0.7 else "scales to the full node"
        print(f"  {label:16s} {CASES[label]:20s} {eff:5.2f} ({note})")

    # The headline contrast: memory-bound kernels hit the wall first.
    assert full_node_eff["memory bound"] < full_node_eff["core bound"]

    print("\n=== Weak scaling (fixed 285,714 elements per core) ===\n")
    for label, name in CASES.items():
        curve = weak_scaling(get_kernel_class(name), SPR_DDR)
        last = curve.points[-1]
        print(f"  {label:16s} {name:20s} efficiency at 112 cores: "
              f"{last.efficiency:5.2f}")

    print(
        "\nReading: this is exactly why the paper pins 112 MPI ranks per "
        "CPU node — compute-bound kernels want every core, while the "
        "streaming kernels are already bandwidth-limited at ~half the node."
    )


if __name__ == "__main__":
    main()
