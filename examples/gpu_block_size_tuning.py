#!/usr/bin/env python3
"""GPU block-size tuning sweep (RAJAPerf's 'tunings').

RAJAPerf runs GPU variants at multiple thread-block sizes and records one
Caliper profile per tuning; Thicket then compares them. This example runs
a real sweep: the kernels execute through the RAJA-sim layer at each
block size (the results are checksum-identical — tuning must never change
answers), while the device model reports the launch geometry and
occupancy that explain why real hardware cares.
"""

import numpy as np

from repro import RunParams, SuiteExecutor, Thicket, get_machine, get_variant, make_kernel
from repro.gpusim import Device

BLOCK_SIZES = (64, 128, 256, 512, 1024)
KERNELS = ("Stream_TRIAD", "Basic_DAXPY", "Basic_MAT_MAT_SHARED")


def main() -> None:
    machine = get_machine("P9-V100")
    device = Device(machine)
    variant = get_variant("RAJA_CUDA")

    print("Launch geometry and occupancy per block size (V100, 1M threads):")
    print(f"{'block':>6s} {'grid':>8s} {'warps/blk':>10s} {'occupancy':>10s}")
    for block in BLOCK_SIZES:
        geom = device.launch_geometry(threads=1_000_000, block_size=block)
        occ = device.occupancy(block)
        print(f"{block:>6d} {geom.grid_size:>8d} {geom.warps_per_block:>10d} "
              f"{occ:>10.0%}")

    print("\nChecksum invariance across tunings (real execution):")
    for name in KERNELS:
        checksums = set()
        for block in BLOCK_SIZES:
            kernel = make_kernel(name, problem_size=20_000)
            policy = variant.policy().with_block_size(block)
            checksums.add(round(kernel.run_variant(variant, policy), 10))
        status = "OK" if len(checksums) == 1 else f"MISMATCH: {checksums}"
        print(f"  {name:24s} {status}")

    # A profile per tuning, composed with Thicket (the paper's flow).
    params = RunParams(
        problem_size="32M",
        variants=("RAJA_CUDA",),
        machines=("P9-V100",),
        kernels=KERNELS,
        gpu_block_sizes=BLOCK_SIZES,
    )
    result = SuiteExecutor(params).run()
    thicket = Thicket.from_caliperreader(result.profiles)
    by_tuning = thicket.groupby("tuning")
    print(f"\nThicket composition: {len(by_tuning)} tunings "
          f"({sorted(by_tuning)})")
    for tuning, sub in sorted(by_tuning.items()):
        _, _, matrix = sub.metric_matrix(
            "Avg time/rank", region_filter=lambda s: s in KERNELS
        )
        mean_us = float(np.nanmean(matrix)) * 1e6
        print(f"  {tuning:12s} mean predicted kernel time = {mean_us:8.1f} us")


if __name__ == "__main__":
    main()
