#!/usr/bin/env python3
"""The paper's Section IV study, end to end.

Clusters the suite's kernels by their SPR-DDR top-down (TMA) signatures
with Ward agglomerative clustering at the paper's 1.4 threshold, then
prints Fig. 6 (dendrogram), Fig. 7 (cluster table), and Fig. 8 (parallel
coordinates) — and checks the paper's headline conclusion: the most
memory-bound cluster gains the most on every higher-bandwidth machine.
"""

from repro.analysis import run_similarity_analysis
from repro.reporting import fig6, fig7, fig8


def main() -> None:
    result = run_similarity_analysis()
    print(f"{len(result.kernel_names)} kernels admitted, "
          f"{result.num_clusters} clusters found at threshold "
          f"{result.clustering.threshold}\n")

    print(fig7(result))
    print()
    print(fig8(result))
    print()

    # The paper's conclusion, recomputed from the clustering:
    mem_cluster = result.most_memory_bound_cluster()
    summary = result.summaries[mem_cluster]
    print(f"\nMost memory-bound cluster: {mem_cluster} "
          f"(memory_bound = {summary.tma_means['memory_bound']:.2f})")
    for machine, speedup in summary.speedups.items():
        others = [
            s.speedups[machine]
            for s in result.summaries
            if s.cluster_id != mem_cluster
        ]
        verdict = "highest" if speedup > max(others) else "NOT highest (!)"
        print(f"  speedup on {machine:12s} = {speedup:6.2f}x  ({verdict})")

    print("\nMembers of the memory-bound cluster:")
    for name in summary.kernels:
        print(f"  - {name}")

    print()
    print(fig6(result))


if __name__ == "__main__":
    main()
