#!/usr/bin/env python3
"""Bring your own kernel: extend the suite and ride the whole pipeline.

The paper's intro motivates RAJAPerf as a proxy for application code:
port *your* kernel into the suite, and the toolchain answers "which
bottleneck class is it in, and what should I expect from new hardware?".

This example defines SPMV (sparse matrix-vector product in CSR form, a
kernel the suite does not ship), verifies it across all variants, and
then (a) predicts its TMA profile and cross-machine speedups, and (b)
classifies it against the paper's four clusters.
"""

import numpy as np

from repro.analysis import classify_kernel, run_similarity_analysis
from repro.analysis.topdown import TMA_COMPONENTS
from repro.machines import EPYC_MI250X, P9_V100, SPR_DDR, SPR_HBM
from repro.rajasim import forall
from repro.suite import Feature, Group, KernelBase
from repro.suite.trait_presets import BALANCED, derive

NNZ_PER_ROW = 27  # a 3-D stencil-like sparsity pattern


# Note: a kernel class works standalone; decorate with
# ``repro.suite.registry.register_kernel`` only if you want the executor /
# CLI to pick it up by name (that also adds it to every suite-wide sweep,
# including the similarity analysis).
class CustomSpmv(KernelBase):
    """SPMV: ``y[r] = sum_j vals[row_ptr[r]+j] * x[cols[row_ptr[r]+j]]``."""

    NAME = "SPMV"
    GROUP = Group.BASIC  # joins the Basic group for reporting purposes
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 6.0 * NNZ_PER_ROW

    def __init__(self, problem_size=None, seed=4793):
        super().__init__(problem_size, seed)
        self.rows = max(1, self.problem_size // NNZ_PER_ROW)

    def iterations(self):
        return float(self.rows)

    def setup(self):
        rows, n = self.rows, self.rows * NNZ_PER_ROW
        self.vals = self.rng.random(n)
        self.cols = self.rng.integers(0, rows, size=n)
        self.row_ptr = np.arange(0, n + 1, NNZ_PER_ROW)
        self.x = self.rng.random(rows)
        self.y = np.zeros(rows)

    def bytes_read(self):
        # values + column indices streamed; x gathered (partially cached).
        return (8.0 + 4.0 + 4.0) * NNZ_PER_ROW * self.rows

    def bytes_written(self):
        return 8.0 * self.rows

    def flops(self):
        return 2.0 * NNZ_PER_ROW * self.rows

    def traits(self):
        return derive(
            BALANCED,
            streaming_eff=0.5,  # the x gather is irregular
            simd_eff=0.4,
            cache_resident=0.25,
            cpu_compute_eff=0.1,
            gpu_compute_eff=0.45,
        )

    def run_base(self, policy):
        mat = self.vals.reshape(self.rows, NNZ_PER_ROW)
        gathered = self.x[self.cols].reshape(self.rows, NNZ_PER_ROW)
        np.sum(mat * gathered, axis=1, out=self.y)

    def run_raja(self, policy):
        vals, cols, x, y = self.vals, self.cols, self.x, self.y

        def body(r):
            acc = np.zeros(len(r))
            for j in range(NNZ_PER_ROW):
                idx = r * NNZ_PER_ROW + j
                acc += vals[idx] * x[cols[idx]]
            y[r] = acc

        forall(policy, self.rows, body)

    def checksum(self):
        from repro.suite import checksum_array

        return checksum_array(self.y)


def main() -> None:
    kernel = CustomSpmv(problem_size=27_000)
    checksums = kernel.verify_variants()
    print(f"{kernel.full_name}: {len(checksums)} variants verified "
          f"(checksum {checksums['RAJA_Seq']:.6f})")
    print(f"analytic metrics/row: {kernel.analytic_metrics()}")

    big = CustomSpmv(problem_size="32M")
    print("\nPredicted node-level behaviour at the paper's 32M size:")
    tma = big.predict(SPR_DDR).tma
    print("  SPR-DDR TMA:", {k: round(v, 3) for k, v in tma.items()})
    t_ddr = big.predict(SPR_DDR).total_seconds
    for machine in (SPR_HBM, P9_V100, EPYC_MI250X):
        t = big.predict(machine).total_seconds
        print(f"  speedup on {machine.shorthand:12s} {t_ddr / t:6.2f}x")

    # Classify against the paper's clusters (Section IV's porting use case).
    result = run_similarity_analysis()
    vector = [tma[c] for c in TMA_COMPONENTS]
    cluster, speedups, nearest = classify_kernel(vector, result)
    print(f"\nSPMV lands in cluster {cluster} "
          f"(most similar suite kernel: {nearest})")
    print("Cluster-level expectation for machines you do NOT have yet:")
    for machine, value in speedups.items():
        print(f"  {machine:12s} ~{value:5.2f}x over SPR-DDR")
    print(
        "\nThat is the paper's workflow: measure TMA once on the machine "
        "you own, and the cluster tells you what new hardware will buy you."
    )


if __name__ == "__main__":
    main()
