#!/usr/bin/env python3
"""Quickstart: run kernels, verify variants, and profile with Caliper/Thicket.

This walks the same path as the paper's tooling:

1. instantiate a kernel and *really* run all of its variants (Base/RAJA x
   Seq/OpenMP/CUDA/HIP/SYCL), verifying the RAJAPerf-style checksums;
2. read its analytic metrics (Fig. 1's data);
3. predict its node-level execution time and TMA profile on the paper's
   four machines;
4. run a small sweep through the suite executor, emitting one Caliper
   profile per (machine, variant), and compose them with Thicket.
"""

from repro import SuiteExecutor, RunParams, Thicket, get_machine, make_kernel


def main() -> None:
    # --- 1. one kernel, all variants, checksum-verified ------------------
    triad = make_kernel("Stream_TRIAD", problem_size=100_000)
    checksums = triad.verify_variants()
    print(f"{triad.full_name}: {len(checksums)} variants agree; "
          f"checksum = {checksums['RAJA_Seq']:.6f}")

    # --- 2. analytic metrics (platform-independent) ----------------------
    print("\nAnalytic metrics per iteration (Fig. 1):")
    for name, value in triad.analytic_metrics().items():
        print(f"  {name:16s} = {value:.4g}")

    # --- 3. model predictions on the paper's machines --------------------
    print("\nPredicted node-level time for one pass at 32M elements:")
    big = make_kernel("Stream_TRIAD", problem_size="32M")
    for shorthand in ("SPR-DDR", "SPR-HBM", "P9-V100", "EPYC-MI250X"):
        machine = get_machine(shorthand)
        breakdown = big.predict(machine)
        extra = ""
        if breakdown.tma is not None:
            extra = f"  memory-bound fraction = {breakdown.tma['memory_bound']:.2f}"
        print(f"  {shorthand:12s} {breakdown.total_seconds * 1e6:10.1f} us{extra}")

    # --- 4. a small suite run -> Caliper profiles -> Thicket -------------
    params = RunParams(
        problem_size="32M",
        variants=("RAJA_Seq", "RAJA_CUDA", "RAJA_HIP"),
        groups=(),  # whole suite
        kernels=("Stream_TRIAD", "Basic_DAXPY", "Algorithm_SCAN", "Apps_VOL3D"),
    )
    result = SuiteExecutor(params).run_paper_configuration()
    thicket = Thicket.from_caliperreader(result.profiles)
    print(f"\n{thicket}")
    regions, profiles, matrix = thicket.metric_matrix(
        "Avg time/rank", region_filter=lambda s: "_" in s
    )
    print(f"{'Kernel':20s} " + " ".join(f"{p:>30s}" for p in profiles))
    for i, region in enumerate(regions):
        cells = " ".join(f"{v * 1e6:>28.1f}us" for v in matrix[i])
        print(f"{region:20s} {cells}")


if __name__ == "__main__":
    main()
