"""Fig. 9: memory-bound metric and speedups on the three HBM machines."""

import pytest
from conftest import save_artifact

from repro.analysis import run_speedup_study
from repro.reporting import fig9


@pytest.fixture(scope="module")
def study():
    return run_speedup_study()


def bench_fig9_speedup_panels(benchmark, artifact_dir):
    text = benchmark(fig9)
    save_artifact(artifact_dir, "fig9", text)
    assert "panel 1" in text
    assert text.count("Fig. 9 panel") == 4  # memory-bound + 3 speedup panels
    assert "TRIAD" in text


def test_triad_reference_lines(study):
    """The yellow lines: TRIAD's speedups per machine (paper: the achieved
    bandwidth ratios, ~2.4x / ~7.2x / ~21.8x)."""
    assert study.triad_speedups["SPR-HBM"] == pytest.approx(2.39, rel=0.1)
    assert study.triad_speedups["P9-V100"] == pytest.approx(7.15, rel=0.1)
    assert study.triad_speedups["EPYC-MI250X"] == pytest.approx(21.8, rel=0.1)


def test_edge3d_annotation(study):
    """Apps_EDGE3D exceeds the 40x panel cap on EPYC-MI250X (118.6x)."""
    assert study.record("Apps_EDGE3D").speedup("EPYC-MI250X") > 40.0


def test_hbm_speedups_bounded_by_bandwidth_ratio(study):
    """No kernel can beat the DDR->HBM achieved-bandwidth ratio by much."""
    for record in study.records:
        assert record.speedup("SPR-HBM") < 2.39 * 1.15, record.kernel


def test_panel2_annotated_kernels_are_memory_bound(study):
    """Kernels with SPR-HBM speedup > 1 are (at least somewhat) memory
    bound — the paper's Section V-A finding."""
    gainers = [
        r for r in study.records
        if r.speedup("SPR-HBM") > 1.1 and not r.kernel.startswith("Comm")
    ]
    assert len(gainers) >= 25
    assert all(r.memory_bound_ddr > 0.05 for r in gainers)


def test_comm_halo_is_the_outlier(study):
    """Comm HALO kernels are dominated by MPI and do not track bandwidth."""
    exchange = study.record("Comm_HALO_EXCHANGE")
    assert exchange.speedup("SPR-HBM") < 1.3
    assert exchange.speedup("EPYC-MI250X") < 2.0
