"""Benches for the extension analyses: scalability and tuning sweeps."""

import pytest
from conftest import save_artifact

from repro.analysis import (
    render_curve,
    render_tuning_table,
    strong_scaling,
    tune_kernel,
    weak_scaling,
)
from repro.machines.registry import EPYC_MI250X, P9_V100, SPR_DDR
from repro.suite.registry import get_kernel_class, make_kernel


def bench_strong_scaling_sweep(benchmark, artifact_dir):
    """Strong scaling of one kernel per bottleneck class on SPR-DDR."""

    def sweep():
        return [
            strong_scaling(make_kernel(name, "32M"), SPR_DDR)
            for name in ("Stream_TRIAD", "Algorithm_SCAN",
                         "Basic_INIT_VIEW1D", "Basic_TRAP_INT")
        ]

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        artifact_dir, "scaling_strong", "\n\n".join(render_curve(c) for c in curves)
    )
    by_name = {c.kernel: c for c in curves}
    # Bandwidth wall: TRIAD's full-node efficiency is visibly below the
    # compute-bound kernel's.
    assert by_name["Stream_TRIAD"].points[-1].efficiency < 0.7
    assert by_name["Basic_TRAP_INT"].points[-1].efficiency > 0.95


def bench_weak_scaling_sweep(benchmark, artifact_dir):
    def sweep():
        return [
            weak_scaling(get_kernel_class(name), SPR_DDR)
            for name in ("Stream_TRIAD", "Basic_TRAP_INT")
        ]

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        artifact_dir, "scaling_weak", "\n\n".join(render_curve(c) for c in curves)
    )
    by_name = {c.kernel: c for c in curves}
    assert by_name["Basic_TRAP_INT"].points[-1].efficiency > 0.95
    assert by_name["Stream_TRIAD"].points[-1].efficiency < 0.7


def bench_tuning_sweep_both_gpus(benchmark, artifact_dir):
    """Block-size tuning sweep for a kernel sample on both GPU machines."""
    kernels = ("Stream_TRIAD", "Basic_DAXPY", "Basic_MAT_MAT_SHARED", "Apps_VOL3D")

    def sweep():
        results = []
        for machine in (P9_V100, EPYC_MI250X):
            for name in kernels:
                results.append(tune_kernel(make_kernel(name, "32M"), machine))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(artifact_dir, "tuning_sweep", render_tuning_table(results))
    # Tunings matter but mildly: every kernel within 2x across blocks.
    assert all(1.0 <= r.worst_penalty <= 2.0 for r in results)
    # The AMD wavefront (64) prefers larger blocks than the default.
    amd = [r for r in results if r.machine == "EPYC-MI250X"]
    assert all(r.best_block >= 256 for r in amd)
