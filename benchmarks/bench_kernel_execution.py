"""Real-execution wall-clock benchmarks of representative kernels.

Unlike the model-space benches, these time the actual NumPy execution of
one kernel per group through the RAJA-sim layer — the suite's "does it
actually run fast" guard. Sizes are chosen so a round stays in the
milliseconds.
"""

import pytest

from repro.suite.registry import make_kernel
from repro.suite.variants import get_variant

RAJA_SEQ = get_variant("RAJA_Seq")
BASE_SEQ = get_variant("Base_Seq")

REPRESENTATIVES = [
    ("Stream_TRIAD", 200_000),
    ("Basic_DAXPY", 200_000),
    ("Algorithm_SCAN", 200_000),
    ("Lcals_HYDRO_1D", 200_000),
    ("Apps_ENERGY", 50_000),
    ("Polybench_GEMM", 40_000),
    ("Comm_HALO_EXCHANGE", 30_000),
]


@pytest.mark.parametrize("name,size", REPRESENTATIVES, ids=[r[0] for r in REPRESENTATIVES])
def bench_kernel_raja_seq(benchmark, name, size):
    kernel = make_kernel(name, size)
    kernel.ensure_setup()
    policy = RAJA_SEQ.policy()

    def run():
        kernel.run_raja(policy)

    benchmark(run)
    assert kernel.checksum() == kernel.checksum()  # finite & reproducible


@pytest.mark.parametrize("name,size", [("Stream_TRIAD", 200_000), ("Basic_DAXPY", 200_000)])
def bench_kernel_base_seq(benchmark, name, size):
    """Base-variant wall clock, for RAJA-vs-Base comparison in reports."""
    kernel = make_kernel(name, size)
    kernel.ensure_setup()
    policy = BASE_SEQ.policy()

    def run():
        kernel.run_base(policy)

    benchmark(run)


def bench_gpu_style_dispatch_overhead(benchmark):
    """The block-partitioned CUDA-style dispatch of the RAJA-sim layer."""
    kernel = make_kernel("Stream_TRIAD", 200_000)
    kernel.ensure_setup()
    policy = get_variant("RAJA_CUDA").policy().with_block_size(1024)

    def run():
        kernel.run_raja(policy)

    benchmark(run)


# --------------------------------------------------------------------------
# Execution-engine sweep: legacy (seed) dispatch vs the zero-copy engine.
#
# These benches run a representative campaign sweep twice — once through
# ``legacy_dispatch()`` with the kernel-state pool disabled (the seed
# engine, preserved verbatim for exactly this comparison), once through
# the zero-copy engine (slice/fused dispatch + partition-plan cache +
# KernelStatePool) — and assert both the checksum equality of every
# executed cell and the engine speedup the PR claims. The measured
# cells/sec and speedup land in the pytest-benchmark JSON via
# ``extra_info`` where ``tools/check_bench_regression.py`` gates them.

import json
import time

from conftest import save_artifact

from repro.rajasim.forall import clear_dispatch_caches, legacy_dispatch
from repro.suite.executor import SuiteExecutor
from repro.suite.run_params import RunParams

#: Kernels with enough real work for the engine difference to dominate
#: the per-record session bookkeeping, mixing fused elementwise bodies,
#: per-partition reducers, and an atomic-histogram body.
SWEEP_KERNELS = (
    "Algorithm_REDUCE_SUM",
    "Algorithm_HISTOGRAM",
    "Basic_ARRAY_OF_PTRS",
    "Lcals_INT_PREDICT",
    "Algorithm_MEMCPY",
    "Basic_DAXPY",
    "Stream_DOT",
    "Lcals_DIFF_PREDICT",
    "Basic_MULADDSUB",
    "Stream_ADD",
    "Basic_COPY8",
    "Lcals_PLANCKIAN",
)

#: The speedup floor both sweep benches assert (and the regression gate
#: re-checks against the committed baseline).
MIN_ENGINE_SPEEDUP = 2.0

_SWEEP_REPS = 3  # min-of-N full-sweep repetitions per engine


def _sweep_params(workers: int, trials: int, state_pool: bool) -> RunParams:
    return RunParams(
        problem_size=400_000,
        execution_size_cap=400_000,
        execute=True,
        trials=trials,
        workers=workers,
        machines=("SPR-DDR", "P9-V100"),
        variants=("RAJA_Seq", "RAJA_OpenMP", "RAJA_CUDA"),
        kernels=SWEEP_KERNELS,
        state_pool=state_pool,
        noise_sigma=0.0,
        output_dir="benchmarks/_artifacts",
    )


def _sweep_checksums(result) -> dict[tuple, float]:
    """Every executed cell's checksums, keyed independently of profile
    order (supervised runs complete cells out of submission order)."""
    sums: dict[tuple, float] = {}
    for prof in result.profiles:
        g = prof.globals
        base = (g["machine"], g["variant"], g["tuning"], g["trial"])
        for node in prof.walk():
            value = getattr(node, "metrics", {}).get("checksum")
            if value is not None:
                sums[base + (node.path,)] = value
    return sums


def _run_sweep(workers: int, trials: int, legacy: bool):
    """One full sweep through the chosen engine: (elapsed_s, checksums)."""
    clear_dispatch_caches()
    params = _sweep_params(workers, trials, state_pool=not legacy)
    ex = SuiteExecutor(params)
    start = time.perf_counter()
    if legacy:
        with legacy_dispatch():
            result = ex.run(write_files=False)
    else:
        result = ex.run(write_files=False)
    return time.perf_counter() - start, result, ex


def _bench_engine_sweep(benchmark, artifact_dir, workers: int, trials: int):
    old_times, new_times = [], []
    old_sums = new_sums = None
    cells = None
    for _ in range(_SWEEP_REPS):
        elapsed, result, ex = _run_sweep(workers, trials, legacy=True)
        old_times.append(elapsed)
        old_sums = _sweep_checksums(result)
        if cells is None:
            cells = len(ex.build_cells())

    def run_new():
        nonlocal new_sums
        elapsed, result, _ = _run_sweep(workers, trials, legacy=False)
        new_times.append(elapsed)
        new_sums = _sweep_checksums(result)

    benchmark.pedantic(run_new, rounds=_SWEEP_REPS, iterations=1)

    # Bit-identical numerics: the zero-copy engine must not change a
    # single checksum anywhere in the sweep.
    assert new_sums == old_sums, "engine changed executed checksums"
    assert old_sums, "sweep produced no executed checksums"

    old_t, new_t = min(old_times), min(new_times)
    speedup = old_t / new_t
    stats = {
        "workers": workers,
        "trials": trials,
        "cells": cells,
        "checksums": len(old_sums),
        "legacy_s": round(old_t, 4),
        "engine_s": round(new_t, 4),
        "legacy_cells_per_sec": round(cells / old_t, 2),
        "engine_cells_per_sec": round(cells / new_t, 2),
        "speedup": round(speedup, 3),
    }
    benchmark.extra_info.update(stats)
    save_artifact(
        artifact_dir,
        f"engine_sweep_workers{workers}",
        json.dumps(stats, indent=2, sort_keys=True),
    )
    assert speedup >= MIN_ENGINE_SPEEDUP, (
        f"zero-copy engine speedup {speedup:.2f}x below the "
        f"{MIN_ENGINE_SPEEDUP}x floor: {stats}"
    )


def bench_execution_engine_sweep_serial(benchmark, artifact_dir):
    """Full executed sweep, serial executor: legacy vs zero-copy engine."""
    _bench_engine_sweep(benchmark, artifact_dir, workers=1, trials=6)


def bench_execution_engine_sweep_workers2(benchmark, artifact_dir):
    """Full executed sweep under the supervised 2-worker pool."""
    _bench_engine_sweep(benchmark, artifact_dir, workers=2, trials=8)
