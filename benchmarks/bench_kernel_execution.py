"""Real-execution wall-clock benchmarks of representative kernels.

Unlike the model-space benches, these time the actual NumPy execution of
one kernel per group through the RAJA-sim layer — the suite's "does it
actually run fast" guard. Sizes are chosen so a round stays in the
milliseconds.
"""

import pytest

from repro.suite.registry import make_kernel
from repro.suite.variants import get_variant

RAJA_SEQ = get_variant("RAJA_Seq")
BASE_SEQ = get_variant("Base_Seq")

REPRESENTATIVES = [
    ("Stream_TRIAD", 200_000),
    ("Basic_DAXPY", 200_000),
    ("Algorithm_SCAN", 200_000),
    ("Lcals_HYDRO_1D", 200_000),
    ("Apps_ENERGY", 50_000),
    ("Polybench_GEMM", 40_000),
    ("Comm_HALO_EXCHANGE", 30_000),
]


@pytest.mark.parametrize("name,size", REPRESENTATIVES, ids=[r[0] for r in REPRESENTATIVES])
def bench_kernel_raja_seq(benchmark, name, size):
    kernel = make_kernel(name, size)
    kernel.ensure_setup()
    policy = RAJA_SEQ.policy()

    def run():
        kernel.run_raja(policy)

    benchmark(run)
    assert kernel.checksum() == kernel.checksum()  # finite & reproducible


@pytest.mark.parametrize("name,size", [("Stream_TRIAD", 200_000), ("Basic_DAXPY", 200_000)])
def bench_kernel_base_seq(benchmark, name, size):
    """Base-variant wall clock, for RAJA-vs-Base comparison in reports."""
    kernel = make_kernel(name, size)
    kernel.ensure_setup()
    policy = BASE_SEQ.policy()

    def run():
        kernel.run_base(policy)

    benchmark(run)


def bench_gpu_style_dispatch_overhead(benchmark):
    """The block-partitioned CUDA-style dispatch of the RAJA-sim layer."""
    kernel = make_kernel("Stream_TRIAD", 200_000)
    kernel.ensure_setup()
    policy = get_variant("RAJA_CUDA").policy().with_block_size(1024)

    def run():
        kernel.run_raja(policy)

    benchmark(run)
