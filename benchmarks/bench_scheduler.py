"""Cost-model-guided scheduling vs the seed FIFO dispatch, end to end.

The campaign is deliberately skewed the way a real portability sweep is:
many tiny cells (seq variants of a cheap kernel) plus one huge straggler
(``RAJA_CUDA`` at block 8 — ~25k simulated launches per rep). Under the
seed scheduler the straggler sits at the end of the sweep order, so a
``--workers 4`` campaign drains its tiny cells first and then holds the
whole pool open on one worker; LPT ordering starts the straggler first,
batching collapses the tiny-cell dispatch overhead, and the shm ring
carries the result payloads.

The probe kernel models its device time as *launch latency* (one
``time.sleep`` sized by the policy's launch count) rather than host
compute, so worker wall-clock overlaps on any core count and the bench
measures the scheduler, not the host CPU. Checksums still run on real
arrays — identical outputs across scheduler settings is asserted per
cell, and a model-only packed campaign must merge to byte-identical
archives under every knob combination.

Asserted: LPT + batching + shm completes the skewed campaign >= 1.5x
faster than FIFO + single-cell dispatch + queue transport at
``--workers 4``; gated in CI by ``benchmarks/baselines/scheduler.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

from conftest import save_artifact

from repro.caliper import calipack
from repro.machines.registry import get_machine
from repro.rajasim import forall, slice_capable
from repro.suite.checksum import checksum_array
from repro.suite.executor import SuiteExecutor, _Cell
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.refchecksums import SIDECAR_NAME
from repro.suite.registry import register_kernel
from repro.suite.run_params import RunParams
from repro.suite.supervisor import CampaignSupervisor
from repro.suite.trait_presets import STREAMING, derive
from repro.suite.variants import get_variant

#: sleep floor of every cell — the "kernel time" of a tiny cell.
BASE_SLEEP_S = 0.02
#: simulated per-launch latency; at block 8 over 200k iterations the
#: straggler pays ~25k launches -> ~0.8 s, ~T/3 of the tiny-cell work.
PER_LAUNCH_S = 32e-6

#: tiny-cell trial count (x2 seq variants); override for CI smoke runs.
TINY_TRIALS = int(os.environ.get("REPRO_SCHED_BENCH_TINY_TRIALS", "48"))
SIZE = 200_000
BLOCK = 8
KERNEL = "Basic_SCHED_PROBE"
WORKERS = 4
MIN_SPEEDUP = 1.5


@register_kernel
class SchedProbe(KernelBase):
    """DAXPY with its device time modeled as launch latency.

    ``run_raja`` sleeps ``launches * PER_LAUNCH_S`` after the (real,
    vectorized) array update: the cell's wall-clock is dominated by
    simulated launch latency, which overlaps across workers regardless
    of host core count — exactly the straggler shape the scheduler has
    to handle, minus the host-CPU contention that would serialize a
    compute-bound bench on a small runner.
    """

    NAME = "SCHED_PROBE"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})

    A = 1.5

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        self.y = self.rng.random(n)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * self.problem_size

    def traits(self):
        return derive(STREAMING, streaming_eff=1.0, simd_eff=0.95)

    def run_base(self, policy) -> None:
        self.y += self.A * self.x
        time.sleep(BASE_SLEEP_S)

    def run_raja(self, policy) -> None:
        x, y, a = self.x, self.y, self.A

        @slice_capable(fuse=True)
        def body(i) -> None:
            y[i] += a * x[i]

        launches = forall(policy, self.problem_size, body)
        time.sleep(BASE_SLEEP_S + launches * PER_LAUNCH_S)

    def checksum(self) -> float:
        return checksum_array(self.y)


def _params(outdir: Path, **overrides) -> RunParams:
    defaults = dict(
        problem_size=SIZE,
        execute=True,
        kernels=(KERNEL,),
        machines=("SPR-DDR", "P9-V100"),
        variants=("Base_Seq", "RAJA_Seq", "RAJA_CUDA"),
        gpu_block_sizes=(BLOCK,),
        trials=TINY_TRIALS,
        workers=WORKERS,
        heartbeat_timeout=30.0,
        output_dir=str(outdir),
    )
    defaults.update(overrides)
    return RunParams(**defaults)


def _skewed_cells() -> list[_Cell]:
    """2 * TINY_TRIALS tiny seq cells, then one huge CUDA straggler —
    sweep order puts the straggler last, FIFO's worst case."""
    spr, p9 = get_machine("SPR-DDR"), get_machine("P9-V100")
    cells = []
    for trial in range(TINY_TRIALS):
        for vname in ("Base_Seq", "RAJA_Seq"):
            cells.append(
                _Cell(
                    spr, get_variant(vname), 0, trial,
                    f"rajaperf_SPR-DDR_{vname}_default_trial{trial}.cali",
                )
            )
    cells.append(
        _Cell(
            p9, get_variant("RAJA_CUDA"), BLOCK, 0,
            f"rajaperf_P9-V100_RAJA_CUDA_block_{BLOCK}_trial0.cali",
        )
    )
    return cells


def _run_campaign(outdir: Path, **overrides):
    shutil.rmtree(outdir, ignore_errors=True)
    outdir.mkdir(parents=True)
    supervisor = CampaignSupervisor(_params(outdir, **overrides))
    start = time.perf_counter()
    result = supervisor.run(_skewed_cells(), write_files=True)
    return time.perf_counter() - start, result


def _cell_checksums(outdir: Path, result) -> dict:
    """Cell-keyed outcome summary + the campaign's reference checksums
    (actual Base_Seq checksum values, shared by every variant check)."""
    per_cell = {
        key: (
            result.report.cells[key],
            sorted(
                (rec.kernel, rec.status, rec.checksum_ok)
                for rec in result.report.records
                if rec.cell == key
            ),
        )
        for key in result.report.cells
    }
    refs = json.loads((outdir / SIDECAR_NAME).read_text())
    return {"cells": per_cell, "references": refs}


FIFO = dict(schedule="fifo", batch_cells=1, shm=False)
LPT = dict(schedule="lpt", batch_cells="auto", shm=True)


def bench_scheduler_skewed_campaign(benchmark, artifact_dir, tmp_path):
    """The acceptance bench: LPT+batch+shm >= 1.5x FIFO at 4 workers."""
    walls = {"fifo": [], "lpt": []}
    checks: dict[str, dict] = {}
    # Interleaved best-of-2 so drift hits both configurations equally.
    for _ in range(2):
        for label, knobs in (("fifo", FIFO), ("lpt", LPT)):
            outdir = tmp_path / label
            wall, result = _run_campaign(outdir, **knobs)
            counts = result.report.cell_counts()
            assert counts == {"ok": 2 * TINY_TRIALS + 1}, counts
            walls[label].append(wall)
            checks[label] = _cell_checksums(outdir, result)

    # Identical work, identical outputs: every cell's kernel statuses,
    # checksum verdicts, and the campaign's reference checksum *values*
    # must not depend on scheduling.
    assert checks["fifo"] == checks["lpt"]

    fifo_s, lpt_s = min(walls["fifo"]), min(walls["lpt"])
    speedup = fifo_s / lpt_s
    cells = 2 * TINY_TRIALS + 1

    benchmark.extra_info["lpt_speedup"] = round(speedup, 2)
    benchmark.extra_info["lpt_cells_per_sec"] = round(cells / lpt_s, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_artifact(
        artifact_dir,
        "scheduler_speedup",
        f"cells:               {cells} ({cells - 1} tiny + 1 straggler)\n"
        f"workers:             {WORKERS}\n"
        f"fifo wall:           {fifo_s:.2f} s\n"
        f"lpt+batch+shm wall:  {lpt_s:.2f} s\n"
        f"speedup:             {speedup:.2f}x",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"lpt+batch+shm only {speedup:.2f}x faster than fifo "
        f"({lpt_s:.2f}s vs {fifo_s:.2f}s; need >= {MIN_SPEEDUP}x)"
    )


def bench_scheduler_archives_bit_identical(benchmark, tmp_path):
    """Scheduling must never leak into the bytes: a model-only packed
    campaign merges to the identical archive under every knob setting."""

    def run(label, knobs):
        outdir = tmp_path / f"pack_{label}"
        outdir.mkdir()
        params = _params(
            outdir, execute=False, trials=4, pack=True, **knobs
        )
        result = SuiteExecutor(params).run(write_files=True)
        assert result.report.clean
        return (outdir / calipack.ARCHIVE_NAME).read_bytes()

    baseline = benchmark.pedantic(
        lambda: run("fifo", FIFO), rounds=1, iterations=1
    )
    for label, knobs in (
        ("lpt", LPT),
        ("lpt_noshm", dict(schedule="lpt", batch_cells=4, shm=False)),
    ):
        assert run(label, knobs) == baseline, (
            f"{label} archive differs from fifo archive"
        )
