"""Fig. 2: the top-down (TMA) hierarchy."""

from conftest import save_artifact

from repro.analysis.topdown import TMA_HIERARCHY
from repro.reporting import fig2


def bench_fig2_tma_hierarchy(benchmark, artifact_dir):
    text = benchmark(fig2)
    save_artifact(artifact_dir, "fig2", text)
    for category in ("Frontend Bound", "Bad Speculation", "Retiring", "Backend Bound"):
        assert category in text
    # Level-2 split of Backend Bound (the part the paper quantifies).
    assert "Core Bound" in text and "Memory Bound" in text


def test_fig2_backend_split_structure():
    assert TMA_HIERARCHY["Backend Bound"] == ["Core Bound", "Memory Bound"]
    assert "DRAM Bound" in TMA_HIERARCHY["Memory Bound"]
