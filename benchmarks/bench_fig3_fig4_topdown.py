"""Figs. 3 and 4: SPR-DDR / SPR-HBM top-down metrics across the suite.

The shape check is the one Section III-A narrates: kernels that are
memory bound on SPR-DDR become visibly *less* memory bound on SPR-HBM,
while REDUCE_SUM / 2MM / ATAX / MATVEC_3D_STENCIL stay non-memory-bound
on both.
"""

from conftest import save_artifact

from repro.machines.registry import SPR_DDR, SPR_HBM
from repro.reporting import fig3, fig4
from repro.suite.registry import make_kernel

PAPER = 32_000_000


def _memory_bound(kernel_name: str, machine) -> float:
    return make_kernel(kernel_name, PAPER).predict(machine).tma["memory_bound"]


def bench_fig3_spr_ddr_topdown(benchmark, artifact_dir):
    text = benchmark(fig3)
    save_artifact(artifact_dir, "fig3", text)
    assert len(text.splitlines()) == 2 + 76


def bench_fig4_spr_hbm_topdown(benchmark, artifact_dir):
    text = benchmark(fig4)
    save_artifact(artifact_dir, "fig4", text)
    assert len(text.splitlines()) == 2 + 76


def test_hbm_relieves_memory_bound_kernels():
    """Stream + SCAN + GESUMMV: high memory-bound on DDR, lower on HBM."""
    for name in ("Stream_TRIAD", "Stream_ADD", "Algorithm_SCAN",
                 "Polybench_GESUMMV", "Lcals_HYDRO_1D"):
        ddr = _memory_bound(name, SPR_DDR)
        hbm = _memory_bound(name, SPR_HBM)
        assert ddr > 0.4, name
        assert hbm < ddr, name


def test_compute_bound_kernels_stay_low_on_both():
    """Section III-A's named examples: REDUCE_SUM, 2MM, ATAX,
    MATVEC_3D_STENCIL have low memory-bound metrics on both systems."""
    for name in ("Algorithm_REDUCE_SUM", "Polybench_2MM", "Polybench_ATAX",
                 "Apps_MATVEC_3D_STENCIL"):
        assert _memory_bound(name, SPR_DDR) < 0.25, name
        assert _memory_bound(name, SPR_HBM) < 0.25, name


def test_scan_contrast_is_pronounced():
    """'with Algorithm SCAN, higher memory bound metric on SPR-DDR ...
    significantly lower on SPR-HBM'."""
    ddr = _memory_bound("Algorithm_SCAN", SPR_DDR)
    hbm = _memory_bound("Algorithm_SCAN", SPR_HBM)
    assert ddr - hbm > 0.15
