"""End-to-end pipeline benches: the executor and the Thicket composition.

These time the paper's actual workflow — run the whole suite on the Table
III configuration, write profiles, compose with Thicket — so regressions
in the orchestration layer are visible.
"""

import pytest
from conftest import save_artifact

from repro.caliper import runtime_report
from repro.suite import RunParams, SuiteExecutor
from repro.thicket import Thicket


def bench_full_suite_paper_configuration(benchmark, artifact_dir):
    """All 76 kernels, all four Table III rows, model predictions +
    counters -> 4 Caliper profiles."""
    params = RunParams(problem_size="32M")
    executor = SuiteExecutor(params)

    result = benchmark.pedantic(
        executor.run_paper_configuration, rounds=2, iterations=1
    )
    assert len(result.profiles) == 4
    for profile in result.profiles:
        kernels = [n for n in profile.region_names() if "_" in n]
        assert len(kernels) == 76
    save_artifact(
        artifact_dir,
        "executor_report",
        runtime_report(result.profiles[0], metric="Avg time/rank", min_fraction=0.01),
    )


def bench_thicket_composition(benchmark):
    """Compose 12 profiles (4 machines x 3 trials) into one Thicket."""
    params = RunParams(problem_size="32M", trials=3)
    profiles = SuiteExecutor(params).run_paper_configuration().profiles
    assert len(profiles) == 12

    thicket = benchmark(Thicket.from_caliperreader, profiles)
    assert len(thicket.profiles) == 12
    assert thicket.dataframe.nrows == 12 * (76 + 8)  # kernels + group/root rows


def bench_cali_file_roundtrip(benchmark, tmp_path):
    """Write + read the full-suite profile set."""
    from repro.caliper import read_cali, write_cali

    params = RunParams(problem_size="32M")
    profiles = SuiteExecutor(params).run_paper_configuration().profiles

    def roundtrip():
        paths = [
            write_cali(p, tmp_path / f"p{i}.cali") for i, p in enumerate(profiles)
        ]
        return [read_cali(path) for path in paths]

    loaded = benchmark(roundtrip)
    assert len(loaded) == 4
    assert loaded[0].globals == profiles[0].globals
