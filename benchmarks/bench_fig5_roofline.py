"""Fig. 5: instruction roofline on the P9-V100 (L1 / L2 / HBM levels)."""

import numpy as np
from conftest import save_artifact

from repro.analysis.roofline import roofline_ceiling, roofline_points
from repro.gpusim.ncu import ncu_counters
from repro.machines.registry import P9_V100
from repro.reporting import fig5
from repro.suite.registry import all_kernel_classes, make_kernel

PAPER = 32_000_000


def _points(kernel_name: str):
    kernel = make_kernel(kernel_name, PAPER)
    work = kernel.work_profile().scaled(1.0 / P9_V100.units_per_node)
    time_s = kernel.predict(P9_V100).total_seconds
    counters = ncu_counters(work, kernel.effective_traits(), P9_V100, time_s)
    return roofline_points(kernel.full_name, counters, P9_V100)


def bench_fig5_instruction_roofline(benchmark, artifact_dir):
    text = benchmark(fig5)
    save_artifact(artifact_dir, "fig5", text)
    assert "437.5" in text  # L1 ceiling (Ding & Williams' V100 numbers)
    assert "25.9" in text  # HBM ceiling
    assert len(text.splitlines()) == 2 + 76


def test_all_points_under_the_roof():
    """No kernel may exceed the attainable performance at its intensity."""
    for cls in all_kernel_classes():
        for point in _points(cls.class_full_name()):
            ceiling = roofline_ceiling(P9_V100, point.level, min(point.intensity, 1e9))
            assert point.warp_gips <= ceiling * 1.05, (point.kernel, point.level)


def test_triad_rides_the_hbm_diagonal():
    """Stream kernels sit on the memory diagonal at the HBM level (the
    achieved 92.6%-of-bandwidth anchor of Table II)."""
    hbm = next(p for p in _points("Stream_TRIAD") if p.level == "HBM")
    assert hbm.bound_by(P9_V100) == "memory"
    assert hbm.gtxn_per_sec > 0.8 * P9_V100.gpu.dram_gtxn_per_sec


def test_l2_spread_narrower_than_l1():
    """The paper notes the kernel spread narrows from L1 to L2."""
    l1_int, l2_int = [], []
    for cls in all_kernel_classes():
        kernel = make_kernel(cls.class_full_name(), PAPER)
        if kernel.work_profile().atomics > 0:
            continue  # atomics add L2-only transactions
        points = {p.level: p.intensity for p in _points(cls.class_full_name())}
        if np.isfinite(points["L1"]) and np.isfinite(points["L2"]):
            l1_int.append(np.log10(points["L1"]))
            l2_int.append(np.log10(points["L2"]))
    # The invariant behind the paper's "narrower spread at L2": filtering
    # through the L1 cache removes transactions, so every (non-atomic)
    # kernel's L2 intensity >= its L1 intensity.
    assert all(b >= a - 1e-9 for a, b in zip(l1_int, l2_int))


def test_memory_vs_compute_split_exists():
    """Fig. 5 shows both compute-bound and memory-bound kernels at HBM."""
    bounds = set()
    for name in ("Stream_TRIAD", "Basic_MAT_MAT_SHARED", "Basic_TRAP_INT"):
        hbm = next(p for p in _points(name) if p.level == "HBM")
        bounds.add(hbm.bound_by(P9_V100))
    assert bounds == {"memory", "compute"}


def bench_fig5_roofline_mi250x(benchmark, artifact_dir):
    """Extension: the same instruction-roofline view on the EPYC-MI250X
    (the paper shows only the V100; the machinery generalizes)."""
    from repro.reporting import fig5

    text = benchmark.pedantic(
        lambda: fig5(machine_name="EPYC-MI250X"), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "fig5_mi250x", text)
    assert "EPYC-MI250X" in text
    assert len(text.splitlines()) == 2 + 76
