"""Shared helpers for the benchmark harness.

Every table/figure bench regenerates its artifact through
``pytest-benchmark`` (so the cost of the pipeline is tracked), asserts the
reproduction-critical content, and writes the artifact text to
``benchmarks/_artifacts/`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACT_DIR = Path(__file__).parent / "_artifacts"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def save_artifact(directory: Path, name: str, text: str) -> None:
    (directory / f"{name}.txt").write_text(text + "\n")
