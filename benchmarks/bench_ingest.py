"""Ingest throughput at paper scale: 1000 profiles, seed path vs packed.

The paper's workflow is "run the suite everywhere, then EDA over *many*
runs" — thousands of sealed ``.cali`` files per campaign. The seed
ingest opened, CRC-checked, JSON-parsed, and object-ified them one at a
time, then built per-row dicts for ``Frame.from_records``. This bench
builds a synthetic 1000-profile campaign in the *seed's* on-disk layout
(pretty-printed loose files) and times three ingest strategies:

* ``seed serial``   — the seed composition path, re-enacted faithfully
  (``read_cali`` object trees -> per-row dicts -> ``from_records``);
* ``columnar cold`` — the packed archive through the rewritten columnar
  ingest, cache disabled (pure parse+compose improvement);
* ``packed cached`` — the packed archive with the content-addressed
  ingest cache primed (the steady state ``pack`` leaves a campaign in):
  a repeated ``analyze`` must not re-parse a single payload.

Asserted: all three produce identical Thicket tables, the cached path
is >= 5x the seed path end to end, and a warm-cache load really never
touches a payload parser.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import save_artifact

from repro.caliper import calipack
from repro.caliper.cali import (
    FORMAT_NAME,
    FORMAT_VERSION,
    footer_line,
    read_cali,
)
from repro.dataframe import Frame
from repro.thicket import Thicket
from repro.thicket import ingest
from repro.thicket.ingest_cache import CACHE_DIR_NAME

N_PROFILES = 1000
GROUPS = ("Basic", "Stream", "Polybench")
KERNELS_PER_GROUP = 4
METRICS = (
    "Avg time/rank", "Bytes/rep", "Flops/rep", "iterations", "reps",
    "Retiring", "Frontend bound", "Backend bound", "Bad speculation",
)


def _profile_payload(i: int) -> dict:
    """One synthetic profile as the seed would have serialized it."""
    rng = np.random.default_rng(i)
    kernels = []
    for g, group in enumerate(GROUPS):
        children = []
        for k in range(KERNELS_PER_GROUP):
            metrics = {
                name: float(rng.uniform(0.1, 10.0)) for name in METRICS
            }
            children.append(
                {"name": f"{group}_K{k}", "metrics": metrics, "children": []}
            )
        kernels.append(
            {"name": group, "metrics": {"Avg time/rank": float(g)},
             "children": children}
        )
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "globals": {
            "machine": f"m{i % 4}",
            "variant": f"variant{i % 25}",
            "tuning": "default",
            "trial": i // 100,
            "problem_size": 32_000_000,
        },
        "records": [
            {"name": "RAJAPerf", "metrics": {}, "children": kernels}
        ],
    }


def _write_seed_style(path: Path, payload_obj: dict) -> None:
    """A sealed file exactly as the seed wrote it (pretty-printed)."""
    payload = json.dumps(payload_obj, indent=1).encode("utf-8")
    path.write_bytes(
        payload + ("\n" + footer_line(payload) + "\n").encode("ascii")
    )


def _seed_compose(paths: list[str]) -> tuple[Frame, Frame]:
    """The seed's exact composition path: object trees -> row dicts."""
    profiles = [read_cali(p) for p in paths]
    data_records: list[dict] = []
    meta_records: list[dict] = []
    for idx, profile in enumerate(profiles):
        pid = ingest.profile_id(profile.globals, idx)
        meta = {"profile": pid}
        meta.update(profile.globals)
        meta_records.append(meta)
        for node in profile.walk():
            rec = {
                "profile": pid,
                "name": node.name,
                "path": "/".join(node.path),
                "depth": node.depth,
            }
            rec.update(node.metrics)
            data_records.append(rec)
    frame = Frame.from_records(data_records)
    for col in frame.columns:
        if col in ("profile", "name", "path"):
            continue
        arr = frame[col]
        if arr.dtype == object:
            coerced = np.array(
                [np.nan if v is None else v for v in arr], dtype=object
            )
            try:
                frame = frame.with_column(col, coerced.astype(float))
            except (TypeError, ValueError):
                frame = frame.with_column(col, coerced)
    return frame, Frame.from_records(meta_records)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """(loose files dir, packed archive, primed cache dir) at 1000 profiles."""
    loose = tmp_path_factory.mktemp("campaign_loose")
    packed = tmp_path_factory.mktemp("campaign_packed")
    for i in range(N_PROFILES):
        payload = _profile_payload(i)
        _write_seed_style(loose / f"p{i:04d}.cali", payload)
        _write_seed_style(packed / f"p{i:04d}.cali", payload)
    archive, entries = calipack.pack_directory(packed)
    assert len(entries) == N_PROFILES
    cache_dir = packed / CACHE_DIR_NAME
    # `pack` primes the cache (it read every payload anyway): emulate it.
    Thicket.from_caliperreader(str(archive), cache=cache_dir)
    files = sorted(str(p) for p in loose.glob("*.cali"))
    return files, archive, cache_dir


def bench_ingest_seed_serial(benchmark, campaign):
    """Baseline: the seed's serial, row-dict composition of loose files."""
    files, _, _ = campaign
    frame, metadata = benchmark.pedantic(
        _seed_compose, args=(files,), rounds=1, iterations=1
    )
    assert frame.nrows == N_PROFILES * (1 + len(GROUPS) * (1 + KERNELS_PER_GROUP))
    assert metadata.nrows == N_PROFILES


def bench_ingest_columnar_cold(benchmark, campaign):
    """The packed archive through the columnar ingest, no cache."""
    _, archive, _ = campaign
    thicket = benchmark.pedantic(
        Thicket.from_caliperreader, args=(str(archive),),
        rounds=2, iterations=1,
    )
    assert thicket.metadata.nrows == N_PROFILES


def bench_ingest_packed_cached(benchmark, campaign, artifact_dir):
    """The acceptance bench: packed + cached analyze >= 5x the seed path,
    identical tables, zero payload parses on a warm cache."""
    files, archive, cache_dir = campaign

    start = time.perf_counter()
    seed_frame, seed_meta = _seed_compose(files)
    seed_seconds = time.perf_counter() - start

    # A warm-cache load must not parse any payload: break the parser.
    real_parse = ingest.parse_cali_payload
    ingest.parse_cali_payload = _refuse_to_parse
    try:
        thicket = benchmark.pedantic(
            lambda: Thicket.from_caliperreader(str(archive), cache=cache_dir),
            rounds=3, iterations=1,
        )
    finally:
        ingest.parse_cali_payload = real_parse

    assert thicket.dataframe.equals(seed_frame)
    assert thicket.metadata.equals(seed_meta)

    fast_seconds = benchmark.stats.stats.mean
    speedup = seed_seconds / fast_seconds
    save_artifact(
        artifact_dir,
        "ingest_speedup",
        f"profiles:            {N_PROFILES}\n"
        f"seed serial path:    {seed_seconds:.3f} s\n"
        f"packed+cached path:  {fast_seconds:.3f} s\n"
        f"speedup:             {speedup:.1f}x",
    )
    assert speedup >= 5.0, (
        f"packed+cached ingest only {speedup:.1f}x faster than the seed "
        f"path ({fast_seconds:.3f}s vs {seed_seconds:.3f}s)"
    )


def _refuse_to_parse(*args, **kwargs):
    raise AssertionError("warm-cache ingest parsed a payload")


def bench_ingest_equivalence(campaign):
    """File/archive and serial/parallel ingest: identical Thicket tables."""
    files, archive, _ = campaign
    subset = files[:64]
    serial = Thicket.from_caliperreader(subset)
    parallel = Thicket.from_caliperreader(subset, workers=4)
    assert serial.dataframe.equals(parallel.dataframe)
    assert serial.metadata.equals(parallel.metadata)
    from_archive = Thicket.from_caliperreader(str(archive))
    from_files = _seed_compose(files)[0]
    assert from_archive.dataframe.equals(from_files)
