"""Lazy query engine at paper scale: filtered metadata queries, lazy vs eager.

The paper's EDA loop is interactive: "which profiles match this variant,
and what do their metrics aggregate to?" asked over campaigns of 10k-1M
profiles (pSTL-Bench's framing — measure scalability against input
count, not one size). The eager path answers by decoding *every* column
buffer of *both* cached tables and filtering afterwards; the lazy path
(``scan_cache`` -> plan optimizer) pushes the predicate and the column
selection into the ingest-cache reader, so only the referenced metadata
columns' buffers are read, string equality runs on dictionary codes, and
the half-million-row dataframe table is never touched.

Asserted: lazy and eager produce ``Frame.equals``-identical results at
both campaign sizes, the 100k-profile filtered query completes in <1s
warm, and the pushdown path is >= 10x the eager path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import save_artifact

from repro.dataframe import Frame, col, scan_cache
from repro.thicket import ingest_cache

N_SMALL = 10_000
N_LARGE = 100_000
KERNELS = ("Basic_DAXPY", "Stream_TRIAD", "Poly_2MM", "Apps_ENERGY", "Algo_SORT")


def _synth_campaign(n: int) -> tuple[Frame, Frame, list[tuple[str, str]]]:
    """Composed-table shapes a real n-profile campaign would produce."""
    rng = np.random.default_rng(n)
    profile = np.array(
        [f"m{i % 4}/variant{i % 25}/trial{i % 3}" for i in range(n)],
        dtype=object,
    )
    metadata = Frame({
        "profile": profile,
        "machine": np.array([f"m{i % 4}" for i in range(n)], dtype=object),
        "variant": np.array([f"variant{i % 25}" for i in range(n)], dtype=object),
        "tuning": np.array(["default"] * n, dtype=object),
        "trial": np.arange(n, dtype=np.int64) % 3,
        "problem_size": np.full(n, 32_000_000, dtype=np.int64),
    })
    k = len(KERNELS)
    dataframe = Frame({
        "profile": np.repeat(profile, k),
        "name": np.tile(np.array(KERNELS, dtype=object), n),
        "path": np.tile(
            np.array([f"RAJAPerf/{name}" for name in KERNELS], dtype=object), n
        ),
        "depth": np.full(n * k, 2, dtype=np.int64),
        "Avg time/rank": rng.uniform(0.1, 10.0, n * k),
        "Bytes/rep": rng.uniform(1e6, 1e9, n * k),
        "Flops/rep": rng.uniform(1e6, 1e9, n * k),
        "reps": np.full(n * k, 100.0),
    })
    sources = [(f"p{i:06d}.cali", f"{i:08x}") for i in range(n)]
    return dataframe, metadata, sources


@pytest.fixture(scope="module")
def campaigns(tmp_path_factory):
    """size -> (store path, sources, cache dir) with tables cached on disk."""
    out = {}
    for n in (N_SMALL, N_LARGE):
        cache_dir = tmp_path_factory.mktemp(f"qcache_{n}")
        dataframe, metadata, sources = _synth_campaign(n)
        path = ingest_cache.store(cache_dir, sources, dataframe, metadata)
        out[n] = (path, sources, cache_dir)
    return out


SELECT = ["profile", "machine", "trial"]


def _eager_filtered(sources, cache_dir) -> Frame:
    """The pre-lazy answer: decode both full tables, then filter."""
    _, metadata = ingest_cache.load(cache_dir, sources)
    return metadata.filter(col("variant") == "variant7").select(SELECT)


def _lazy_filtered(path) -> Frame:
    return (
        scan_cache(path, table="metadata")
        .filter(col("variant") == "variant7")
        .select(SELECT)
        .collect()
    )


def _eager_agg(sources, cache_dir) -> Frame:
    _, metadata = ingest_cache.load(cache_dir, sources)
    return (
        metadata.filter(col("variant") == "variant7")
        .groupby("machine")
        .agg({"trial": "mean", "problem_size": "max"})
    )


def _lazy_agg(path) -> Frame:
    return (
        scan_cache(path, table="metadata")
        .filter(col("variant") == "variant7")
        .groupby("machine")
        .agg({"trial": "mean", "problem_size": "max"})
        .collect()
    )


def _time_eager(fn, *args) -> tuple[Frame, float]:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def _timed(fn, *args):
    """A zero-arg callable for ``benchmark.pedantic`` that also records
    its own wall times, so timings survive ``--benchmark-disable``."""
    times: list[float] = []

    def run():
        start = time.perf_counter()
        result = fn(*args)
        times.append(time.perf_counter() - start)
        return result

    return run, times


def bench_query_filtered_10k(benchmark, campaigns):
    """Scalability anchor: the same query at a tenth the profile count."""
    path, sources, cache_dir = campaigns[N_SMALL]
    eager, eager_sec = _time_eager(_eager_filtered, sources, cache_dir)
    run, times = _timed(_lazy_filtered, path)
    lazy = benchmark.pedantic(run, rounds=5, iterations=1)
    assert lazy.equals(eager)
    lazy_sec = min(times)
    benchmark.extra_info["speedup"] = round(eager_sec / lazy_sec, 2)
    benchmark.extra_info["lazy_queries_per_sec"] = round(1.0 / lazy_sec, 2)


def bench_query_filtered_100k(benchmark, campaigns, artifact_dir):
    """The acceptance bench: <1s warm at 100k profiles, >= 10x eager."""
    path, sources, cache_dir = campaigns[N_LARGE]
    eager, eager_sec = _time_eager(_eager_filtered, sources, cache_dir)
    run, times = _timed(_lazy_filtered, path)
    lazy = benchmark.pedantic(run, rounds=5, iterations=1)
    assert lazy.equals(eager)
    assert lazy.nrows == N_LARGE // 25

    lazy_sec = min(times)
    speedup = eager_sec / lazy_sec
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["lazy_queries_per_sec"] = round(1.0 / lazy_sec, 2)
    save_artifact(
        artifact_dir,
        "query_speedup",
        f"profiles:            {N_LARGE}\n"
        f"eager filter+select: {eager_sec * 1e3:.1f} ms\n"
        f"lazy pushdown:       {lazy_sec * 1e3:.1f} ms\n"
        f"speedup:             {speedup:.1f}x",
    )
    assert lazy_sec < 1.0, f"warm lazy query took {lazy_sec:.3f}s (must be <1s)"
    assert speedup >= 10.0, (
        f"pushdown only {speedup:.1f}x faster than eager "
        f"({lazy_sec * 1e3:.1f}ms vs {eager_sec * 1e3:.1f}ms)"
    )


def bench_query_groupby_agg_100k(benchmark, campaigns):
    """Filtered groupby-agg: segmented reductions behind the same plan."""
    path, sources, cache_dir = campaigns[N_LARGE]
    eager, eager_sec = _time_eager(_eager_agg, sources, cache_dir)
    run, times = _timed(_lazy_agg, path)
    lazy = benchmark.pedantic(run, rounds=5, iterations=1)
    assert lazy.equals(eager)
    assert lazy.nrows == 4  # one row per machine

    lazy_sec = min(times)
    benchmark.extra_info["speedup"] = round(eager_sec / lazy_sec, 2)
    benchmark.extra_info["lazy_queries_per_sec"] = round(1.0 / lazy_sec, 2)
