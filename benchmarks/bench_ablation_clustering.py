"""Ablations over the Section IV clustering design choices.

DESIGN.md's ablation list: (1) linkage strategy, (2) distance threshold,
(3) feature-set granularity. Each bench times the variant pipeline and
asserts what the ablation teaches.
"""

import numpy as np
import pytest
from conftest import save_artifact

from repro.analysis import run_similarity_analysis
from repro.analysis.clustering import fcluster_by_distance, linkage
from repro.analysis.topdown import TMA_COMPONENTS


@pytest.fixture(scope="module")
def baseline():
    return run_similarity_analysis()


# ------------------------------------------------------------- 1: linkage
def bench_ablation_linkage(benchmark, artifact_dir, baseline):
    """Does the four-cluster structure survive other linkage strategies?"""

    def sweep():
        rows = []
        for method in ("ward", "single", "complete", "average"):
            result = run_similarity_analysis(method=method)
            rows.append((method, result.num_clusters))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(f"{m:10s} clusters={c}" for m, c in rows)
    save_artifact(artifact_dir, "ablation_linkage", text)
    by_method = dict(rows)
    # Ward (the paper's choice) finds exactly 4; single linkage chains and
    # degenerates at the same threshold — which is *why* Ward was chosen.
    assert by_method["ward"] == 4
    assert by_method["single"] != 4


def test_complete_linkage_preserves_memory_cluster(baseline):
    """The memory-bound blob is robust: complete linkage keeps Stream+LCALS
    together even though cluster counts shift."""
    result = run_similarity_analysis(method="complete")
    labels = {
        name: result.clustering.labels[i]
        for i, name in enumerate(result.kernel_names)
    }
    stream_labels = {labels[n] for n in labels if n.startswith("Stream_") and n != "Stream_DOT"}
    assert len(stream_labels) == 1


# ----------------------------------------------------------- 2: threshold
def bench_ablation_threshold(benchmark, artifact_dir, baseline):
    """Sweep the Ward cut threshold around the paper's 1.4."""
    merges = baseline.clustering.merges

    def sweep():
        return {
            threshold: int(fcluster_by_distance(merges, threshold).max()) + 1
            for threshold in (0.05, 0.15, 0.4, 1.4, 1.8, 2.5, 4.0)
        }

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(f"threshold={t:4.2f} clusters={c}" for t, c in counts.items())
    save_artifact(artifact_dir, "ablation_threshold", text)
    assert counts[1.4] == 4  # the paper's operating point
    assert counts[0.05] > counts[1.4] >= counts[4.0]
    # Cluster count is monotone non-increasing in the threshold.
    ordered = [counts[t] for t in sorted(counts)]
    assert ordered == sorted(ordered, reverse=True)


def test_threshold_stability_window(baseline):
    """The 4-cluster solution is stable in a window around 1.4 — the
    choice is not a knife's edge."""
    merges = baseline.clustering.merges
    for threshold in (1.3, 1.4, 1.5):
        assert int(fcluster_by_distance(merges, threshold).max()) + 1 == 4


# ------------------------------------------------------------ 3: features
def bench_ablation_feature_set(benchmark, artifact_dir, baseline):
    """Level-1-only features (4-vector with Backend Bound merged) vs the
    paper's level-2 five-vector."""

    def run_coarse():
        vectors = baseline.vectors
        coarse = np.column_stack(
            [
                vectors[:, 0],  # frontend
                vectors[:, 1],  # bad speculation
                vectors[:, 2],  # retiring
                vectors[:, 3] + vectors[:, 4],  # backend = core + memory
            ]
        )
        merges = linkage(coarse, "ward")
        return fcluster_by_distance(merges, 1.4)

    labels = benchmark.pedantic(run_coarse, rounds=1, iterations=1)
    n_coarse = int(labels.max()) + 1
    save_artifact(
        artifact_dir,
        "ablation_features",
        f"level-2 five-vector: 4 clusters\nlevel-1 four-vector: {n_coarse} clusters",
    )
    # Merging core+memory loses a distinction: the coarse features find
    # FEWER clusters, conflating two of the paper's four.
    assert n_coarse < 4
    full = baseline.clustering.labels
    coarse_of_full: dict[int, set] = {}
    for full_label, coarse_label in zip(full, labels):
        coarse_of_full.setdefault(int(coarse_label), set()).add(int(full_label))
    # At least one coarse cluster contains members of 2+ paper clusters.
    assert any(len(members) >= 2 for members in coarse_of_full.values())
