"""Fig. 1: analytic metrics per kernel iteration."""

from conftest import save_artifact

from repro.reporting import fig1
from repro.suite.registry import make_kernel


def bench_fig1_analytic_metrics(benchmark, artifact_dir):
    text = benchmark(fig1)
    save_artifact(artifact_dir, "fig1", text)
    assert len(text.splitlines()) == 3 + 76


def test_fig1_spot_values():
    """Spot-check the rows the paper's Fig. 1 makes visually prominent."""
    triad = make_kernel("Stream_TRIAD", 32_000_000).analytic_metrics()
    assert triad["bytes_read"] == 16.0
    assert triad["bytes_written"] == 8.0
    assert triad["flops"] == 2.0
    # TRIAD reads twice what it writes — the paper highlights this ratio.
    assert triad["bytes_read"] / triad["bytes_written"] == 2.0

    # The FLOP-dense FEM kernels dominate the FLOPs/iter axis ("Cap" bars).
    edge = make_kernel("Apps_EDGE3D", 32_000_000).analytic_metrics()
    assert edge["flops"] > 100.0
    assert edge["flops_per_byte"] > 1.0

    # memset has no reads and no FLOPs.
    memset = make_kernel("Algorithm_MEMSET", 32_000_000).analytic_metrics()
    assert memset["bytes_read"] == 0.0
    assert memset["flops"] == 0.0
