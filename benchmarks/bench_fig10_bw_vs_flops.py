"""Fig. 10: achieved memory bandwidth vs FLOPS on all four systems."""

import pytest
from conftest import save_artifact

from repro.analysis import run_speedup_study
from repro.reporting import fig10


@pytest.fixture(scope="module")
def study():
    return run_speedup_study()


def bench_fig10_scatter(benchmark, artifact_dir):
    text = benchmark(fig10)
    save_artifact(artifact_dir, "fig10", text)
    for machine in ("SPR-DDR", "SPR-HBM", "P9-V100", "EPYC-MI250X"):
        assert f"Fig. 10 {machine}" in text


def test_seventeen_flop_heavy_kernels(study):
    """The paper's 17 FLOP-heavy kernels are all above the diagonal."""
    flop_heavy = set(study.flop_heavy_kernels())
    paper = {
        "Apps_CONVECTION3DPA", "Apps_DEL_DOT_VEC_2D", "Apps_DIFFUSION3DPA",
        "Apps_EDGE3D", "Apps_FIR", "Apps_LTIMES", "Apps_LTIMES_NOVIEW",
        "Apps_MASS3DPA", "Apps_VOL3D", "Basic_MAT_MAT_SHARED",
        "Basic_PI_ATOMIC", "Basic_PI_REDUCE", "Basic_TRAP_INT",
        "Polybench_2MM", "Polybench_3MM", "Polybench_FLOYD_WARSHALL",
        "Polybench_GEMM",
    }
    assert paper <= flop_heavy


def test_bandwidth_rises_ddr_to_hbm_but_flops_flat(study):
    """Fig. 10a vs 10b: SPR-HBM raises achieved bandwidth for streaming
    kernels but leaves the FLOP rate roughly unchanged."""
    triad = study.record("Stream_TRIAD")
    assert triad.achieved_gbytes("SPR-HBM") > 2.0 * triad.achieved_gbytes("SPR-DDR")
    matmat = study.record("Basic_MAT_MAT_SHARED")
    flops_ratio = matmat.achieved_gflops("SPR-HBM") / matmat.achieved_gflops("SPR-DDR")
    assert 0.7 < flops_ratio < 1.1


def test_v100_boosts_both_axes(study):
    """Fig. 10c: the V100 raises both achieved bandwidth and FLOPs."""
    triad = study.record("Stream_TRIAD")
    assert triad.achieved_gbytes("P9-V100") > 5 * triad.achieved_gbytes("SPR-DDR")
    matmat = study.record("Basic_MAT_MAT_SHARED")
    assert matmat.achieved_gflops("P9-V100") > 5 * matmat.achieved_gflops("SPR-DDR")


def test_mi250x_bandwidth_about_3x_v100(study):
    """Fig. 10d: 'the memory bandwidth trends towards around 3x of the
    P9-V100 for many kernels'."""
    ratios = []
    for name in ("Stream_TRIAD", "Stream_ADD", "Stream_COPY", "Lcals_HYDRO_1D"):
        record = study.record(name)
        ratios.append(
            record.achieved_gbytes("EPYC-MI250X") / record.achieved_gbytes("P9-V100")
        )
    mean = sum(ratios) / len(ratios)
    assert mean == pytest.approx(3.0, rel=0.25)


def test_fig10d_annotated_tflops_kernels(study):
    """The four kernels annotated with >10,000 GFLOPS on the MI250X:
    MAT_MAT_SHARED (13326), EDGE3D (84113), VOL3D (11259),
    DIFFUSION3DPA (14975)."""
    paper_values = {
        "Basic_MAT_MAT_SHARED": 13_326.4,
        "Apps_EDGE3D": 84_113.3,
        "Apps_VOL3D": 11_259.0,
        "Apps_DIFFUSION3DPA": 14_974.5,
    }
    top4 = sorted(
        study.records, key=lambda r: r.achieved_gflops("EPYC-MI250X"), reverse=True
    )[:4]
    assert {r.kernel for r in top4} == set(paper_values)
    for name, paper_gflops in paper_values.items():
        measured = study.record(name).achieved_gflops("EPYC-MI250X")
        assert measured == pytest.approx(paper_gflops, rel=0.35), name
