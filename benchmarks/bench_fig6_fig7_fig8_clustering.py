"""Figs. 6-8: the Section IV clustering pipeline and its artifacts."""

import numpy as np
import pytest
from conftest import save_artifact

from repro.analysis import run_similarity_analysis
from repro.analysis.parallel_coords import coordinates
from repro.reporting import fig6, fig7, fig8

#: Fig. 7's published per-cluster table (TMA means + speedups).
PAPER_FIG7 = {
    "mem": dict(tma=(0.0103, 0.0001, 0.0562, 0.0522, 0.8812),
                speedups=(2.5972, 7.3578, 22.6483)),
    "bal": dict(tma=(0.0452, 0.0380, 0.2402, 0.1488, 0.5279),
                speedups=(1.4286, 4.7197, 13.9824)),
    "ret": dict(tma=(0.1460, 0.0050, 0.7169, 0.1021, 0.0300),
                speedups=(0.9559, 4.5510, 7.0543)),
    "core": dict(tma=(0.0118, 0.0037, 0.4117, 0.5358, 0.0370),
                 speedups=(0.8651, 3.3596, 6.2609)),
}


@pytest.fixture(scope="module")
def result():
    return run_similarity_analysis()


def bench_fig6_dendrogram(benchmark, artifact_dir, result):
    text = benchmark(fig6, result)
    save_artifact(artifact_dir, "fig6", text)
    assert "Ward" in text
    assert "cut at 1.4" in text
    assert "TRIAD" in text


def bench_fig7_cluster_table(benchmark, artifact_dir, result):
    text = benchmark(fig7, result)
    save_artifact(artifact_dir, "fig7", text)
    assert "Cluster" in text and "Speedup EPYC-MI250X" in text


def bench_fig8_parallel_coordinates(benchmark, artifact_dir, result):
    text = benchmark(fig8, result)
    save_artifact(artifact_dir, "fig8", text)
    assert "memory_bound" in text and "EPYC-MI250X" in text


def test_fig6_full_similarity_pipeline_shape(result):
    assert result.num_clusters == 4
    assert len(result.kernel_names) == 61
    assert result.vectors.shape == (61, 5)


def test_fig7_values_vs_paper(result):
    """Every paper cluster row has a model cluster within tolerance."""
    from repro.analysis.topdown import TMA_COMPONENTS

    for label, row in PAPER_FIG7.items():
        best = min(
            result.summaries,
            key=lambda s: sum(
                (s.tma_means[c] - row["tma"][j]) ** 2
                for j, c in enumerate(TMA_COMPONENTS)
            ),
        )
        tma_err = np.sqrt(sum(
            (best.tma_means[c] - row["tma"][j]) ** 2
            for j, c in enumerate(TMA_COMPONENTS)
        ))
        assert tma_err < 0.08, (label, best.tma_means)
        for machine, paper_value in zip(
            ("SPR-HBM", "P9-V100", "EPYC-MI250X"), row["speedups"]
        ):
            assert best.speedups[machine] == pytest.approx(
                paper_value, rel=0.30
            ), (label, machine)


def test_fig8_axes_are_linked(result):
    """Parallel coordinates: the memory-bound axis and the speedup axes
    must rank the clusters identically (the red-line pattern)."""
    coords = coordinates(result.summaries)
    mem_rank = sorted(coords, key=lambda c: coords[c][4])  # memory_bound axis
    for axis in (6, 7):  # P9-V100, EPYC-MI250X speedups
        speed_rank = sorted(coords, key=lambda c: coords[c][axis])
        assert speed_rank == mem_rank
