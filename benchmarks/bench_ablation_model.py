"""Ablations over the performance model's design choices.

DESIGN.md's items 4 and 5: problem-size sensitivity of the speedup shape,
and the Base-vs-RAJA abstraction overhead.
"""

import pytest
from conftest import save_artifact

from repro.analysis import run_speedup_study
from repro.machines.registry import list_machines
from repro.perfmodel.timing import RAJA_OVERHEAD_CPU, RAJA_OVERHEAD_GPU
from repro.suite.registry import make_kernel
from repro.suite.variants import get_variant


# --------------------------------------------------- 4: problem-size sweep
def bench_ablation_problem_size(benchmark, artifact_dir):
    """Does the speedup *shape* survive problem-size changes?

    The paper ran 32M/node; we sweep 8M..128M and check the memory-bound
    kernels' MI250X speedups stay near the bandwidth ratio while the
    launch-overhead-bound Comm packing kernel degrades at small sizes.
    """

    def sweep():
        rows = {}
        for size in (8_000_000, 32_000_000, 128_000_000):
            study = run_speedup_study(problem_size=size)
            rows[size] = {
                "triad": study.record("Stream_TRIAD").speedup("EPYC-MI250X"),
                "packing": study.record("Comm_HALO_PACKING").speedup("EPYC-MI250X"),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"size={size:>11,d}  TRIAD={vals['triad']:6.2f}x  HALO_PACKING={vals['packing']:5.2f}x"
        for size, vals in rows.items()
    )
    save_artifact(artifact_dir, "ablation_problem_size", text)
    # TRIAD's speedup is size-stable (bandwidth bound at every size).
    triads = [vals["triad"] for vals in rows.values()]
    assert max(triads) / min(triads) < 1.35
    # Launch overhead amortizes: packing looks relatively better at larger
    # sizes (or at least never better at smaller ones).
    assert rows[128_000_000]["packing"] >= rows[8_000_000]["packing"] * 0.95


def test_speedup_ordering_stable_across_sizes():
    """Memory-bound > core-bound MI250X speedup at every size."""
    for size in (4_000_000, 32_000_000, 256_000_000):
        study = run_speedup_study(problem_size=size)
        mem = study.record("Stream_ADD").speedup("EPYC-MI250X")
        core = study.record("Basic_TRAP_INT").speedup("EPYC-MI250X")
        assert mem > core, size


# ------------------------------------------------ 5: RAJA overhead ablation
def bench_ablation_raja_overhead(benchmark, artifact_dir):
    """Quantify the Base-vs-RAJA abstraction cost across machines."""

    def measure():
        rows = []
        kernel = make_kernel("Stream_TRIAD", 32_000_000)
        for machine in list_machines():
            base = kernel.predict(machine, get_variant("Base_Seq")).total_seconds
            raja = kernel.predict(machine, get_variant("RAJA_Seq")).total_seconds
            rows.append((machine.shorthand, raja / base))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "\n".join(f"{m:12s} RAJA/Base = {ratio:.4f}" for m, ratio in rows)
    save_artifact(artifact_dir, "ablation_raja_overhead", text)
    for machine, ratio in rows:
        expected = RAJA_OVERHEAD_GPU if machine in ("P9-V100", "EPYC-MI250X") else RAJA_OVERHEAD_CPU
        # Launch overhead is variant-independent, so the observed ratio is
        # at most the configured multiplier and must stay above 1.
        assert 1.0 < ratio <= expected + 1e-9, (machine, ratio)


def test_raja_overhead_small_as_paper_expects():
    """RAJA's abstraction penalty stays in the low single digits — the
    premise of the suite's RAJA-vs-Base comparisons."""
    assert RAJA_OVERHEAD_CPU <= 1.05
    assert RAJA_OVERHEAD_GPU <= 1.10


def test_ltimes_view_vs_noview_overhead_real_execution():
    """The LTIMES / LTIMES_NOVIEW pair: identical results; the View adds
    only abstraction, not answers."""
    view = make_kernel("Apps_LTIMES", 1200)
    noview = make_kernel("Apps_LTIMES_NOVIEW", 1200)
    assert view.run_variant(get_variant("RAJA_Seq")) == pytest.approx(
        noview.run_variant(get_variant("RAJA_Seq"))
    )
