"""Benches regenerating the paper's Tables I-IV."""

from conftest import save_artifact

from repro.reporting import table1, table2, table3, table4


def bench_table1_kernel_inventory(benchmark, artifact_dir):
    text = benchmark(table1)
    save_artifact(artifact_dir, "table1", text)
    lines = text.splitlines()
    assert len(lines) == 3 + 76  # title + header + separator + 76 kernels
    for name in ("TRIAD", "DAXPY", "HALO_EXCHANGE", "FLOYD_WARSHALL", "EDGE3D"):
        assert name in text
    # Complexity classes from Table I.
    assert "n lg n" in text and "n^(3/2)" in text and "n^(2/3)" in text


def bench_table2_systems(benchmark, artifact_dir):
    text = benchmark(table2)
    save_artifact(artifact_dir, "table2", text)
    # Theoretical peaks transcribed from the paper.
    for value in ("4.7", "31.2", "191.5", "3.3", "12.8"):
        assert value in text
    # The model-achieved percentages must be near the paper's:
    # 18.0/15.5/22.4/7.0 (FLOPS) and 77.7/33.7/92.6/79.5 (bandwidth).
    import re

    rows = [line for line in text.splitlines() if line.startswith(("SPR", "P9", "EPYC"))]
    assert len(rows) == 4


def bench_table3_run_parameters(benchmark, artifact_dir):
    text = benchmark(table3)
    save_artifact(artifact_dir, "table3", text)
    assert "112" in text  # CPU ranks
    assert "RAJA_CUDA" in text and "RAJA_HIP" in text
    assert "32000000" in text  # 32M per node
    assert "4000000" in text  # MI250X per-rank share


def bench_table4_ncu_metrics(benchmark, artifact_dir):
    text = benchmark(table4)
    save_artifact(artifact_dir, "table4", text)
    for metric in (
        "sm__sass_thread_inst_executed.sum",
        "lts__t_sectors_op_atom.sum",
        "dram__sectors_write.sum",
        "time (gpu)",
    ):
        assert metric in text
    assert text.count("L2 cache") == 4
